#!/usr/bin/env sh
# Local mirror of the CI pipeline (.github/workflows/ci.yml).
# Runs every gate in order and stops at the first failure.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (debug-invariants) -- -D warnings"
cargo clippy --workspace --all-targets --features rbcast/debug-invariants -- -D warnings

echo "==> cargo xtask audit --format json (machine-readable gate)"
audit_json=target/audit_report.json
cargo xtask audit --format json > "$audit_json" \
    || { cat "$audit_json"; echo "audit: findings (see JSON above)"; exit 1; }
# Validate the SARIF-lite shape: schema tag, clean flag, findings array.
grep -q '"schema":"rbcast-audit/1"' "$audit_json" \
    || { cat "$audit_json"; echo "audit: JSON output missing schema tag"; exit 1; }
grep -q '"clean":true' "$audit_json" \
    || { cat "$audit_json"; echo "audit: JSON output not clean"; exit 1; }
grep -q '"findings":\[' "$audit_json" \
    || { cat "$audit_json"; echo "audit: JSON output missing findings array"; exit 1; }
rm -f "$audit_json"

echo "==> cargo xtask audit --rule stale-allow (suppression lifecycle gate)"
cargo xtask audit --rule stale-allow
cargo xtask audit --rule unknown-allow

echo "==> cargo xtask audit --self-test"
cargo xtask audit --self-test

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test --features debug-invariants"
cargo test -q --features debug-invariants

echo "==> engine determinism gate (1/2/8 threads, debug-invariants replay)"
cargo test -q -p rbcast-core --test determinism --features debug-invariants

echo "==> thresh_byz smoke (tiny grid through the parallel engine)"
cargo run -q -p rbcast-bench --bin thresh_byz -- --smoke

echo "==> chaos smoke (injected panics/stalls quarantined, journal well-formed)"
# Seed 4 deterministically kills tasks in both thresh_byz sweeps (the
# chaos draw is a pure function of (seed, task, attempt), so this holds
# at every thread count). The bin must still exit 0 — failures are
# quarantined, never fatal — and the checkpoint journal must hold one
# well-formed line per task, including the failed ones.
rm -rf results/journal
chaos_out=target/chaos_smoke.out
RBCAST_CHAOS="panic:0.05,stall:0.02,seed=4" RBCAST_RETRIES=1 \
    cargo run -q -p rbcast-bench --bin thresh_byz -- --smoke > "$chaos_out" 2>&1 \
    || { cat "$chaos_out"; echo "chaos smoke: thresh_byz failed fatally"; exit 1; }
grep -q "^quarantine " "$chaos_out" \
    || { cat "$chaos_out"; echo "chaos smoke: expected quarantined tasks"; exit 1; }
journal=results/journal/thresh_byz_achievability.jsonl
test -s "$journal" \
    || { echo "chaos smoke: missing checkpoint journal $journal"; exit 1; }
grep -q '"status":"failed"' "$journal" \
    || { cat "$journal"; echo "chaos smoke: no failed entry journalled"; exit 1; }
# Every line is a task entry, except an optional leading sweep-spec
# fingerprint header (written by `rbcast sweep`, checked on --resume).
if grep -v '^{"task":[0-9][0-9]*,"status":"\(ok\|failed\)","attempts":[0-9][0-9]*,' "$journal" \
    | grep -v '^{"fingerprint":"0x[0-9a-f]*","tasks":[0-9][0-9]*}$' | grep .; then
    echo "chaos smoke: malformed journal line(s) above"; exit 1
fi
rm -rf results/journal
echo "chaos smoke passed"

echo "==> trace smoke (rbcast run --trace emits well-formed JSONL)"
trace_out=target/trace_smoke.jsonl
cargo run -q --bin rbcast -- run --protocol cpa --r 1 --t 2 --trace "$trace_out" > /dev/null
test -s "$trace_out" || { echo "trace smoke: empty trace"; exit 1; }
if grep -v '^{"ev":"[a-z_]*","round":[0-9][0-9]*[,}]' "$trace_out" | grep -q .; then
    echo "trace smoke: malformed JSONL line(s)"; exit 1
fi
rm -f "$trace_out"
echo "trace smoke passed"

echo "==> cluster chaos smoke (3x3 UDP processes, burst loss, kill+restart)"
# Nine `rbcast serve` OS processes on loopback UDP ports, every link
# behind the seeded Gilbert-Elliott chaos shim, node 4 killed mid-run
# and restarted from its JSONL journal. The run must commit exactly
# what the sim oracle commits (parity: MATCH => exit 0) and the victim
# must have resumed from its journal (two boot records = epoch bump).
cluster_dir=target/cluster_smoke
cluster_out=target/cluster_smoke.out
rm -rf "$cluster_dir"
cargo run -q --release --bin rbcast -- cluster \
    --width 3 --height 3 --instances 4 --rounds 16 \
    --base-port 47500 --chaos-seed 3405691582 --kill 4 --dir "$cluster_dir" \
    > "$cluster_out" 2>&1 \
    || { cat "$cluster_out"; echo "cluster smoke: run failed"; exit 1; }
grep -q "parity: MATCH" "$cluster_out" \
    || { cat "$cluster_out"; echo "cluster smoke: digest mismatch vs sim oracle"; exit 1; }
test "$(grep -c '"boot"' "$cluster_dir/node4.jsonl")" -eq 2 \
    || { echo "cluster smoke: victim did not resume from its journal"; exit 1; }
rm -rf "$cluster_dir" "$cluster_out"
echo "cluster chaos smoke passed"

echo "==> attack search gate (pinned seed beats the hand-built library; replay is exact)"
# The adversary search must earn its keep: at the pinned seed it has to
# find a placement strictly worse (for the protocol) than every
# hand-built strategy on at least one (r, t) cell — otherwise the
# annealer has regressed to a no-op and `rbcast attack` is decoration.
attack_out=target/attack_gate.out
cargo run -q --release --bin rbcast -- attack --seed 10976964 --steps 60 --r 1 --gate \
    > "$attack_out" 2>&1 \
    || { cat "$attack_out"; echo "attack gate: search no longer beats the library"; exit 1; }
grep -q "gate: PASS" "$attack_out" \
    || { cat "$attack_out"; echo "attack gate: missing PASS marker"; exit 1; }
# Thread-count invariance: every random draw is a pure function of
# (seed, step), so 1 and 2 workers must produce byte-identical reports.
cargo run -q --release --bin rbcast -- attack --seed 10976964 --steps 60 --r 1 --threads 1 \
    > target/attack_t1.out 2>&1
cargo run -q --release --bin rbcast -- attack --seed 10976964 --steps 60 --r 1 --threads 2 \
    > target/attack_t2.out 2>&1
cmp -s target/attack_t1.out target/attack_t2.out \
    || { diff target/attack_t1.out target/attack_t2.out; \
         echo "attack gate: thread count changed the search result"; exit 1; }
# Checkpoint resume: truncate the journal mid-search, resume at a
# different thread count, and the report must still be byte-identical
# to the straight-through run.
attack_journal=target/attack_gate.jsonl
rm -f "$attack_journal"
cargo run -q --release --bin rbcast -- attack --seed 10976964 --steps 60 --r 1 \
    --checkpoint-every 8 --journal "$attack_journal" > target/attack_full.out 2>&1
test -s "$attack_journal" || { echo "attack gate: no checkpoint journal written"; exit 1; }
head -n 3 "$attack_journal" > "$attack_journal.cut"
mv "$attack_journal.cut" "$attack_journal"
cargo run -q --release --bin rbcast -- attack --seed 10976964 --steps 60 --r 1 \
    --checkpoint-every 8 --resume "$attack_journal" --threads 2 \
    > target/attack_resumed.out 2>&1
cmp -s target/attack_full.out target/attack_resumed.out \
    || { diff target/attack_full.out target/attack_resumed.out; \
         echo "attack gate: resume diverged from the straight-through run"; exit 1; }
rm -f "$attack_out" target/attack_t1.out target/attack_t2.out \
    target/attack_full.out target/attack_resumed.out "$attack_journal"
echo "attack search gate passed"

echo "==> attack corpus smoke (worst-found placements verify by independent replay)"
cargo run -q --release -p rbcast-bench --bin attack_corpus -- --smoke

echo "==> sweep_engine smoke (multi-thread throughput >= 85% of serial)"
cargo bench -q -p rbcast-bench --bench sweep_engine -- --smoke

echo "==> scale smoke (sparse engine matches the dense oracle at 10^4 nodes)"
# Release build: the smoke gate carries a wall budget, and a debug bin
# is opt-0 here ([profile.dev] is not overridden), an order of
# magnitude off the numbers the gate is calibrated against.
cargo run -q --release -p rbcast-bench --bin scale_bench -- --smoke

echo "==> BENCH_scale.json shape (checked-in scale baseline is current)"
grep -q '"schema": "rbcast-bench-scale/v2"' BENCH_scale.json \
    || { echo "BENCH_scale.json: missing/wrong schema tag"; exit 1; }
grep -q '"nodes": 1000000' BENCH_scale.json \
    || { echo "BENCH_scale.json: missing the 10^6-node cell"; exit 1; }
grep -q '"timings": {' BENCH_scale.json \
    || { echo "BENCH_scale.json: missing the obs timings block"; exit 1; }
grep -q '"peak_rss_kb"' BENCH_scale.json \
    || { echo "BENCH_scale.json: missing the v2 peak-RSS column"; exit 1; }

echo "CI: all gates passed"
