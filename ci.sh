#!/usr/bin/env sh
# Local mirror of the CI pipeline (.github/workflows/ci.yml).
# Runs every gate in order and stops at the first failure.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (debug-invariants) -- -D warnings"
cargo clippy --workspace --all-targets --features rbcast/debug-invariants -- -D warnings

echo "==> cargo xtask audit"
cargo xtask audit

echo "==> cargo xtask audit --self-test"
cargo xtask audit --self-test

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test --features debug-invariants"
cargo test -q --features debug-invariants

echo "==> engine determinism gate (1/2/8 threads, debug-invariants replay)"
cargo test -q -p rbcast-core --test determinism --features debug-invariants

echo "==> thresh_byz smoke (tiny grid through the parallel engine)"
cargo run -q -p rbcast-bench --bin thresh_byz -- --smoke

echo "==> sweep_engine smoke (multi-thread throughput >= 85% of serial)"
cargo bench -q -p rbcast-bench --bench sweep_engine -- --smoke

echo "CI: all gates passed"
