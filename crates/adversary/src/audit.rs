//! Exact auditing of the locally bounded fault constraint.

use rbcast_grid::{Metric, NeighborTable, NodeId, Torus};
use std::collections::HashSet;

/// The maximum number of faulty nodes contained in any single
/// neighborhood (closed ball of radius `r`, under `metric`, centered at
/// any node of the torus).
///
/// This is the quantity the paper's adversary must keep ≤ `t`.
///
/// # Example
///
/// ```
/// use rbcast_adversary::local_fault_bound;
/// use rbcast_grid::{Coord, Metric, Torus};
///
/// let torus = Torus::new(20, 20);
/// let faults = vec![torus.id(Coord::new(5, 5)), torus.id(Coord::new(6, 5))];
/// assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &faults), 2);
/// ```
#[must_use]
pub fn local_fault_bound(torus: &Torus, r: u32, metric: Metric, faulty: &[NodeId]) -> usize {
    let fault_set: HashSet<NodeId> = faulty.iter().copied().collect();
    let mut best = 0;
    for center in torus.node_ids() {
        let mut count = usize::from(fault_set.contains(&center));
        // This is the independent naive audit — deriving it from the
        // arena would make the audit and the simulator share the code
        // path they are meant to cross-check.
        // audit:allow(adhoc-neighborhood)
        for nbr in torus.neighborhood(center, r, metric) {
            if fault_set.contains(&nbr) {
                count += 1;
            }
        }
        best = best.max(count);
    }
    best
}

/// [`local_fault_bound`] computed from a prebuilt [`NeighborTable`]:
/// each neighborhood is a CSR slice lookup instead of an offset scan, so
/// auditing a placement costs one pass over the flat adjacency arrays.
///
/// # Example
///
/// ```
/// use rbcast_adversary::local_fault_bound_in;
/// use rbcast_grid::{Coord, Metric, NeighborTable, Torus};
///
/// let torus = Torus::new(20, 20);
/// let table = NeighborTable::build(&torus, 2, Metric::Linf);
/// let faults = vec![torus.id(Coord::new(5, 5)), torus.id(Coord::new(6, 5))];
/// assert_eq!(local_fault_bound_in(&table, &faults), 2);
/// ```
#[must_use]
pub fn local_fault_bound_in(table: &NeighborTable, faulty: &[NodeId]) -> usize {
    let mut is_fault = vec![false; table.len()];
    for &f in faulty {
        is_fault[f.index()] = true;
    }
    let mut best = 0;
    for center in table.torus().node_ids() {
        let mut count = usize::from(is_fault[center.index()]);
        count += table
            .neighbors(center)
            .iter()
            .filter(|n| is_fault[n.index()])
            .count();
        best = best.max(count);
    }
    best
}

/// Whether `faulty` satisfies the locally bounded constraint for `t`.
#[must_use]
pub fn respects_bound(torus: &Torus, r: u32, metric: Metric, faulty: &[NodeId], t: usize) -> bool {
    local_fault_bound(torus, r, metric, faulty) <= t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::Coord;

    #[test]
    fn empty_placement_has_zero_bound() {
        let torus = Torus::new(15, 15);
        assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &[]), 0);
    }

    #[test]
    fn single_fault_bound_is_one() {
        let torus = Torus::new(15, 15);
        let f = vec![torus.id(Coord::new(7, 7))];
        for m in [Metric::Linf, Metric::L2] {
            assert_eq!(local_fault_bound(&torus, 2, m, &f), 1);
        }
    }

    #[test]
    fn packed_ball_counts_fully() {
        // Fill a whole closed L∞ ball: bound = (2r+1)².
        let torus = Torus::new(20, 20);
        let mut faults = vec![torus.id(Coord::new(10, 10))];
        faults.extend(torus.neighborhood(torus.id(Coord::new(10, 10)), 2, Metric::Linf));
        assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &faults), 25);
    }

    #[test]
    fn far_apart_faults_do_not_accumulate() {
        let torus = Torus::new(30, 30);
        let faults = vec![torus.id(Coord::new(0, 0)), torus.id(Coord::new(15, 15))];
        assert_eq!(local_fault_bound(&torus, 3, Metric::Linf, &faults), 1);
    }

    #[test]
    fn wraparound_is_counted() {
        // Two faults straddling the seam are one neighborhood's worth.
        let torus = Torus::new(20, 20);
        let faults = vec![torus.id(Coord::new(0, 0)), torus.id(Coord::new(19, 19))];
        assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &faults), 2);
    }

    #[test]
    fn respects_bound_boundary() {
        let torus = Torus::new(20, 20);
        let faults: Vec<_> = (0..3).map(|i| torus.id(Coord::new(5 + i, 5))).collect();
        assert!(respects_bound(&torus, 2, Metric::Linf, &faults, 3));
        assert!(!respects_bound(&torus, 2, Metric::Linf, &faults, 2));
    }

    #[test]
    fn arena_audit_matches_naive_audit() {
        let torus = Torus::new(15, 15);
        for metric in [Metric::Linf, Metric::L2] {
            for r in [1, 2, 3] {
                let table = NeighborTable::build(&torus, r, metric);
                for faults in [
                    vec![],
                    vec![torus.id(Coord::new(7, 7))],
                    vec![torus.id(Coord::new(0, 0)), torus.id(Coord::new(14, 14))],
                    (0..5).map(|i| torus.id(Coord::new(5 + i, 5))).collect(),
                ] {
                    assert_eq!(
                        local_fault_bound_in(&table, &faults),
                        local_fault_bound(&torus, r, metric, &faults),
                        "r={r} metric={metric:?} faults={faults:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn l2_ball_is_tighter_than_linf() {
        // Faults on a square corner pattern: the L2 ball sees fewer.
        let torus = Torus::new(20, 20);
        let faults = vec![torus.id(Coord::new(8, 8)), torus.id(Coord::new(12, 12))];
        let linf = local_fault_bound(&torus, 2, Metric::Linf, &faults);
        let l2 = local_fault_bound(&torus, 2, Metric::L2, &faults);
        assert_eq!(linf, 2); // center (10,10) covers both corners
        assert_eq!(l2, 1); // no L2 disk of radius 2 covers both
    }
}
