//! Locally bounded adversarial fault placement (§II of the paper).
//!
//! The adversary may corrupt any set of nodes as long as **no single
//! neighborhood contains more than `t` faults**, where a neighborhood is
//! the closed ball of radius `r` around any grid point. This crate
//! provides:
//!
//! * [`local_fault_bound`] — the exact audit: the maximum number of
//!   faults any neighborhood contains (every placement used in an
//!   experiment is audited against its announced `t`);
//! * [`Placement`] — a library of placement strategies: the worst-case
//!   strip constructions from the impossibility proofs, random
//!   locally-bounded placement, wavefront-blocking clusters, and
//!   unconstrained Bernoulli faults for the percolation extension.
//!
//! Byzantine *behaviour* (what corrupted nodes send) lives with the
//! protocol implementations in `rbcast-protocols`; this crate only
//! decides *where* the faults are.
//!
//! # Example
//!
//! ```
//! use rbcast_adversary::{local_fault_bound, Placement};
//! use rbcast_grid::{Metric, Torus};
//!
//! let torus = Torus::for_radius(2);
//! let faults = Placement::DoubleStrip.place(&torus, 2, Metric::Linf);
//! // The Theorem 4 construction: exactly r(2r+1) faults per neighborhood.
//! assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &faults), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod objective;
mod placement;
mod search;

pub use audit::{local_fault_bound, local_fault_bound_in, respects_bound};
pub use objective::AttackScore;
pub use placement::Placement;
pub use search::{anneal, greedy_cut_seed, initial_state, mix, AnnealState, SearchConfig};
