//! The adversary-search objective.
//!
//! A placement is scored by how much damage it does to one full
//! protocol run. Scores are compared lexicographically — a placement
//! that makes any honest node commit the *wrong* value beats every
//! merely-slow placement, a placement that strands honest nodes
//! undecided beats every placement under which all of them commit, and
//! among placements with equal damage the one forcing the latest
//! commit wins. The ordering is pure `Ord` (no floating-point weights),
//! so search decisions are exactly reproducible across platforms.

/// Damage score of one fault placement, higher = worse for the
/// protocol (= better for the adversary).
///
/// Field order is load-bearing: the derived [`Ord`] compares
/// lexicographically, so `wrong` dominates `undecided` dominates
/// `last_round`.
///
/// # Example
///
/// ```
/// use rbcast_adversary::AttackScore;
///
/// let slow = AttackScore { wrong: 0, undecided: 0, last_round: 90 };
/// let stuck = AttackScore { wrong: 0, undecided: 3, last_round: 12 };
/// let broken = AttackScore { wrong: 1, undecided: 0, last_round: 5 };
/// assert!(broken > stuck && stuck > slow);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttackScore {
    /// Honest nodes that committed the wrong value (a safety break).
    pub wrong: u64,
    /// Honest nodes that never decided (a liveness break).
    pub undecided: u64,
    /// Latest round at which an honest node decided — time-to-commit.
    /// `0` when nothing decided (the `undecided` term already dominates
    /// in that case).
    pub last_round: u32,
}

impl AttackScore {
    /// True iff the placement broke the protocol outright (wrong commit
    /// or stranded node) rather than merely slowing it down.
    #[must_use]
    pub fn is_break(&self) -> bool {
        self.wrong > 0 || self.undecided > 0
    }
}

impl std::fmt::Display for AttackScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wrong={} undecided={} last-round={}",
            self.wrong, self.undecided, self.last_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic_by_damage() {
        let fast = AttackScore {
            wrong: 0,
            undecided: 0,
            last_round: 8,
        };
        let slow = AttackScore {
            wrong: 0,
            undecided: 0,
            last_round: 90,
        };
        let stuck = AttackScore {
            wrong: 0,
            undecided: 1,
            last_round: 200,
        };
        let broken = AttackScore {
            wrong: 1,
            undecided: 0,
            last_round: 1,
        };
        assert!(slow > fast);
        assert!(stuck > slow);
        assert!(broken > stuck);
        assert!(!slow.is_break());
        assert!(stuck.is_break() && broken.is_break());
    }

    #[test]
    fn display_is_stable() {
        let s = AttackScore {
            wrong: 1,
            undecided: 2,
            last_round: 3,
        };
        assert_eq!(s.to_string(), "wrong=1 undecided=2 last-round=3");
    }
}
