//! Fault placement strategies.

use crate::respects_bound;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rbcast_grid::{Coord, Metric, NodeId, Torus};

/// A fault-placement strategy for the locally bounded adversary.
///
/// All strategies place faults on a torus whose source sits at the
/// origin. Except for [`Placement::Bernoulli`] (the percolation
/// extension, which is *not* locally bounded by design), every strategy
/// respects the announced local bound; experiments re-audit with
/// [`crate::local_fault_bound`] regardless.
///
/// # Example
///
/// ```
/// use rbcast_adversary::{respects_bound, Placement};
/// use rbcast_grid::{Metric, Torus};
///
/// let torus = Torus::for_radius(2);
/// let faults = Placement::RandomLocal { t: 3, seed: 7, attempts: 40 }
///     .place(&torus, 2, Metric::Linf);
/// assert!(respects_bound(&torus, 2, Metric::Linf, &faults, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Theorem 4 construction (Fig. 8), adapted to the torus: two
    /// vertical width-`r` strips at `x = W/4` and `x = 3W/4`, fully
    /// faulty. Local bound `r(2r+1)` (L∞); partitions the torus.
    DoubleStrip,
    /// Koo's Byzantine-threshold construction: the checkerboard half
    /// (`(x+y)` even) of the two strips. Local bound `⌈½·r(2r+1)⌉` (L∞).
    CheckerStrips,
    /// Both strips thinned to every other *column* faulty; a milder
    /// barrier used in sweeps.
    ColumnStrips,
    /// `t` faults packed into the single neighborhood straddling the
    /// wavefront just right of the source — the greedy local blocker.
    FrontierCluster {
        /// Number of faults (all inside one ball, so the bound is `t`).
        t: usize,
    },
    /// Random placement: keeps adding random faults while the local bound
    /// stays ≤ `t`, until `attempts` consecutive rejections.
    RandomLocal {
        /// The local bound to respect.
        t: usize,
        /// RNG seed.
        seed: u64,
        /// Consecutive rejected samples before giving up.
        attempts: u32,
    },
    /// Independent Bernoulli faults with probability `p` — the random
    /// failure model of §XI (site percolation). *Not* locally bounded.
    Bernoulli {
        /// Per-node fault probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// An explicit fault set, typically the output of the adversary
    /// search (`rbcast attack`). Replaying a found placement through the
    /// normal experiment pipeline makes search results first-class
    /// strategies: sweeps, benches, and golden tests can all reference
    /// them. Node ids outside the torus are dropped at placement time;
    /// the usual experiment-side local-bound audit still applies.
    Explicit {
        /// The fault set, by node id on the target torus.
        faults: Vec<NodeId>,
    },
}

impl Placement {
    /// Materialises the placement on `torus`. The source (origin) is
    /// never made faulty — the broadcast problem assumes a correct
    /// source.
    #[must_use]
    pub fn place(&self, torus: &Torus, r: u32, metric: Metric) -> Vec<NodeId> {
        let source = torus.id(Coord::ORIGIN);
        let mut faults = match self {
            Placement::DoubleStrip => strip_faults(torus, r, |_c| true),
            Placement::CheckerStrips => strip_faults(torus, r, |c| (c.x + c.y).rem_euclid(2) == 0),
            Placement::ColumnStrips => strip_faults(torus, r, |c| c.x.rem_euclid(2) == 0),
            Placement::FrontierCluster { t } => frontier_cluster(torus, r, metric, *t),
            Placement::RandomLocal { t, seed, attempts } => {
                random_local(torus, r, metric, *t, *seed, *attempts)
            }
            Placement::Bernoulli { p, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                torus
                    .node_ids()
                    .filter(|_| rng.gen_bool(p.clamp(0.0, 1.0)))
                    .collect()
            }
            Placement::Explicit { faults } => faults
                .iter()
                .copied()
                .filter(|id| id.index() < torus.len())
                .collect(),
        };
        faults.retain(|&id| id != source);
        faults.sort_unstable();
        faults.dedup();
        faults
    }

    /// Short human-readable name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Placement::DoubleStrip => "double-strip",
            Placement::CheckerStrips => "checker-strips",
            Placement::ColumnStrips => "column-strips",
            Placement::FrontierCluster { .. } => "frontier-cluster",
            Placement::RandomLocal { .. } => "random-local",
            Placement::Bernoulli { .. } => "bernoulli",
            Placement::Explicit { .. } => "attack",
        }
    }
}

/// Nodes of the two width-`r` vertical strips, filtered by `keep`.
fn strip_faults(torus: &Torus, r: u32, keep: impl Fn(Coord) -> bool) -> Vec<NodeId> {
    let w = i64::from(torus.width());
    let starts = [w / 4, 3 * w / 4];
    let mut out = Vec::new();
    for c in torus.coords() {
        let in_strip = starts.iter().any(|&s| c.x >= s && c.x < s + i64::from(r));
        if in_strip && keep(c) {
            out.push(torus.id(c));
        }
    }
    out
}

/// `t` faults nearest the center of the ball at `(2r, 0)` — straddling
/// the broadcast wavefront emanating from the origin.
fn frontier_cluster(torus: &Torus, r: u32, metric: Metric, t: usize) -> Vec<NodeId> {
    let center = Coord::new(2 * i64::from(r), 0);
    let cid = torus.id(center);
    // Placement runs once per experiment before any arena exists;
    // building a table for one ball would cost more than the scan.
    let mut ball: Vec<NodeId> = std::iter::once(cid)
        .chain(torus.neighborhood(cid, r, metric)) // audit:allow(adhoc-neighborhood)
        .collect();
    // nearest-first (stable by id for determinism)
    ball.sort_by_key(|&id| {
        let d = torus.dist(center, torus.coord(id), metric);
        (d, id)
    });
    ball.truncate(t);
    ball
}

/// Greedy random locally-bounded placement.
///
/// Maintains, for every potential ball center, the number of already
/// placed faults its neighborhood contains; a candidate is accepted iff
/// every center covering it stays ≤ `t`. Each attempt costs one
/// neighborhood scan instead of a full audit.
fn random_local(
    torus: &Torus,
    r: u32,
    metric: Metric,
    t: usize,
    seed: u64,
    attempts: u32,
) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<NodeId> = torus.node_ids().collect();
    candidates.shuffle(&mut rng);
    // counts[c] = faults currently inside the closed ball centered at c
    let mut counts = vec![0usize; torus.len()];
    let mut faults: Vec<NodeId> = Vec::new();
    let mut misses = 0;
    for id in candidates {
        if misses >= attempts {
            break;
        }
        // centers whose ball covers `id`: id itself plus its neighborhood
        // (ball membership is symmetric under both metrics).
        // One scan per accepted candidate, before any arena exists for
        // this geometry.
        let covering: Vec<NodeId> = std::iter::once(id)
            .chain(torus.neighborhood(id, r, metric)) // audit:allow(adhoc-neighborhood)
            .collect();
        if covering.iter().all(|c| counts[c.index()] < t) {
            for c in covering {
                counts[c.index()] += 1;
            }
            faults.push(id);
            misses = 0;
        } else {
            misses += 1;
        }
    }
    debug_assert!(respects_bound(torus, r, metric, &faults, t));
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_fault_bound;

    #[test]
    fn double_strip_bound_is_r_2r_plus_1() {
        for r in 1..=3u32 {
            let torus = Torus::for_radius(r);
            let f = Placement::DoubleStrip.place(&torus, r, Metric::Linf);
            assert_eq!(
                local_fault_bound(&torus, r, Metric::Linf, &f),
                (r * (2 * r + 1)) as usize,
                "r={r}"
            );
        }
    }

    #[test]
    fn checker_strips_bound_is_koo_threshold() {
        for r in 1..=3u32 {
            let torus = Torus::for_radius(r);
            let f = Placement::CheckerStrips.place(&torus, r, Metric::Linf);
            let expect = ((r * (2 * r + 1)) as usize).div_ceil(2);
            assert_eq!(
                local_fault_bound(&torus, r, Metric::Linf, &f),
                expect,
                "r={r}"
            );
        }
    }

    #[test]
    fn double_strip_partitions_the_torus() {
        // no fault-free edge crosses either strip
        let r = 2;
        let torus = Torus::for_radius(r);
        let faults: std::collections::HashSet<NodeId> = Placement::DoubleStrip
            .place(&torus, r, Metric::Linf)
            .into_iter()
            .collect();
        let w = i64::from(torus.width());
        let left_of = |x: i64, s: i64| x < s;
        // pick one correct node left of strip 1 and one right of it:
        let a = torus.id(Coord::new(w / 4 - 1, 0));
        let b = torus.id(Coord::new(w / 4 + i64::from(r), 0));
        assert!(!faults.contains(&a) && !faults.contains(&b));
        // they are not neighbors, and every path between them in the
        // correct-node graph must cross a strip: BFS over correct nodes.
        let mut seen = std::collections::HashSet::from([a]);
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(v) = queue.pop_front() {
            for n in torus.neighborhood(v, r, Metric::Linf) {
                if !faults.contains(&n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        assert!(!seen.contains(&b), "strips failed to partition");
        let _ = left_of;
    }

    #[test]
    fn frontier_cluster_is_single_neighborhood() {
        let torus = Torus::for_radius(2);
        let f = Placement::FrontierCluster { t: 7 }.place(&torus, 2, Metric::Linf);
        assert_eq!(f.len(), 7);
        assert_eq!(local_fault_bound(&torus, 2, Metric::Linf, &f), 7);
    }

    #[test]
    fn frontier_cluster_caps_at_ball_size() {
        let torus = Torus::for_radius(1);
        let f = Placement::FrontierCluster { t: 100 }.place(&torus, 1, Metric::Linf);
        assert!(f.len() <= 9);
    }

    #[test]
    fn random_local_respects_bound() {
        for seed in 0..5u64 {
            let torus = Torus::new(20, 20);
            let f = Placement::RandomLocal {
                t: 4,
                seed,
                attempts: 50,
            }
            .place(&torus, 2, Metric::Linf);
            assert!(
                respects_bound(&torus, 2, Metric::Linf, &f, 4),
                "seed={seed}"
            );
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn random_local_is_deterministic_per_seed() {
        let torus = Torus::new(20, 20);
        let p = Placement::RandomLocal {
            t: 3,
            seed: 42,
            attempts: 30,
        };
        assert_eq!(
            p.place(&torus, 2, Metric::Linf),
            p.place(&torus, 2, Metric::Linf)
        );
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let torus = Torus::new(40, 40);
        let f = Placement::Bernoulli { p: 0.3, seed: 7 }.place(&torus, 2, Metric::Linf);
        let rate = f.len() as f64 / torus.len() as f64;
        assert!((rate - 0.3).abs() < 0.08, "rate={rate}");
    }

    #[test]
    fn source_is_never_faulty() {
        let torus = Torus::new(20, 20);
        let source = torus.id(Coord::ORIGIN);
        for p in [
            Placement::DoubleStrip,
            Placement::CheckerStrips,
            Placement::ColumnStrips,
            Placement::Bernoulli { p: 1.0, seed: 1 },
            Placement::RandomLocal {
                t: 25,
                seed: 1,
                attempts: 10,
            },
        ] {
            let f = p.place(&torus, 2, Metric::Linf);
            assert!(!f.contains(&source), "{}", p.name());
        }
    }

    #[test]
    fn strips_work_on_rectangular_tori() {
        // wide-but-short torus: strips still partition and stay bounded
        let r = 2;
        let torus = Torus::new(40, 12);
        let f = Placement::DoubleStrip.place(&torus, r, Metric::Linf);
        assert_eq!(
            local_fault_bound(&torus, r, Metric::Linf, &f),
            (r * (2 * r + 1)) as usize
        );
    }

    #[test]
    fn random_local_with_zero_budget_places_nothing() {
        let torus = Torus::new(15, 15);
        let f = Placement::RandomLocal {
            t: 0,
            seed: 1,
            attempts: 10,
        }
        .place(&torus, 2, Metric::Linf);
        assert!(f.is_empty());
    }

    #[test]
    fn bernoulli_extremes() {
        let torus = Torus::new(15, 15);
        let none = Placement::Bernoulli { p: 0.0, seed: 3 }.place(&torus, 2, Metric::Linf);
        assert!(none.is_empty());
        let all = Placement::Bernoulli { p: 1.0, seed: 3 }.place(&torus, 2, Metric::Linf);
        assert_eq!(all.len(), torus.len() - 1); // all but the source
    }

    #[test]
    fn placements_are_sorted_and_deduped() {
        let torus = Torus::new(20, 20);
        for p in [
            Placement::DoubleStrip,
            Placement::CheckerStrips,
            Placement::FrontierCluster { t: 5 },
        ] {
            let f = p.place(&torus, 2, Metric::Linf);
            let mut sorted = f.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(f, sorted, "{}", p.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Placement::DoubleStrip.name(), "double-strip");
        assert_eq!(
            Placement::FrontierCluster { t: 1 }.name(),
            "frontier-cluster"
        );
        assert_eq!(Placement::Explicit { faults: Vec::new() }.name(), "attack");
    }

    #[test]
    fn explicit_drops_source_out_of_range_and_duplicates() {
        let torus = Torus::new(10, 10);
        let source = torus.id(Coord::ORIGIN);
        let a = torus.id(Coord::new(3, 4));
        let b = torus.id(Coord::new(7, 1));
        let out_of_range = NodeId(torus.len() as u32 + 5);
        let f = Placement::Explicit {
            faults: vec![b, a, source, b, out_of_range],
        }
        .place(&torus, 2, Metric::Linf);
        assert_eq!(f, vec![a.min(b), a.max(b)]);
    }
}
