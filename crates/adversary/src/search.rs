//! Deterministic adversary search: greedy cut seeding + simulated
//! annealing.
//!
//! The search looks for the locally-bounded fault placement that does
//! the most damage to a broadcast run (see
//! [`AttackScore`](crate::AttackScore) for the objective ordering). It
//! is built from two stages:
//!
//! 1. **Greedy cut seeding** ([`greedy_cut_seed`]): run the
//!    `rbcast-flow` minimum-vertex-cut machinery *the other way round* —
//!    instead of certifying that enough disjoint paths exist, extract a
//!    smallest vertex set separating the source from the farthest node
//!    and greedily keep as much of it as the local bound `t` admits.
//!    Maurer–Tixeuil's observation that connectivity-cut structure (not
//!    fault count) is what breaks broadcast makes this a strong start.
//! 2. **Simulated annealing** ([`anneal`]): refine by add / remove /
//!    relocate moves. Every random draw is a pure function of
//!    `(seed, step)` via a splitmix64 mix ([`mix`]), so the proposal
//!    chain is exactly reproducible: re-running from a checkpointed
//!    [`AnnealState`] replays the identical tail, which is what makes
//!    `--journal` / `--resume` byte-identical to a straight-through run.
//!
//! The evaluation function is injected by the caller (the simulation
//! driver lives above this crate), so the search itself stays pure and
//! unit-testable.

use crate::objective::AttackScore;
use rbcast_flow::try_min_vertex_cut;
use rbcast_grid::{Coord, Metric, NodeId, Torus};

/// Configuration of one search cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Broadcast radius of the target geometry.
    pub r: u32,
    /// Distance metric of the target geometry.
    pub metric: Metric,
    /// Local fault bound the placement must respect.
    pub t: usize,
    /// Master seed; every proposal draw derives from `(seed, step)`.
    pub seed: u64,
    /// Total annealing steps for the cell.
    pub steps: u32,
}

/// Resumable annealing state. Everything the tail of a search depends
/// on lives here — checkpointing this struct and calling [`anneal`]
/// again reproduces the straight-through result exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnealState {
    /// Next step to execute (steps `0..step` are already done).
    pub step: u32,
    /// The placement the chain currently sits on (sorted, deduped).
    pub current: Vec<NodeId>,
    /// Score of `current`.
    pub current_score: AttackScore,
    /// Best placement seen so far (sorted, deduped).
    pub best: Vec<NodeId>,
    /// Score of `best`.
    pub best_score: AttackScore,
    /// Full-simulation evaluations performed (valid proposals only).
    pub evaluations: u64,
    /// Proposals accepted by the annealing rule.
    pub accepted: u64,
}

/// splitmix64 finalizer: a bijective avalanche mix on one word.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One pseudo-random word, pure in `(seed, step, salt)`.
///
/// This is the search's entire source of randomness: no RNG object is
/// threaded through the chain, so any step's draws can be regenerated
/// in isolation — the property that makes checkpoint/resume exact.
#[must_use]
pub fn mix(seed: u64, step: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed).wrapping_add(step)).wrapping_add(salt))
}

/// Incremental local-bound bookkeeping.
///
/// `counts[c]` is the number of placed faults inside the closed ball
/// centred at `c`; a candidate is admissible iff every centre covering
/// it stays strictly below `t` (mirrors `Placement::RandomLocal`).
struct BoundTracker<'a> {
    torus: &'a Torus,
    r: u32,
    metric: Metric,
    t: usize,
    counts: Vec<usize>,
}

impl<'a> BoundTracker<'a> {
    fn new(torus: &'a Torus, r: u32, metric: Metric, t: usize, faults: &[NodeId]) -> Self {
        let mut tracker = BoundTracker {
            torus,
            r,
            metric,
            t,
            counts: vec![0; torus.len()],
        };
        for &f in faults {
            tracker.apply(f, 1);
        }
        tracker
    }

    /// Ball centres covering `id`: itself plus its neighborhood (ball
    /// membership is symmetric under both metrics). Runs once per
    /// proposal, long before any shared arena exists for the geometry.
    fn covering(&self, id: NodeId) -> Vec<NodeId> {
        std::iter::once(id)
            .chain(self.torus.neighborhood(id, self.r, self.metric)) // audit:allow(adhoc-neighborhood)
            .collect()
    }

    fn can_add(&self, id: NodeId) -> bool {
        self.covering(id)
            .iter()
            .all(|c| self.counts[c.index()] < self.t)
    }

    fn apply(&mut self, id: NodeId, delta: isize) {
        for c in self.covering(id) {
            let slot = &mut self.counts[c.index()];
            *slot = slot
                .checked_add_signed(delta)
                .expect("bound tracker count under/overflow");
        }
    }
}

/// Greedy cut-based seed placement.
///
/// Extracts a minimum vertex cut between the source (origin) and the
/// farthest node of the torus, then keeps cut vertices (ascending id)
/// as long as the local bound `t` admits them. Returns the empty
/// placement when `t == 0`, when the terminals are adjacent (tiny
/// tori), or when the geometry is degenerate — the annealing stage
/// still searches from scratch in that case.
#[must_use]
pub fn greedy_cut_seed(torus: &Torus, r: u32, metric: Metric, t: usize) -> Vec<NodeId> {
    if t == 0 || torus.len() < 2 {
        return Vec::new();
    }
    let source = torus.id(Coord::ORIGIN);
    let sink = torus
        .node_ids()
        .filter(|&id| id != source)
        .max_by_key(|&id| {
            (
                torus.dist(Coord::ORIGIN, torus.coord(id), metric),
                std::cmp::Reverse(id),
            )
        })
        .expect("torus has at least two nodes");
    let adj: Vec<Vec<usize>> = torus
        .node_ids()
        .map(|id| {
            torus
                .neighborhood(id, r, metric) // audit:allow(adhoc-neighborhood)
                .map(|n| n.index())
                .collect()
        })
        .collect();
    let cut = match try_min_vertex_cut(&adj, source.index(), sink.index()) {
        Ok(Some(cut)) => cut,
        // Adjacent terminals (no cut exists) or a degenerate geometry:
        // fall back to the empty seed.
        Ok(None) | Err(_) => return Vec::new(),
    };
    let mut tracker = BoundTracker::new(torus, r, metric, t, &[]);
    let mut seed = Vec::new();
    for v in cut {
        let id = NodeId(u32::try_from(v).expect("torus indices fit in u32"));
        if id != source && tracker.can_add(id) {
            tracker.apply(id, 1);
            seed.push(id);
        }
    }
    seed.sort_unstable();
    seed
}

/// Builds the step-0 state: greedy seed, evaluated once.
pub fn initial_state<F>(torus: &Torus, cfg: &SearchConfig, eval: &mut F) -> AnnealState
where
    F: FnMut(&[NodeId]) -> AttackScore,
{
    let seed_placement = greedy_cut_seed(torus, cfg.r, cfg.metric, cfg.t);
    let score = eval(&seed_placement);
    AnnealState {
        step: 0,
        current: seed_placement.clone(),
        current_score: score,
        best: seed_placement,
        best_score: score,
        evaluations: 1,
        accepted: 0,
    }
}

/// A proposed move, with enough information to undo it on rejection.
enum Move {
    Add(NodeId),
    Remove(NodeId),
    Relocate { out: NodeId, in_: NodeId },
}

/// Runs the annealing chain from `state.step` to `cfg.steps`.
///
/// Each step derives its move kind, operands, and acceptance draw from
/// [`mix`]`(cfg.seed, step, salt)` alone, so a resumed run replays the
/// identical chain. `checkpoint` is invoked after every
/// `checkpoint_every` completed steps (and once more at the end when
/// the last step is not on a checkpoint boundary); pass `0` to disable
/// periodic checkpoints (the final call still happens).
///
/// Acceptance is *threshold annealing*: improving or equal proposals
/// are always accepted; worsening proposals are accepted with a
/// probability that cools linearly from 25% to 0 over the schedule.
/// Scores are compared by `Ord` only — no numeric temperature enters,
/// so the chain is exactly reproducible across platforms.
pub fn anneal<F, C>(
    torus: &Torus,
    cfg: &SearchConfig,
    state: &mut AnnealState,
    eval: &mut F,
    checkpoint_every: u32,
    checkpoint: &mut C,
) where
    F: FnMut(&[NodeId]) -> AttackScore,
    C: FnMut(&AnnealState),
{
    let source = torus.id(Coord::ORIGIN);
    let mut tracker = BoundTracker::new(torus, cfg.r, cfg.metric, cfg.t, &state.current);
    let n = torus.len() as u64;
    let window = 4 * u64::from(cfg.steps.max(1));
    while state.step < cfg.steps {
        let s = state.step;
        let step64 = u64::from(s);
        let proposal = propose(cfg, state, &tracker, source, n, step64);
        if let Some(mv) = proposal {
            // Apply, evaluate, then keep or undo.
            let trial = apply_move(&state.current, &mv);
            match mv {
                Move::Add(id) => tracker.apply(id, 1),
                Move::Remove(id) => tracker.apply(id, -1),
                Move::Relocate { out, in_ } => {
                    tracker.apply(out, -1);
                    tracker.apply(in_, 1);
                }
            }
            let score = eval(&trial);
            state.evaluations += 1;
            let cool = u64::from(cfg.steps - s);
            let accept =
                score >= state.current_score || mix(cfg.seed, step64, SALT_ACCEPT) % window < cool;
            if accept {
                state.accepted += 1;
                state.current = trial;
                state.current_score = score;
                if score > state.best_score {
                    state.best = state.current.clone();
                    state.best_score = score;
                }
            } else {
                match mv {
                    Move::Add(id) => tracker.apply(id, -1),
                    Move::Remove(id) => tracker.apply(id, 1),
                    Move::Relocate { out, in_ } => {
                        tracker.apply(in_, -1);
                        tracker.apply(out, 1);
                    }
                }
            }
        }
        state.step += 1;
        if checkpoint_every > 0 && state.step.is_multiple_of(checkpoint_every) {
            checkpoint(state);
        }
    }
    if checkpoint_every == 0 || !state.step.is_multiple_of(checkpoint_every) {
        checkpoint(state);
    }
    debug_assert!(crate::respects_bound(
        torus,
        cfg.r,
        cfg.metric,
        &state.current,
        cfg.t
    ));
}

const SALT_KIND: u64 = 0;
const SALT_PRIMARY: u64 = 1;
const SALT_SECONDARY: u64 = 2;
const SALT_ACCEPT: u64 = 3;

/// Derives step `step64`'s move, or `None` when the drawn move is
/// inadmissible (occupied candidate, bound violation, empty set…) — an
/// inadmissible draw burns the step without an evaluation.
fn propose(
    cfg: &SearchConfig,
    state: &AnnealState,
    tracker: &BoundTracker<'_>,
    source: NodeId,
    n: u64,
    step64: u64,
) -> Option<Move> {
    let kind = mix(cfg.seed, step64, SALT_KIND) % 3;
    match kind {
        0 => {
            let id = NodeId((mix(cfg.seed, step64, SALT_PRIMARY) % n) as u32);
            (id != source && state.current.binary_search(&id).is_err() && tracker.can_add(id))
                .then_some(Move::Add(id))
        }
        1 => {
            if state.current.is_empty() {
                return None;
            }
            let idx = (mix(cfg.seed, step64, SALT_PRIMARY) % state.current.len() as u64) as usize;
            Some(Move::Remove(state.current[idx]))
        }
        _ => {
            if state.current.is_empty() {
                return None;
            }
            let idx = (mix(cfg.seed, step64, SALT_PRIMARY) % state.current.len() as u64) as usize;
            let out = state.current[idx];
            let in_ = NodeId((mix(cfg.seed, step64, SALT_SECONDARY) % n) as u32);
            if in_ == source || in_ == out || state.current.binary_search(&in_).is_ok() {
                return None;
            }
            // Admissibility of the incoming node is checked with the
            // outgoing one still counted — strictly conservative (a
            // placement passing this check also passes after the
            // removal), and it keeps the check side-effect free.
            tracker.can_add(in_).then_some(Move::Relocate { out, in_ })
        }
    }
}

/// The placement after `mv`, sorted and deduped.
fn apply_move(current: &[NodeId], mv: &Move) -> Vec<NodeId> {
    let mut next: Vec<NodeId> = match *mv {
        Move::Add(id) => {
            let mut v = current.to_vec();
            v.push(id);
            v
        }
        Move::Remove(id) => current.iter().copied().filter(|&x| x != id).collect(),
        Move::Relocate { out, in_ } => {
            let mut v: Vec<NodeId> = current.iter().copied().filter(|&x| x != out).collect();
            v.push(in_);
            v
        }
    };
    next.sort_unstable();
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respects_bound;

    fn torus() -> Torus {
        Torus::new(12, 12)
    }

    fn cfg(t: usize, seed: u64, steps: u32) -> SearchConfig {
        SearchConfig {
            r: 1,
            metric: Metric::Linf,
            t,
            seed,
            steps,
        }
    }

    /// A cheap deterministic stand-in for the simulation: more faults
    /// and larger ids score higher.
    fn toy_eval(placement: &[NodeId]) -> AttackScore {
        AttackScore {
            wrong: 0,
            undecided: 0,
            last_round: placement.iter().map(|id| id.0).sum::<u32>() % 1000
                + 10 * placement.len() as u32,
        }
    }

    #[test]
    fn mix_is_pure_and_salt_sensitive() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 3));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn greedy_seed_respects_bound_and_is_nonempty() {
        let torus = torus();
        for t in 1..=3usize {
            let seed = greedy_cut_seed(&torus, 1, Metric::Linf, t);
            assert!(!seed.is_empty(), "t={t}");
            assert!(respects_bound(&torus, 1, Metric::Linf, &seed, t), "t={t}");
            let mut sorted = seed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(seed, sorted);
            assert!(!seed.contains(&torus.id(Coord::ORIGIN)));
        }
    }

    #[test]
    fn greedy_seed_zero_budget_is_empty() {
        assert!(greedy_cut_seed(&torus(), 1, Metric::Linf, 0).is_empty());
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let torus = torus();
        let cfg = cfg(2, 42, 80);
        let run = || {
            let mut eval = toy_eval;
            let mut state = initial_state(&torus, &cfg, &mut eval);
            anneal(&torus, &cfg, &mut state, &mut eval, 0, &mut |_| {});
            state
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.evaluations > 1, "no proposals were evaluated");
        assert!(a.accepted > 0, "no proposals were accepted");
    }

    #[test]
    fn different_seeds_diverge() {
        let torus = torus();
        let run = |seed| {
            let cfg = cfg(2, seed, 80);
            let mut eval = toy_eval;
            let mut state = initial_state(&torus, &cfg, &mut eval);
            anneal(&torus, &cfg, &mut state, &mut eval, 0, &mut |_| {});
            state
        };
        // Identical initial seeds, but the chains diverge.
        assert_ne!(run(7).current, run(8).current);
    }

    #[test]
    fn anneal_preserves_local_bound() {
        let torus = torus();
        for seed in 0..4u64 {
            let cfg = cfg(2, seed, 120);
            let mut eval = toy_eval;
            let mut state = initial_state(&torus, &cfg, &mut eval);
            anneal(&torus, &cfg, &mut state, &mut eval, 0, &mut |_| {});
            assert!(respects_bound(
                &torus,
                cfg.r,
                cfg.metric,
                &state.current,
                cfg.t
            ));
            assert!(respects_bound(
                &torus,
                cfg.r,
                cfg.metric,
                &state.best,
                cfg.t
            ));
            assert!(state.best_score >= state.current_score.min(state.best_score));
        }
    }

    #[test]
    fn resume_from_checkpoint_matches_straight_run() {
        let torus = torus();
        let cfg = cfg(2, 1234, 100);

        // Straight-through run, capturing the step-40 checkpoint.
        let mut eval = toy_eval;
        let mut straight = initial_state(&torus, &cfg, &mut eval);
        let mut snapshot: Option<AnnealState> = None;
        anneal(&torus, &cfg, &mut straight, &mut eval, 40, &mut |s| {
            if s.step == 40 {
                snapshot = Some(s.clone());
            }
        });

        // Resume from the snapshot; the tail must replay identically.
        let mut resumed = snapshot.expect("checkpoint at step 40 fired");
        // Evaluation/acceptance counters continue from the checkpoint.
        anneal(&torus, &cfg, &mut resumed, &mut eval, 0, &mut |_| {});
        assert_eq!(resumed, straight);
    }

    #[test]
    fn best_never_regresses() {
        let torus = torus();
        let cfg = cfg(3, 99, 150);
        let mut eval = toy_eval;
        let mut state = initial_state(&torus, &cfg, &mut eval);
        let mut last_best = state.best_score;
        anneal(&torus, &cfg, &mut state, &mut eval, 10, &mut |s| {
            assert!(s.best_score >= last_best);
            last_best = s.best_score;
        });
        assert!(state.best_score >= state.current_score || state.best_score >= last_best);
    }
}
