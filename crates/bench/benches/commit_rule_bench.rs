//! Criterion bench: the commit-rule ablation (DESIGN.md choice #1) —
//! two-level (§VI) vs one-level (§VI-B) evaluation cost on identical
//! synthetic evidence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbcast_grid::{Coord, Metric, NeighborTable, Torus};
use rbcast_protocols::{CommitRule, EvidenceStore};

/// Loads evidence mimicking a frontier node at commit time: `committers`
/// committers in one neighborhood, each reported over several disjoint
/// relay chains.
fn loaded_store(torus: &Torus, rule: CommitRule, t: usize, committers: i64) -> EvidenceStore {
    let mut ev = EvidenceStore::new(t, rule);
    for k in 0..committers {
        let committer = torus.id(Coord::new(10 + (k % 5), 10 + (k / 5)));
        // a direct observation plus disjoint relayed chains
        ev.record_direct(committer, true);
        for relay_row in 0..4i64 {
            let relay = torus.id(Coord::new(9 - relay_row, 9 + k % 3));
            ev.record_chain(committer, true, &[relay]);
        }
    }
    ev
}

fn bench_commit_rules(c: &mut Criterion) {
    let torus = Torus::new(32, 32);
    let arena = NeighborTable::build(&torus, 2, Metric::Linf);
    let mut group = c.benchmark_group("commit_rule_evaluate");
    for &(rule, name) in &[
        (CommitRule::TwoLevel, "two_level"),
        (CommitRule::OneLevel, "one_level"),
    ] {
        for &committers in &[6i64, 12] {
            group.bench_with_input(
                BenchmarkId::new(name, committers),
                &committers,
                |b, &committers| {
                    b.iter_batched(
                        || loaded_store(&torus, rule, 4, committers),
                        |mut ev| {
                            let geo = rbcast_protocols::Geometry::new(&arena, Coord::new(8, 8));
                            ev.evaluate(&geo)
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_commit_rules);
criterion_main!(benches);
