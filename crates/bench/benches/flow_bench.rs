//! Criterion bench: Dinic max-flow and vertex-disjoint path counting on
//! lattice ball graphs (the Menger verification used by the commit
//! rules and construction checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbcast_flow::{vertex_disjoint_count, FlowNetwork};
use rbcast_grid::{Coord, Metric};

/// Builds the adjacency of the closed L∞ ball of radius `r` around the
/// origin, under transmission radius `r`.
fn ball_graph(r: u32) -> (Vec<Vec<usize>>, usize, usize) {
    let ri = i64::from(r);
    let mut nodes = Vec::new();
    for dy in -ri..=ri {
        for dx in -ri..=ri {
            nodes.push(Coord::new(dx, dy));
        }
    }
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&a| {
            nodes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b != a && Metric::Linf.within(a, b, r))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    // corner to corner
    let s = 0;
    let t = nodes.len() - 1;
    (adj, s, t)
}

fn bench_vertex_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_disjoint_count");
    for r in [2u32, 3, 4] {
        let (adj, s, t) = ball_graph(r);
        group.bench_with_input(BenchmarkId::new("ball_corner_to_corner", r), &r, |b, _| {
            b.iter(|| vertex_disjoint_count(std::hint::black_box(&adj), s, t, None));
        });
    }
    group.finish();
}

fn bench_dinic_unit_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("dinic");
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("layered_unit", n), &n, |b, &n| {
            b.iter(|| {
                // source -> n middle nodes -> sink, unit capacities
                let mut net = FlowNetwork::new(n + 2);
                let (s, t) = (n, n + 1);
                for i in 0..n {
                    net.add_edge(s, i, 1);
                    net.add_edge(i, t, 1);
                }
                net.max_flow(s, t)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_disjoint, bench_dinic_unit_grid);
criterion_main!(benches);
