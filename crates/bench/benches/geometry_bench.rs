//! Criterion bench: geometry primitives — neighborhood iteration, fault
//! placement, local-bound auditing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbcast_adversary::{local_fault_bound, Placement};
use rbcast_grid::{Coord, Metric, Torus};

fn bench_neighborhood(c: &mut Criterion) {
    let torus = Torus::new(40, 40);
    let center = torus.id(Coord::new(20, 20));
    let mut group = c.benchmark_group("neighborhood_iteration");
    for r in [1u32, 2, 4] {
        for metric in [Metric::Linf, Metric::L2] {
            group.bench_with_input(BenchmarkId::new(format!("{metric}"), r), &r, |b, &r| {
                b.iter(|| torus.neighborhood(center, r, metric).count());
            });
        }
    }
    group.finish();
}

fn bench_placement_and_audit(c: &mut Criterion) {
    let torus = Torus::for_radius(2);
    let mut group = c.benchmark_group("placement");
    group.sample_size(20);

    group.bench_function("random_local_t4", |b| {
        b.iter(|| {
            Placement::RandomLocal {
                t: 4,
                seed: 9,
                attempts: 60,
            }
            .place(&torus, 2, Metric::Linf)
        });
    });

    let faults = Placement::DoubleStrip.place(&torus, 2, Metric::Linf);
    group.bench_function("audit_double_strip", |b| {
        b.iter(|| local_fault_bound(&torus, 2, Metric::Linf, &faults));
    });

    group.finish();
}

criterion_group!(benches, bench_neighborhood, bench_placement_and_audit);
criterion_main!(benches);
