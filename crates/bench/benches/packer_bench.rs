//! Criterion bench: ChainPacker insertion (with dominance pruning) and
//! max-disjoint queries on benign and adversarial chain populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbcast_flow::ChainPacker;

/// The benign shape: the construction's parallel disjoint chains.
fn benign_packer(chains: u64) -> ChainPacker {
    let mut p = ChainPacker::new();
    for k in 0..chains {
        p.insert(&[3 * k, 3 * k + 1, 3 * k + 2]);
    }
    p
}

/// The adversarial shape: heavily overlapping chains (a clique-ish
/// conflict graph with a planted disjoint family).
fn adversarial_packer(chains: u64) -> ChainPacker {
    let mut p = ChainPacker::new();
    for k in 0..chains {
        // all share relay 0 pairwise-ish: k vs k+1 overlap
        p.insert(&[k, k + 1, 1_000 + k]);
    }
    for k in 0..10 {
        p.insert(&[10_000 + 3 * k, 10_001 + 3 * k, 10_002 + 3 * k]);
    }
    p
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("packer_insert");
    for n in [100u64, 1_000] {
        group.bench_with_input(BenchmarkId::new("benign", n), &n, |b, &n| {
            b.iter(|| benign_packer(std::hint::black_box(n)));
        });
        // dominated insertions: one short chain dominates all extensions
        group.bench_with_input(BenchmarkId::new("dominated", n), &n, |b, &n| {
            b.iter(|| {
                let mut p = ChainPacker::new();
                p.insert(&[1]);
                for k in 0..n {
                    p.insert(&[1, 100 + k]);
                }
                p
            });
        });
    }
    group.finish();
}

fn bench_max_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("packer_max_disjoint");
    for n in [50u64, 500] {
        let benign = benign_packer(n);
        group.bench_with_input(BenchmarkId::new("benign", n), &n, |b, _| {
            b.iter(|| benign.max_disjoint(|_| true, 11));
        });
        let adv = adversarial_packer(n);
        group.bench_with_input(BenchmarkId::new("adversarial", n), &n, |b, _| {
            b.iter(|| adv.max_disjoint(|_| true, 11));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_max_disjoint);
criterion_main!(benches);
