//! Criterion bench: end-to-end broadcast runs — simulator round
//! throughput for each protocol family.

use criterion::{criterion_group, criterion_main, Criterion};
use rbcast_adversary::Placement;
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_end_to_end");
    group.sample_size(10);

    group.bench_function("flood_r2_fault_free", |b| {
        b.iter(|| Experiment::new(2, ProtocolKind::Flood).run());
    });

    group.bench_function("cpa_r2_cluster", |b| {
        let t = thresholds::cpa_guaranteed_t(2) as usize;
        b.iter(|| {
            Experiment::new(2, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Silent)
                .run()
        });
    });

    group.bench_function("indirect_simplified_r2_cluster", |b| {
        let t = thresholds::byzantine_max_t(2) as usize;
        b.iter(|| {
            Experiment::new(2, ProtocolKind::IndirectSimplified)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Silent)
                .run()
        });
    });

    group.bench_function("indirect_full_r1_cluster", |b| {
        let t = thresholds::byzantine_max_t(1) as usize;
        b.iter(|| {
            Experiment::new(1, ProtocolKind::IndirectFull)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Liar)
                .run()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
