//! Criterion bench: the deterministic parallel sweep engine — serial
//! baseline vs multi-thread fan-out over a fixed 32-experiment grid —
//! plus the machine-readable `BENCH_sweep.json` writer (the checked-in
//! perf baseline at the repository root).
//!
//! The grid is fixed (placements and seeds set at construction), so the
//! outcomes are byte-identical at every thread count; only wall time may
//! differ. Speedup scales with the host's cores — on a single-core
//! container serial and parallel coincide.

use criterion::{criterion_group, Criterion};
use rbcast_adversary::Placement;
use rbcast_bench::perf;
use rbcast_core::{engine, Experiment, FaultKind, ProtocolKind};
use std::path::Path;

/// The fixed 32-run grid: 4 configs × 8 seeds at r = 1.
fn grid() -> Vec<Experiment> {
    let configs = [
        (ProtocolKind::Flood, FaultKind::CrashStop),
        (ProtocolKind::Cpa, FaultKind::Silent),
        (ProtocolKind::IndirectSimplified, FaultKind::Liar),
        (ProtocolKind::IndirectSimplified, FaultKind::Forger),
    ];
    configs
        .iter()
        .flat_map(|&(kind, fault)| {
            (0..8u64).map(move |seed| {
                Experiment::new(1, kind)
                    .with_t(1)
                    .with_placement(Placement::RandomLocal {
                        t: 1,
                        seed,
                        attempts: 40,
                    })
                    .with_fault_kind(fault)
            })
        })
        .collect()
}

fn bench_sweep_engine(c: &mut Criterion) {
    let experiments = grid();
    assert_eq!(experiments.len(), 32);

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(5);
    group.bench_function("serial_32", |b| {
        b.iter(|| engine::run_experiments(&experiments, 1));
    });
    group.bench_function("threads4_32", |b| {
        b.iter(|| engine::run_experiments(&experiments, 4));
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engine);

/// Best-of-3 sweep throughput (runs/sec) at `threads` workers.
fn best_rps(experiments: &[Experiment], threads: usize) -> f64 {
    (0..3)
        .map(|_| {
            perf::run_sweep_timed(
                &format!("sweep_engine/threads{threads}"),
                experiments,
                threads,
            )
            .1
            .runs_per_sec()
        })
        .fold(0.0f64, f64::max)
}

/// Regression guard behind `-- --smoke` (run by `ci.sh`): multi-thread
/// sweeps must not fall below 85% of single-thread throughput. With the
/// shared arena, workers clone an `Arc` instead of each rebuilding the
/// neighbor tables, so threading costs at most scheduler overhead even
/// on a single-core host; the pre-arena engine failed this gate
/// (threads2 ran at ~75% of serial). No JSON is written in smoke mode.
fn smoke() -> ! {
    let experiments = grid();
    let rps1 = best_rps(&experiments, 1);
    let mut ok = true;
    println!("smoke threads1: {rps1:.1} runs/s (floor for 2/4 threads: 85%)");
    for threads in [2usize, 4] {
        let rps = best_rps(&experiments, threads);
        let ratio = rps / rps1.max(1e-9);
        let pass = ratio >= 0.85;
        ok &= pass;
        println!(
            "smoke threads{threads}: {rps:.1} runs/s ({:.0}% of serial) {}",
            ratio * 100.0,
            if pass { "ok" } else { "REGRESSION" }
        );
    }
    if !ok {
        eprintln!(
            "sweep-engine smoke FAILED: parallel throughput collapsed below \
             85% of the serial baseline (per-worker setup is being repeated \
             — is the shared topology arena still wired in?)"
        );
        std::process::exit(1);
    }
    println!("sweep-engine smoke passed");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    }
    benches();

    // Baseline document: one timed sweep per thread count, written to
    // BENCH_sweep.json at the workspace root. Best of two passes per
    // thread count smooths scheduler noise without hiding contention.
    let experiments = grid();
    let mut timings = Vec::new();
    for threads in [1usize, 2, 4] {
        let (_, first) = perf::run_sweep_timed(
            &format!("sweep_engine/threads{threads}"),
            &experiments,
            threads,
        );
        let (_, second) = perf::run_sweep_timed(
            &format!("sweep_engine/threads{threads}"),
            &experiments,
            threads,
        );
        timings.push(if second.wall_ms < first.wall_ms {
            second
        } else {
            first
        });
    }
    for t in &timings {
        println!(
            "{}: {} runs in {:.1} ms ({:.0} runs/s)",
            t.label,
            t.runs,
            t.wall_ms,
            t.runs_per_sec()
        );
    }
    if let (Some(serial), Some(par4)) = (timings.first(), timings.last()) {
        println!(
            "speedup at 4 threads vs serial: {:.2}x (host parallelism {})",
            serial.wall_ms / par4.wall_ms.max(1e-9),
            engine::thread_count(None)
        );
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    perf::write_bench_json(
        &root.join("BENCH_sweep.json"),
        engine::thread_count(None),
        &timings,
    );
}
