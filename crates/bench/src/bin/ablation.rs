//! ABLATION — the design choices called out in DESIGN.md:
//!
//! 1. commit rule: two-level (§VI) vs one-level (§VI-B style);
//! 2. report depth: 4-hop (3 relays) vs 2-hop (1 relay);
//!
//! crossed over the same arena, budget and adversary, comparing
//! completion, rounds and message volume. (The full 3-relay/one-level and
//! 1-relay/two-level hybrids are not analysed in the paper — their
//! empirical behaviour is a finding of this reproduction.)

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast_protocols::{CommitRule, IndirectConfig};

fn main() {
    let r = 2u32;
    let t = thresholds::byzantine_max_t(r) as usize;
    header(&format!(
        "Commit-rule / report-depth ablation (r = {r}, t = {t}, liar cluster)"
    ));
    println!(
        "{:<10} {:<10} {:>9} {:>7} {:>10} {:>12} {:>8}",
        "relays", "rule", "correct", "wrong", "undecided", "broadcasts", "rounds"
    );
    rule(72);

    let mut v = Verdicts::new();
    let mut results = Vec::new();
    for max_relays in [1usize, 3] {
        for (rule_kind, rule_name) in [
            (CommitRule::TwoLevel, "two-level"),
            (CommitRule::OneLevel, "one-level"),
        ] {
            let cfg = IndirectConfig {
                max_relays,
                rule: rule_kind,
            };
            let o = Experiment::new(r, ProtocolKind::IndirectCustom(cfg))
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Liar)
                .run();
            println!(
                "{:<10} {:<10} {:>9} {:>7} {:>10} {:>12} {:>8}",
                max_relays,
                rule_name,
                o.committed_correct,
                o.committed_wrong,
                o.undecided,
                o.stats.messages_sent,
                o.stats.rounds
            );
            results.push((max_relays, rule_kind, o));
        }
    }

    // Safety must hold in every configuration.
    v.check(
        "every configuration is safe (no wrong commits) at t_max",
        results.iter().all(|(_, _, o)| o.safe()),
    );
    // The paper's two configurations complete.
    let complete = |mr: usize, rk: CommitRule| {
        results
            .iter()
            .find(|(m, k, _)| *m == mr && *k == rk)
            .is_some_and(|(_, _, o)| o.all_honest_correct())
    };
    v.check(
        "§VI (3 relays, two-level) completes",
        complete(3, CommitRule::TwoLevel),
    );
    v.check(
        "§VI-B (1 relay, one-level) completes",
        complete(1, CommitRule::OneLevel),
    );
    // One-level with deep reports is at least as live as two-level.
    v.check(
        "one-level with 3 relays completes (strictly more evidence admitted)",
        complete(3, CommitRule::OneLevel),
    );
    // Message-volume ordering: 1-relay configurations are far cheaper.
    let msgs = |mr: usize, rk: CommitRule| {
        results
            .iter()
            .find(|(m, k, _)| *m == mr && *k == rk)
            .map(|(_, _, o)| o.stats.messages_sent)
            .unwrap_or(0)
    };
    v.check(
        "2-hop reports cost an order of magnitude less traffic than 4-hop",
        msgs(1, CommitRule::OneLevel) * 5 <= msgs(3, CommitRule::TwoLevel),
    );

    // Report the hybrid finding either way (no pass/fail semantics: the
    // paper makes no claim).
    let hybrid = results
        .iter()
        .find(|(m, k, _)| *m == 1 && *k == CommitRule::TwoLevel)
        .map(|(_, _, o)| o.all_honest_correct())
        .unwrap_or(false);
    println!();
    println!(
        "finding: the 1-relay/two-level hybrid {} at t_max on this arena",
        if hybrid {
            "completes"
        } else {
            "does NOT complete"
        }
    );
    v.finish()
}
