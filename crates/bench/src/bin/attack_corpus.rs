//! ATTACK — the adversary-search corpus: runs `rbcast attack` at a
//! pinned seed, replays every worst-found placement through a fresh
//! experiment, and verifies the search properties CI relies on:
//!
//! 1. every found placement respects the local bound it was searched
//!    under (the adversary never cheats the model);
//! 2. replaying a found placement as `Placement::Explicit` reproduces
//!    the search's recorded score exactly (placements are portable
//!    artifacts, not search-internal state);
//! 3. the search beats the best hand-built strategy on at least one
//!    `(r, t)` cell (the optimizer earns its keep);
//! 4. above the proven threshold the search finds a violation, and at
//!    or below it safety holds (no wrong commit) — Theorem 1 seen from
//!    the adversary's side.
//!
//! `--smoke` keeps radius 1 with a reduced annealing budget: the
//! seconds-scale CI gate.

use rbcast_adversary::{local_fault_bound, AttackScore, Placement};
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::attack::{run_attack, AttackConfig};
use rbcast_core::{Experiment, FaultKind, ProtocolKind};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut cfg = AttackConfig::new(0xA77AC4);
    cfg.protocol = ProtocolKind::IndirectSimplified;
    cfg.fault_kind = FaultKind::Liar;
    if smoke {
        cfg.rs = vec![1];
        cfg.steps = 60;
    } else {
        cfg.rs = vec![1, 2];
        cfg.steps = 120;
    }
    cfg.threads = std::thread::available_parallelism().map_or(1, usize::from);

    header("Adversary search corpus (worst-found fault placements)");
    println!(
        "{:>3} {:>4} {:>5} {:>7} {:<28} {:<24} {:>7}",
        "r", "t", "thr", "faults", "found score", "best hand-built", "verdict"
    );
    rule(88);

    let report = match run_attack(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("attack search failed: {e}");
            std::process::exit(1);
        }
    };

    let mut v = Verdicts::new();
    for cell in &report.cells {
        let verdict = if cell.beats_baseline() {
            "BEATS"
        } else if cell.found_score == cell.baseline_score {
            "ties"
        } else {
            "behind"
        };
        println!(
            "{:>3} {:>4} {:>5} {:>7} {:<28} {:<24} {:>7}",
            cell.cell.r,
            cell.cell.t,
            cell.cell.threshold,
            cell.found.len(),
            cell.found_score.to_string(),
            format!("{} {}", cell.baseline_name, cell.baseline_score),
            verdict
        );

        let torus = rbcast_core::attack::attack_torus(cell.cell.r);
        let bound = local_fault_bound(&torus, cell.cell.r, cfg.metric, &cell.found);
        v.check(
            &format!(
                "r={} t={}: found placement respects the local bound ({bound} ≤ {})",
                cell.cell.r, cell.cell.t, cell.cell.t
            ),
            bound <= cell.cell.t,
        );

        // Replay the placement as a portable artifact: an experiment
        // built only from the id list must reproduce the search's score.
        let outcome = Experiment::new(cell.cell.r, cfg.protocol)
            .with_metric(cfg.metric)
            .with_torus(torus)
            .with_t(cell.cell.t)
            .with_fault_kind(cfg.fault_kind)
            .with_placement(Placement::Explicit {
                faults: cell.found.clone(),
            })
            .run();
        let replayed = AttackScore {
            wrong: outcome.committed_wrong as u64,
            undecided: outcome.undecided as u64,
            last_round: outcome.last_decision_round.unwrap_or(0),
        };
        v.check(
            &format!(
                "r={} t={}: replaying the placement reproduces its score",
                cell.cell.r, cell.cell.t
            ),
            replayed == cell.found_score,
        );

        // Margin-to-threshold: the paper's bound, seen from the
        // adversary's side. At or below the proven threshold the search
        // must not find a *wrong* commit (safety); past it, it must
        // break the broadcast.
        if cell.cell.t <= cell.cell.threshold {
            v.check(
                &format!(
                    "r={} t={} ≤ thr: no placement forges a wrong commit",
                    cell.cell.r, cell.cell.t
                ),
                cell.found_score.wrong == 0,
            );
        } else {
            v.check(
                &format!(
                    "r={} t={} > thr: search breaks reliable broadcast",
                    cell.cell.r, cell.cell.t
                ),
                cell.found_score.is_break(),
            );
        }
    }

    v.check(
        "search beats the best hand-built strategy on ≥ 1 cell",
        report.gate_passed(),
    );

    v.finish()
}
