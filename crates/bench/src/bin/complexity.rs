//! COMPLEXITY — message-complexity predictions vs measurement: the
//! quantified version of the paper's overhead motivation for the
//! simplified protocol ("localizes the circulation of indirect
//! reports").

use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::{complexity, Experiment, ProtocolKind};
use rbcast_grid::{Metric, Torus};

fn main() {
    let mut v = Verdicts::new();

    header("Fault-free message complexity, r = 1 (torus 12x12, n = 144)");
    println!("{:<22} {:>12} {:>12}", "protocol", "predicted", "measured");
    rule(48);
    let rows = complexity::table(1);
    for row in &rows {
        println!(
            "{:<22} {:>12} {:>12}",
            row.protocol,
            row.predicted
                .map_or("(measured)".to_string(), |p| p.to_string()),
            row.measured
        );
    }
    v.check(
        "all closed-form predictions exact at r = 1",
        rows.iter()
            .all(|row| row.predicted.is_none_or(|p| p == row.measured)),
    );

    header("Simplified-protocol volume n·(2r+1)² across radii (L∞, fault-free)");
    println!(
        "{:>3} {:>8} {:>12} {:>12}",
        "r", "n", "predicted", "measured"
    );
    rule(40);
    let mut exact = true;
    for r in 1..=3u32 {
        let torus = Torus::for_radius(r);
        let o = Experiment::new(r, ProtocolKind::IndirectSimplified).run();
        let p = complexity::predicted_broadcasts(
            ProtocolKind::IndirectSimplified,
            &torus,
            r,
            Metric::Linf,
        )
        .expect("closed form exists");
        println!(
            "{:>3} {:>8} {:>12} {:>12}",
            r,
            torus.len(),
            p,
            o.stats.messages_sent
        );
        exact &= p == o.stats.messages_sent && o.all_honest_correct();
    }
    v.check("simplified volume is exactly n·(2r+1)² for r = 1..3", exact);
    v.finish()
}
