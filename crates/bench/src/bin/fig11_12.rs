//! FIG11-12 — the Euclidean-metric construction (§VIII): half-disk
//! populations and the disjoint-path count between `P` and `Q` at
//! distance `≈ r√2` inside a single neighborhood, converging to the
//! paper's `≈ 1.47r² (≈ 0.47πr²)` estimate.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::l2;

fn main() {
    header("Fig. 11 — half-neighborhood populations (L2)");
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>12}",
        "r", "disk", "half-disk", "half/r²", "0.5π"
    );
    rule(56);
    let mut half_ok = true;
    for r in [4u32, 6, 8, 10, 14, 20, 28, 40] {
        let half = l2::half_disk_count(r);
        let ratio = half as f64 / (f64::from(r) * f64::from(r));
        println!(
            "{:>4} {:>10} {:>12} {:>14.4} {:>12.4}",
            r,
            l2::disk_count(r),
            half,
            ratio,
            0.5 * std::f64::consts::PI
        );
        if r >= 10 {
            half_ok &= (ratio - 0.5 * std::f64::consts::PI).abs() < 0.2;
        }
    }

    header("Fig. 12 — disjoint P-Q paths inside one neighborhood, |PQ| = ⌊r√2⌋");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "r", "|PQ|", "disk", "common", "paths", "paths/r²", "1.47", "2t+1"
    );
    rule(80);
    let mut paths_ok = true;
    let mut threshold_ok = true;
    for r in [4u32, 6, 8, 10, 12, 16, 20] {
        let res = l2::fig12(r);
        let t = (0.23 * std::f64::consts::PI * f64::from(r) * f64::from(r)) as u32;
        println!(
            "{:>4} {:>6} {:>10} {:>10} {:>10} {:>12.3} {:>10.2} {:>10}",
            r,
            res.separation,
            res.disk_nodes,
            res.common_neighbors,
            res.disjoint_paths,
            res.paths_per_r_sq(),
            1.47,
            2 * t + 1
        );
        if r >= 10 {
            // lattice effects shrink with r; accept a generous band
            paths_ok &= (1.1..=1.9).contains(&res.paths_per_r_sq());
        }
        threshold_ok &= res.disjoint_paths > 2 * t;
    }

    header("Fig. 12 — explicit path families (lattice-rounded regions)");
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "r", "A", "B", "C", "E", "total", "total/r²"
    );
    rule(62);
    let mut families_ok = true;
    for r in [6u32, 8, 12, 16, 20] {
        let reg = l2::fig12_regions(r);
        println!(
            "{:>4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12.3}",
            r,
            reg.a,
            reg.b_pairs,
            reg.c_pairs,
            reg.e_pairs,
            reg.total(),
            reg.per_r_sq()
        );
        let t = (0.23 * std::f64::consts::PI * f64::from(r) * f64::from(r)) as usize;
        if r >= 8 {
            families_ok &= reg.total() > 2 * t;
        }
    }

    let mut v = Verdicts::new();
    v.check(
        "explicit families alone provide ≥ 2t+1 disjoint paths (r ≥ 8)",
        families_ok,
    );
    v.check("half-disk population ≈ 0.5πr² for large r", half_ok);
    v.check(
        "P-Q disjoint paths ≈ 1.47r² (paper's area estimate)",
        paths_ok,
    );
    v.check(
        "paths ≥ 2t+1 for t = ⌊0.23πr²⌋ — the §VIII induction premise",
        threshold_ok,
    );
    v.finish()
}
