//! FIG13 — the Euclidean-metric impossibility construction (§VIII): a
//! width-`r` strip puts `≈ 0.6πr²` nodes in the worst neighborhood, the
//! checkerboard half `≈ 0.3πr²`; the full strip partitions the network
//! under the L2 metric, stalling the crash-stop flood.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::l2;
use rbcast_core::{Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Metric;

fn main() {
    header("Fig. 13 — strip counts under the L2 metric");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "r", "strip/disk", "per r²", "0.6π", "half/disk", "0.3π"
    );
    rule(68);
    let mut counts_ok = true;
    for r in [4u32, 6, 8, 12, 16, 24] {
        let res = l2::fig13(r);
        let r_sq = f64::from(r) * f64::from(r);
        let strip_ratio = res.max_strip_per_disk as f64 / r_sq;
        let half_ratio = res.max_half_strip_per_disk as f64 / r_sq;
        println!(
            "{:>4} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>10.3}",
            r,
            res.max_strip_per_disk,
            strip_ratio,
            0.6 * std::f64::consts::PI,
            half_ratio,
            0.3 * std::f64::consts::PI
        );
        if r >= 12 {
            counts_ok &= (strip_ratio - 0.6 * std::f64::consts::PI).abs() < 0.15
                && (half_ratio - 0.3 * std::f64::consts::PI).abs() < 0.1;
        }
    }

    // Simulation: the L2 flood is stopped by the full strip.
    let r = 3u32;
    let o = Experiment::new(r, ProtocolKind::Flood)
        .with_metric(Metric::L2)
        .with_t(0)
        .with_placement(Placement::DoubleStrip)
        .with_fault_kind(FaultKind::CrashStop)
        .run();
    println!();
    println!("L2 flood against the strip (r={r}): {o}");

    let mut v = Verdicts::new();
    v.check(
        "strip ≈ 0.6πr² and half-strip ≈ 0.3πr² per neighborhood",
        counts_ok,
    );
    v.check(
        "the width-r strip partitions the L2 network (flood strands nodes)",
        o.undecided > 0 && o.committed_correct > 0,
    );
    v.finish()
}
