//! FIG14-19 — Theorem 6's staged CPA analysis: stage-1 seed counts, the
//! committed-stack growth to `⌊r/3⌋` rows, stage-2 corner/rest counts —
//! all verified with exact integer arithmetic — plus CPA simulations at
//! `t = ⌊⅔r²⌋`.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::cpa_stages;
use rbcast_core::{Experiment, FaultKind, ProtocolKind};

fn main() {
    header("Figs. 14-19 — Theorem 6 stage geometry");
    println!(
        "{:>4} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "r", "t=⌊⅔r²⌋", "2t+1", "seed min", "stack", "⌊r/3⌋", "corner", "rest"
    );
    rule(84);
    let mut geometry_ok = true;
    for r in [2u32, 3, 4, 6, 9, 12, 18, 30, 60] {
        let t = cpa_stages::cpa_max_t(r);
        let need = cpa_stages::cpa_commit_threshold(r);
        let seed_min = cpa_stages::seed_committed_neighbors(r, i64::from(cpa_stages::half_up(r)));
        let stack = cpa_stages::guaranteed_stack_rows(r);
        println!(
            "{:>4} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
            r,
            t,
            need,
            seed_min,
            stack,
            cpa_stages::required_stack_rows(r),
            cpa_stages::stage2_corner_count(r),
            cpa_stages::stage2_rest_count(r)
        );
        geometry_ok &= cpa_stages::theorem6_holds(r);
    }

    let mut v = Verdicts::new();
    v.check("Theorem 6 inequality chain holds for r = 2..100", {
        let mut ok = geometry_ok;
        for r in 2..=100 {
            ok &= cpa_stages::theorem6_holds(r);
        }
        ok
    });

    // Simulation: CPA at its guaranteed budget, hostile cluster on the
    // wavefront, both silent and lying behaviours.
    for r in 1..=3u32 {
        let t = cpa_stages::cpa_max_t(r) as usize;
        let mut ok = true;
        for kind in [FaultKind::Silent, FaultKind::Liar] {
            let o = Experiment::new(r, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(kind)
                .run();
            ok &= o.all_honest_correct();
        }
        v.check(
            &format!("CPA completes at t = ⌊⅔r²⌋ = {t} under cluster faults (r={r})"),
            ok,
        );
    }
    v.finish()
}
