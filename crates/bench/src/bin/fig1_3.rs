//! FIG1-3 — regions M, R, U, S1, S2 of Figs. 1–3: cardinalities and the
//! disjoint decomposition `M = R ∪ U ∪ S1 ∪ S2`.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::corner;
use rbcast_construct::r_2r_plus_1;

fn main() {
    header("Figs. 1-3 — committer regions for the worst-case frontier node P");
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>6} {:>10} {:>12}",
        "r", "|M|", "|R|", "|U|", "|S1|", "|S2|", "r(2r+1)"
    );
    rule(68);
    let mut v = Verdicts::new();
    let mut decomp = true;
    let mut contain = true;
    for r in 1..=12u32 {
        let (m, rr, u, s1, s2) = (
            corner::region_m(r).len(),
            corner::region_r(r).len(),
            corner::region_u(r).len(),
            corner::region_s1(r).len(),
            corner::region_s2(r).len(),
        );
        println!(
            "{:>3} {:>10} {:>10} {:>10} {:>6} {:>10} {:>12}",
            r,
            m,
            rr,
            u,
            s1,
            s2,
            r_2r_plus_1(r)
        );
        decomp &= corner::decomposition_holds(r);
        contain &= corner::containment_holds(r);
    }
    v.check("M = R ⊎ U ⊎ S1 ⊎ S2 with |M| = r(2r+1), r = 1..12", decomp);
    v.check("M ⊆ nbd(0,0) and R ⊆ nbd(P), r = 1..12", contain);
    v.finish()
}
