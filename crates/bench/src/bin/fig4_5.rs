//! FIG4-5 — the explicit node-disjoint path construction for region-U
//! committers (Figs. 4–5): builds the `r(2r+1)` paths for every valid
//! `(r, p, q)`, verifies hop validity / disjointness / single-
//! neighborhood containment, and cross-checks against a Menger max-flow
//! lower bound for small radii.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::verify::verify_family;
use rbcast_construct::{paths_u, r_2r_plus_1, worst_case_p};
use rbcast_flow::vertex_disjoint_count;
use rbcast_grid::{Coord, Metric, Neighborhood};

fn main() {
    header("Figs. 4-5 — disjoint paths N→P for region-U committers");
    println!(
        "{:>3} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "r", "p", "q", "1-relay", "2-relay", "3-relay", "total", "target"
    );
    rule(60);

    let mut v = Verdicts::new();
    let mut all_verify = true;
    for r in 2..=8u32 {
        for p in 1..r {
            for q in (p + 1)..=r {
                let paths = paths_u::build(r, p, q);
                let n = Coord::new(i64::from(p), i64::from(q));
                let ok = verify_family(
                    &paths,
                    n,
                    worst_case_p(r),
                    r,
                    Metric::Linf,
                    paths_u::enclosing_center(r),
                    3,
                )
                .is_ok();
                all_verify &= ok;
                if r <= 4 {
                    let count = |len: usize| paths.iter().filter(|p| p.len() == len).count();
                    println!(
                        "{:>3} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8}",
                        r,
                        p,
                        q,
                        count(3),
                        count(4),
                        count(5),
                        paths.len(),
                        r_2r_plus_1(r)
                    );
                }
            }
        }
    }
    v.check(
        "all families verify (count, hops, disjointness, containment), r = 2..8",
        all_verify,
    );

    // Independent Menger cross-check on the lattice ball graph.
    let mut flow_ok = true;
    for r in 2..=4u32 {
        let center = paths_u::enclosing_center(r);
        let ball: Vec<Coord> = Neighborhood::new(center, r, Metric::Linf)
            .members()
            .chain(std::iter::once(center))
            .collect();
        let index: std::collections::HashMap<Coord, usize> =
            ball.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let adj: Vec<Vec<usize>> = ball
            .iter()
            .map(|&a| {
                ball.iter()
                    .enumerate()
                    .filter(|&(_, &b)| b != a && Metric::Linf.within(a, b, r))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        for p in 1..r {
            for q in (p + 1)..=r {
                let n = Coord::new(i64::from(p), i64::from(q));
                let want = r_2r_plus_1(r) as u32;
                let got =
                    vertex_disjoint_count(&adj, index[&n], index[&worst_case_p(r)], Some(want));
                flow_ok &= got >= want;
            }
        }
    }
    v.check(
        "max-flow on the ball graph confirms ≥ r(2r+1) paths, r = 2..4",
        flow_ok,
    );
    v.finish()
}
