//! FIG6 — the node-disjoint path construction for region-S1 committers
//! (regions J, K1, K2), plus the reflected S2 construction (the axial
//! symmetry of Fig. 3/7).

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::verify::verify_family;
use rbcast_construct::{paths_s1, r_2r_plus_1, symmetry, worst_case_p};
use rbcast_grid::{Coord, Metric};

fn main() {
    header("Fig. 6 — disjoint paths N→P for region-S1 committers (J, K1, K2)");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>8} {:>8}",
        "r", "p", "|J| paths", "|K| paths", "total", "target"
    );
    rule(50);

    let mut v = Verdicts::new();
    let mut s1_ok = true;
    for r in 1..=8u32 {
        for p in 0..r {
            let paths = paths_s1::build(r, p);
            let n = Coord::new(-i64::from(r), -i64::from(p));
            let ok = verify_family(
                &paths,
                n,
                worst_case_p(r),
                r,
                Metric::Linf,
                paths_s1::enclosing_center(r),
                3,
            )
            .is_ok();
            s1_ok &= ok && paths.len() == r_2r_plus_1(r);
            if r <= 4 {
                let j = paths.iter().filter(|path| path.len() == 3).count();
                let k = paths.iter().filter(|path| path.len() == 4).count();
                println!(
                    "{:>3} {:>4} {:>10} {:>10} {:>8} {:>8}",
                    r,
                    p,
                    j,
                    k,
                    paths.len(),
                    r_2r_plus_1(r)
                );
            }
        }
    }
    v.check("S1 families verify for all (r, p), r = 1..8", s1_ok);

    let mut s2_ok = true;
    for r in 2..=7u32 {
        for pp in 0..(r - 1) {
            for qp in (pp + 1)..r {
                let n = Coord::new(-i64::from(qp), -i64::from(pp));
                let paths = symmetry::build(r, pp, qp);
                s2_ok &= verify_family(
                    &paths,
                    n,
                    worst_case_p(r),
                    r,
                    Metric::Linf,
                    symmetry::enclosing_center(r),
                    3,
                )
                .is_ok()
                    && paths.len() == r_2r_plus_1(r);
            }
        }
    }
    v.check(
        "S2 families (reflected U construction) verify for all (r, p', q'), r = 2..7",
        s2_ok,
    );
    v.finish()
}
