//! FIG7 — arbitrary position of P (§VI-A): for every frontier node of
//! `pnbd(0,0)`, the number of committers it hears directly and the
//! number it can reliably determine through `r(2r+1)` disjoint
//! single-neighborhood paths (max-flow verified).
//!
//! Also verifies the §VI-A count `|R_l| = r(r+l+1)` for the translated
//! top-edge positions.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::arbitrary_p::{direct_count, frontier_table};
use rbcast_construct::r_2r_plus_1;
use rbcast_grid::Coord;

fn main() {
    let mut v = Verdicts::new();

    for r in 1..=3u32 {
        header(&format!("Fig. 7 — frontier connectivity, r = {r}"));
        println!(
            "{:>12} {:>8} {:>14} {:>10}",
            "P", "direct", "determinable", "required"
        );
        rule(48);
        let table = frontier_table(r);
        let mut ok = true;
        for row in &table {
            println!(
                "{:>12} {:>8} {:>14} {:>10}",
                row.p.to_string(),
                row.direct,
                row.determinable,
                row.required
            );
            ok &= row.determinable >= row.required;
        }
        v.check(
            &format!(
                "every frontier node determines ≥ r(2r+1) = {} committers (r={r})",
                r_2r_plus_1(r)
            ),
            ok,
        );
    }

    let mut formula_ok = true;
    for r in 1..=8u32 {
        for l in 0..=r {
            let p = Coord::new(-i64::from(r) + i64::from(l), i64::from(r) + 1);
            formula_ok &= direct_count(r, p) == (r as usize) * (r + l + 1) as usize;
        }
    }
    v.check(
        "§VI-A direct-range count |R_l| = r(r+l+1), r = 1..8",
        formula_ok,
    );
    v.finish()
}
