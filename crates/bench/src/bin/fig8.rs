//! FIG8 — Theorem 4's crash-stop impossibility construction: a faulty
//! strip of width `r` puts exactly `r(2r+1)` faults in the worst
//! neighborhood and partitions the network; flooding stalls.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::impossibility;
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    header("Fig. 8 — crash-stop impossibility strip (Theorem 4)");
    println!(
        "{:>3} {:>18} {:>12} {:>14} {:>12} {:>12}",
        "r", "strip bound", "r(2r+1)", "partitions?", "reached", "stranded"
    );
    rule(78);

    let mut v = Verdicts::new();
    let mut bound_ok = true;
    let mut stall_ok = true;
    for r in 1..=3u32 {
        let bound = impossibility::max_crash_faults_per_ball(r);
        let target = thresholds::crash_impossible_t(r) as usize;
        bound_ok &= bound == target && impossibility::strip_partitions(r);

        let o = Experiment::new(r, ProtocolKind::Flood)
            .with_t(target)
            .with_placement(Placement::DoubleStrip)
            .with_fault_kind(FaultKind::CrashStop)
            .run();
        stall_ok &= o.undecided > 0 && o.committed_correct > 0 && o.safe();
        println!(
            "{:>3} {:>18} {:>12} {:>14} {:>12} {:>12}",
            r,
            bound,
            target,
            impossibility::strip_partitions(r),
            o.committed_correct,
            o.undecided
        );
    }
    v.check(
        "strip places exactly r(2r+1) faults per neighborhood, r = 1..3",
        bound_ok,
    );
    v.check(
        "flooding reaches the source side but strands the far side, r = 1..3",
        stall_ok,
    );
    v.finish()
}
