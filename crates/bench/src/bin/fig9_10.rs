//! FIG9-10 — crash-stop achievability (Theorem 5): the broadcast
//! wavefront advances through `pnbd` stage by stage even at the maximum
//! tolerable budget `t = r(2r+1) − 1`. Prints the per-round newly
//! committed counts (the propagation stages of Figs. 9–10) and verifies
//! full coverage under cluster and randomized worst-case placements.

use rbcast_adversary::Placement;
use rbcast_bench::{header, perf, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::{Coord, Metric, Torus};
use rbcast_protocols::{Flood, Msg, ProtocolParams};
use rbcast_sim::{Network, Process};

fn main() {
    let mut v = Verdicts::new();

    // Stage visualisation: rounds at which each Chebyshev ring from the
    // source commits, r = 2, t_max cluster on the wavefront.
    let r = 2u32;
    let t = thresholds::crash_max_t(r) as usize;
    let torus = Torus::for_radius(r);
    let params = ProtocolParams {
        source: torus.id(Coord::ORIGIN),
        value: true,
        t,
    };
    let faults = Placement::FrontierCluster { t }.place(&torus, r, Metric::Linf);
    let mut net = Network::new(torus.clone(), r, Metric::Linf, |_| {
        Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
    });
    for &f in &faults {
        net.crash_at(f, 0);
    }
    net.run(1_000);

    header("Figs. 9-10 — wavefront stages (flood, r=2, t = r(2r+1)−1 cluster)");
    println!(
        "{:>6} {:>16} {:>18}",
        "round", "newly committed", "cumulative"
    );
    rule(44);
    let decisions = net.decisions();
    let max_round = decisions
        .iter()
        .flatten()
        .map(|&(_, round)| round)
        .max()
        .unwrap_or(0);
    let mut cumulative = 0usize;
    for round in 0..=max_round {
        let newly = decisions
            .iter()
            .flatten()
            .filter(|&&(_, rd)| rd == round)
            .count();
        cumulative += newly;
        println!("{round:>6} {newly:>16} {cumulative:>18}");
    }
    let honest = torus.len() - faults.len();
    v.check(
        &format!("cluster at t={t}: all {honest} honest nodes reached"),
        cumulative == honest,
    );

    // Randomized worst-case placements at t_max for r = 1..3: the
    // (r, seed) grid is one deterministic engine sweep.
    const SEEDS: u64 = 5;
    let rs = [1u32, 2, 3];
    let experiments: Vec<Experiment> = rs
        .iter()
        .flat_map(|&rr| {
            let t = thresholds::crash_max_t(rr) as usize;
            (0..SEEDS).map(move |seed| {
                Experiment::new(rr, ProtocolKind::Flood)
                    .with_t(t)
                    .with_placement(Placement::RandomLocal {
                        t,
                        seed,
                        attempts: 80,
                    })
                    .with_fault_kind(FaultKind::CrashStop)
            })
        })
        .collect();
    let (outcomes, _) = perf::run_sweep("fig9_10/random_local", &experiments);
    for (&rr, chunk) in rs.iter().zip(outcomes.chunks(SEEDS as usize)) {
        let t = thresholds::crash_max_t(rr) as usize;
        let label = format!(
            "random locally-bounded placements at t={t} all covered (r={rr}, {SEEDS} seeds)"
        );
        if chunk.iter().any(Option::is_none) {
            v.skip(&label);
        } else {
            v.check(
                &label,
                chunk
                    .iter()
                    .flatten()
                    .all(|o| o.all_honest_correct() && o.audited_bound <= t),
            );
        }
    }
    v.finish()
}
