//! PERC — the §XI random-failure extension: crash-stop broadcast under
//! independent Bernoulli faults, exhibiting the site-percolation-style
//! coverage transition.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::{engine, percolation};
use rbcast_grid::Torus;

#[allow(clippy::float_cmp)] // a rate of exactly 1.0 means every trial covered
fn main() {
    let ps = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    let trials = 10;
    // Rows are byte-identical for every thread count (engine fan-out
    // with per-task seeds, aggregated in input order).
    let threads = engine::thread_count(None);

    let mut v = Verdicts::new();
    for r in 1..=2u32 {
        let torus = Torus::for_radius(r);
        header(&format!(
            "§XI percolation sweep — flood, r = {r}, {torus}, {trials} trials/point, \
             {threads} thread(s)"
        ));
        println!(
            "{:>6} {:>16} {:>20}",
            "p", "mean reached", "full-coverage rate"
        );
        rule(46);
        let rows = percolation::sweep_threaded(r, &torus, &ps, trials, threads);
        for row in &rows {
            println!(
                "{:>6.2} {:>16.4} {:>20.2}",
                row.p, row.mean_reached, row.full_coverage_rate
            );
        }
        v.check(
            &format!("p = 0 gives full coverage (r={r})"),
            rows[0].full_coverage_rate == 1.0,
        );
        v.check(
            &format!("coverage collapses by p = 0.95 (r={r})"),
            rows.last().unwrap().mean_reached < 0.5,
        );
        // Beyond p ≈ 0.9 so few honest nodes remain that the reached
        // fraction is dominated by small-sample noise; check the
        // monotone decay on the well-populated part of the curve only.
        v.check(
            &format!("coverage decays monotonically within noise for p ≤ 0.9 (r={r})"),
            rows.windows(2)
                .filter(|w| w[1].p <= 0.9)
                .all(|w| w[1].mean_reached <= w[0].mean_reached + 0.05),
        );
        // larger radius percolates longer: checked across the two radii
        // by the caller of this binary (values are printed).
    }
    v.finish()
}
