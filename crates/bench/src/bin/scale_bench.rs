//! SCALE — throughput of the sparse wavefront engine at 10⁴, 10⁵ and
//! 10⁶ nodes (fault-free flood, CPA and simplified indirect-report at
//! r = 1), written to `BENCH_scale.json` at the workspace root.
//!
//! The sparse engine only touches frontier nodes each round, so a
//! single broadcast wave over an `n`-node torus costs O(total
//! deliveries), not O(n · rounds); this bin is the gate that keeps it
//! that way. Each cell is one run on a `side × side` torus timed with
//! the sanctioned [`rbcast_core::obs`] stopwatch, reporting nodes/sec
//! (population over wall time — the headline scaling number) and
//! rounds/sec.
//!
//! `-- --smoke` (run by `ci.sh`) executes only the 10⁴ cells, reruns
//! each on the dense oracle engine, and fails unless the trace hashes
//! are byte-identical and every sparse run lands under the wall budget.
//! No JSON is written in smoke mode.

use rbcast_bench::perf::{self, ScaleCell};
use rbcast_core::{obs, EngineKind, Experiment, ProtocolKind};
use rbcast_grid::Torus;
use std::path::Path;

/// The protocol axis: label and kind, fault-free at the protocol's
/// default `t`. `IndirectSimplified` stands in for the indirect-report
/// family — the full protocol's report traffic is quadratic in the
/// neighborhood and is benched separately (see DESIGN.md).
const PROTOCOLS: [(&str, ProtocolKind); 3] = [
    ("flood", ProtocolKind::Flood),
    ("cpa", ProtocolKind::Cpa),
    ("indirect", ProtocolKind::IndirectSimplified),
];

/// The size axis: torus sides giving ~10⁴, ~10⁵ and 10⁶ nodes.
const SIDES: [u32; 3] = [100, 316, 1000];

/// Per-cell wall budget for the smoke gate, milliseconds. A 10⁴-node
/// release-build run completes in well under a second on one core; the
/// budget is generous so CI noise cannot flake the gate, while still
/// catching an accidental return to O(n · rounds) scanning (which
/// multiplies the 10⁴ cell several-fold).
const SMOKE_BUDGET_MS: f64 = 30_000.0;

/// Throughput floor for the indirect-report 10⁴ smoke cell, nodes/sec.
/// The packed-chain fast path clears 100k nodes/s in release on one
/// core; the pre-packing implementation managed ~30k. The floor sits
/// far below both so machine noise cannot flake CI, yet a return to
/// per-delivery chain allocation (which costs a multiple, not a few
/// percent) still trips it.
const INDIRECT_SMOKE_FLOOR_NODES_PER_SEC: f64 = 10_000.0;

/// One fault-free broadcast on a `side × side` torus under `engine`.
fn experiment(kind: ProtocolKind, side: u32, engine: EngineKind) -> Experiment {
    Experiment::new(1, kind)
        .with_torus(Torus::new(side, side))
        .with_engine(engine)
}

/// Runs one cell and times it. Returns the cell plus the trace hash so
/// the smoke gate can compare engines.
fn run_cell(label: &str, kind: ProtocolKind, side: u32, engine: EngineKind) -> (ScaleCell, u64) {
    let exp = experiment(kind, side, engine);
    let t0 = obs::Stopwatch::start();
    let (outcome, hash) = exp.run_traced();
    let wall_ms = t0.elapsed_ms();
    let nodes = (side as usize) * (side as usize);
    assert!(
        outcome.all_honest_correct(),
        "{label}@{side}: fault-free broadcast must reach every node"
    );
    let cell = ScaleCell {
        protocol: label.to_string(),
        side: side as usize,
        nodes,
        rounds: outcome.stats.rounds,
        deliveries: outcome.stats.deliveries,
        messages: outcome.stats.messages_sent,
        wall_ms,
        peak_rss_kb: perf::peak_rss_kb(),
    };
    let rss = match cell.peak_rss_kb {
        Some(kb) => format!(", peak rss {} MB", kb / 1024),
        None => String::new(),
    };
    println!(
        "{label:>9} side {side:>4} ({nodes:>7} nodes): {} rounds, {} deliveries \
         in {:.1} ms ({:.0} nodes/s, {:.0} rounds/s{rss})",
        cell.rounds,
        cell.deliveries,
        cell.wall_ms,
        cell.nodes_per_sec(),
        cell.rounds_per_sec()
    );
    (cell, hash)
}

/// The CI gate: 10⁴-node cells only, each checked against the dense
/// oracle for byte-identical trace hashes and against the wall budget.
fn smoke() -> ! {
    let mut ok = true;
    for (label, kind) in PROTOCOLS {
        let (cell, sparse_hash) = run_cell(label, kind, 100, EngineKind::Sparse);
        let (_, dense_hash) = run_cell(label, kind, 100, EngineKind::Dense);
        if sparse_hash != dense_hash {
            eprintln!(
                "scale smoke FAILED: {label}@100 sparse hash {sparse_hash:#018x} \
                 != dense oracle hash {dense_hash:#018x}"
            );
            ok = false;
        }
        if cell.wall_ms > SMOKE_BUDGET_MS {
            eprintln!(
                "scale smoke FAILED: {label}@100 took {:.0} ms (budget {:.0} ms)",
                cell.wall_ms, SMOKE_BUDGET_MS
            );
            ok = false;
        }
        if label == "indirect" && cell.nodes_per_sec() < INDIRECT_SMOKE_FLOOR_NODES_PER_SEC {
            eprintln!(
                "scale smoke FAILED: indirect@100 ran at {:.0} nodes/s \
                 (floor {INDIRECT_SMOKE_FLOOR_NODES_PER_SEC:.0})",
                cell.nodes_per_sec()
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("scale smoke passed: sparse matches the dense oracle at 10^4 nodes");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    }
    let mut cells = Vec::new();
    for side in SIDES {
        for (label, kind) in PROTOCOLS {
            let (cell, _) = run_cell(label, kind, side, EngineKind::Sparse);
            cells.push(cell);
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    perf::write_scale_json(&root.join("BENCH_scale.json"), "sparse", &cells);
}
