//! SCALE — how the exact-threshold protocol scales with the radius:
//! the simplified §VI-B protocol at `t_max = ⌈½·r(2r+1)⌉ − 1` for
//! growing `r`, with a liar cluster on the wavefront. Reports arena
//! size, faults tolerated, message volume by kind, rounds, and wall
//! time.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::supervisor::{self, Supervised, SupervisorConfig};
use rbcast_core::{engine, obs, thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    header("Scaling the exact threshold (indirect-simplified, liar cluster)");
    println!(
        "{:>3} {:>8} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>9}",
        "r", "nodes", "t_max", "correct", "wrong", "broadcasts", "HEARD", "rounds", "secs"
    );
    rule(82);

    let mut v = Verdicts::new();
    let rs = [1u32, 2, 3, 4];
    let experiments: Vec<Experiment> = rs
        .iter()
        .map(|&r| {
            let t = thresholds::byzantine_max_t(r) as usize;
            Experiment::new(r, ProtocolKind::IndirectSimplified)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Liar)
        })
        .collect();
    // Supervised fan-out (the generic entry point, since each task also
    // carries a per-run wall-time measurement). Outcomes stay
    // deterministic; only the secs column reflects scheduling (and
    // contention, when threads > 1). A panicking or runaway radius is
    // quarantined instead of killing the smaller ones' rows.
    let threads = engine::thread_count(None);
    let config = match SupervisorConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let timed = supervisor::supervise(&experiments, threads, &config, |_, e| {
        // Measurement-only: timing the run, never feeding back into it.
        let start = obs::Stopwatch::start();
        let o = e.run();
        Ok((o, start.elapsed_ms() / 1000.0))
    });

    for (&r, task) in rs.iter().zip(&timed) {
        let t = thresholds::byzantine_max_t(r) as usize;
        let label = format!("r={r}: all honest correct at t_max = {t}");
        let (o, secs) = match task {
            Supervised::Done { value, .. } => value,
            Supervised::Failed { error, .. } => {
                println!("{r:>3} (quarantined: {error})");
                v.skip(&label);
                continue;
            }
        };
        let heard = o
            .message_kinds
            .iter()
            .find(|&&(k, _)| k == "HEARD")
            .map_or(0, |&(_, n)| n);
        println!(
            "{:>3} {:>8} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>9.2}",
            r,
            o.honest + o.fault_count,
            t,
            o.committed_correct,
            o.committed_wrong,
            o.stats.messages_sent,
            heard,
            o.stats.rounds,
            secs
        );
        v.check(&label, o.all_honest_correct());
    }
    v.finish()
}
