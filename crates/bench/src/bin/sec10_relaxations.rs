//! SEC10 — relaxing the model assumptions (§X): address spoofing,
//! deliberate collisions (jamming), and lossy channels with the
//! probabilistic local broadcast primitive.
//!
//! The paper argues: (a) with spoofing, reliable broadcast is extremely
//! difficult — a malicious node can impersonate honest ones; (b) with
//! unbounded collisions it is impossible; when collisions merely disrupt,
//! re-transmission defeats them; (c) the reliable-local-broadcast
//! assumption can be replaced by a probabilistic primitive. Each claim is
//! exercised here.

use rbcast_adversary::Placement;
use rbcast_bench::{header, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast_sim::ChannelConfig;

fn main() {
    let mut v = Verdicts::new();
    let r = 2u32;
    let t = thresholds::byzantine_max_t(r) as usize;

    // (a) Spoofing. One spoofer, within the Byzantine budget, on the
    // baseline channel: harmless (identities corrected). On a
    // spoofing-enabled channel: honest nodes are deceived even though the
    // placement respects t.
    header("§X(a) — address spoofing");
    let base = Experiment::new(r, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Spoofer)
        .run();
    println!("baseline channel, 1 spoofer: {base}");
    v.check(
        "without channel spoofing the impersonation attack is harmless",
        base.all_honest_correct(),
    );

    let spoofed = Experiment::new(r, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Spoofer)
        .with_channel(ChannelConfig::reliable().with_spoofing())
        .run();
    println!("spoofing-enabled channel, 1 spoofer: {spoofed}");
    v.check(
        "with spoofing enabled a single impersonator defeats reliable broadcast",
        !spoofed.all_honest_correct(),
    );

    // (b) Jamming. A jammer with a bounded lifetime collision battery
    // (§X's bounded-collisions regime): a large battery silences every
    // single-shot transmission near it, but persistent flooding outlasts
    // it ("trivially solved by re-transmitting").
    header("§X(b) — deliberate collisions");
    let jam_budget = 150;
    let jammed_flood = Experiment::new(r, ProtocolKind::Flood)
        .with_t(0)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Silent)
        .with_channel(ChannelConfig::reliable().with_jammers(vec![], jam_budget))
        .run();
    println!("single-shot flood vs jammer (battery {jam_budget}): {jammed_flood}");
    v.check(
        "bounded jamming starves single-shot flooding",
        jammed_flood.undecided > 0 && jammed_flood.stats.jammed_deliveries > 0,
    );

    let persistent = Experiment::new(r, ProtocolKind::PersistentFlood { repeats: 12 })
        .with_t(0)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Silent)
        .with_channel(ChannelConfig::reliable().with_jammers(vec![], jam_budget))
        .run();
    println!("persistent flood (12 repeats) vs the same jammer: {persistent}");
    v.check(
        "re-transmission defeats the bounded jammer",
        persistent.all_honest_correct(),
    );

    // (c) Lossy channel + probabilistic primitive. Single-shot flooding
    // over a 30%-loss channel strands nodes; the redundancy-4 primitive
    // (per-delivery success 1 − 0.3⁴ ≈ 0.992) restores full coverage in
    // most runs, and the Byzantine protocol survives at its threshold.
    header("§X(c)/§II — lossy channel and the probabilistic primitive");
    let mut bare_failures = 0;
    let mut primitive_failures = 0;
    let trials = 10u64;
    for seed in 0..trials {
        // r = 1 and 60% loss: a node misses all 8 informants with
        // probability 0.6⁸ ≈ 1.7%, so bare single-shot runs usually
        // strand someone on a 143-node torus.
        let bare = Experiment::new(1, ProtocolKind::Flood)
            .with_t(0)
            .with_channel(ChannelConfig::lossy(0.6, 1, seed))
            .run();
        bare_failures += u64::from(!bare.all_honest_correct());
        let primitive = Experiment::new(1, ProtocolKind::PersistentFlood { repeats: 3 })
            .with_t(0)
            .with_channel(ChannelConfig::lossy(0.6, 4, seed))
            .run();
        primitive_failures += u64::from(!primitive.all_honest_correct());
    }
    println!(
        "loss 0.6 (r=1): bare flood failed {bare_failures}/{trials}, primitive (redundancy 4 + 3 repeats) failed {primitive_failures}/{trials}"
    );
    v.check(
        "the probabilistic primitive masks losses the bare channel cannot",
        primitive_failures == 0 && bare_failures > 0,
    );

    let byz = Experiment::new(r, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Liar)
        .with_channel(ChannelConfig::lossy(0.2, 6, 7))
        .run();
    println!("indirect-simplified at t_max over the lossy primitive: {byz}");
    v.check(
        "the Byzantine protocol still completes at t_max over the probabilistic primitive",
        byz.all_honest_correct(),
    );

    v.finish()
}
