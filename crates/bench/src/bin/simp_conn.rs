//! SIMP-CONN — the §VI-B connectivity condition: every frontier node has
//! `r(2r+1)` collectively node-disjoint ≤1-relay paths to committers of
//! `nbd(0,0)`, all inside one neighborhood. Verifies the explicit
//! translation witness at the worst-case corner and the max-flow bound
//! over the whole frontier.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::{r_2r_plus_1, simplified, worst_case_p};
use rbcast_grid::Coord;

fn main() {
    header("§VI-B — simplified-protocol connectivity (≤1-relay disjoint paths)");
    println!(
        "{:>4} {:>10} {:>14} {:>14}",
        "r", "target", "witness", "max-flow @P"
    );
    rule(46);

    let mut v = Verdicts::new();
    let mut witness_ok = true;
    let mut flow_ok = true;
    for r in 1..=6u32 {
        let target = r_2r_plus_1(r);
        let witness = simplified::verify_witness(r);
        let flow =
            simplified::max_disjoint_paths(r, worst_case_p(r), Coord::new(0, i64::from(r) + 1));
        println!(
            "{:>4} {:>10} {:>14} {:>14}",
            r,
            target,
            witness.map_or("invalid".into(), |n| n.to_string()),
            flow
        );
        witness_ok &= witness == Some(target);
        flow_ok &= flow as usize >= target;
    }
    v.check(
        "translation witness yields exactly r(2r+1) disjoint ≤1-relay paths, r = 1..6",
        witness_ok,
    );
    v.check(
        "max-flow confirms the witness at the corner, r = 1..6",
        flow_ok,
    );

    for r in 1..=3u32 {
        v.check(
            &format!("condition holds for EVERY frontier node (max-flow sweep, r={r})"),
            simplified::frontier_condition_holds(r),
        );
    }
    v.finish()
}
