//! TAB1 — reproduces Table I: spatial extents of regions A..K2.
//!
//! Prints the table for a sample parameterisation and verifies the
//! path-count identities (`|A|+|B1|+|C1|+|D1| = r(2r+1)` and
//! `|J|+|K1| = r(2r+1)`) over every valid `(r, p, q)` up to `r = 12`.

use rbcast_bench::{header, rule, Verdicts};
use rbcast_construct::r_2r_plus_1;
use rbcast_construct::regions::{table_one, S1Params, UParams};

fn main() {
    let (r, p, q, p_s1) = (4u32, 2u32, 3u32, 1u32);
    header(&format!(
        "Table I — region extents (r={r}, p={p}, q={q}; S1 offset p={p_s1})"
    ));
    println!("{:<8} {:<24} {:>6}", "region", "extent", "nodes");
    rule(42);
    for row in table_one(r, p, q, p_s1) {
        println!(
            "{:<8} {:<24} {:>6}",
            row.region,
            row.rect.to_string(),
            row.count
        );
    }

    let mut v = Verdicts::new();
    let mut all_u = true;
    let mut all_s1 = true;
    for r in 2..=12u32 {
        for p in 1..r {
            for q in (p + 1)..=r {
                all_u &= UParams::new(r, p, q).total_paths() == r_2r_plus_1(r);
            }
        }
        for p in 0..r {
            all_s1 &= S1Params::new(r, p).total_paths() == r_2r_plus_1(r);
        }
    }
    v.check(
        "U-region identity |A|+|B1|+|C1|+|D1| = r(2r+1), all (r,p,q) r<=12",
        all_u,
    );
    v.check(
        "S1-region identity |J|+|K1| = r(2r+1), all (r,p) r<=12",
        all_s1,
    );
    v.finish()
}
