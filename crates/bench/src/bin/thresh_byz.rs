//! THRESH-BYZ — the headline result (Theorem 1 + Koo's impossibility):
//! the indirect-report protocol achieves reliable broadcast at the exact
//! maximum `t = ⌈½·r(2r+1)⌉ − 1` under hostile placements and
//! behaviours, while the threshold placement (checkerboard strip at
//! `t+1`) defeats it; safety (no wrong commit) holds throughout.
//!
//! Full protocol at r = 1..2, simplified at r = 1..3 (the paper proves
//! both achieve the same threshold; the full protocol's report traffic
//! grows steeply with r — see DESIGN.md).

use rbcast_adversary::Placement;
use rbcast_bench::{header, perf, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

/// The adversarial (placement, behaviour) grid each config faces at t_max.
fn attacks(t: usize) -> [(Placement, FaultKind); 4] {
    [
        (Placement::FrontierCluster { t }, FaultKind::Silent),
        (Placement::FrontierCluster { t }, FaultKind::Liar),
        (Placement::FrontierCluster { t }, FaultKind::Forger),
        (
            Placement::RandomLocal {
                t,
                seed: 7,
                attempts: 60,
            },
            FaultKind::Liar,
        ),
    ]
}

fn main() {
    // `--smoke` keeps only the r = 1 configs: a seconds-scale CI
    // invocation exercising the full pipeline (engine fan-out included).
    let smoke = std::env::args().any(|a| a == "--smoke");

    header("Byzantine threshold experiments (Theorem 1 / exact threshold)");
    println!(
        "{:>3} {:<20} {:>4} {:<18} {:<8} {:>9} {:>7} {:>9} {:>10}",
        "r", "protocol", "t", "placement", "faults", "correct", "wrong", "undecided", "msgs"
    );
    rule(100);

    let mut v = Verdicts::new();

    let mut configs: Vec<(u32, ProtocolKind)> = vec![
        (1, ProtocolKind::IndirectFull),
        (2, ProtocolKind::IndirectFull),
        (1, ProtocolKind::IndirectSimplified),
        (2, ProtocolKind::IndirectSimplified),
        (3, ProtocolKind::IndirectSimplified),
    ];
    if smoke {
        configs.retain(|&(r, _)| r == 1);
    }

    // Achievability at t_max: the whole grid fans out through the
    // deterministic engine, then rows print in experiment order.
    let experiments: Vec<Experiment> = configs
        .iter()
        .flat_map(|&(r, kind)| {
            let t = thresholds::byzantine_max_t(r) as usize;
            attacks(t).into_iter().map(move |(placement, behave)| {
                Experiment::new(r, kind)
                    .with_t(t)
                    .with_placement(placement)
                    .with_fault_kind(behave)
            })
        })
        .collect();
    let (outcomes, _) = perf::run_sweep("thresh_byz/achievability", &experiments);

    for (ci, &(r, kind)) in configs.iter().enumerate() {
        let t = thresholds::byzantine_max_t(r) as usize;
        let mut all_ok = true;
        let mut complete = true;
        for (ai, (placement, behave)) in attacks(t).into_iter().enumerate() {
            let attack = format!("{}/{behave:?}", placement.name());
            match &outcomes[ci * 4 + ai] {
                Some(o) => {
                    println!(
                        "{:>3} {:<20} {:>4} {:<18} {:<8} {:>9} {:>7} {:>9} {:>10}",
                        r,
                        kind.name(),
                        t,
                        attack,
                        o.fault_count,
                        o.committed_correct,
                        o.committed_wrong,
                        o.undecided,
                        o.stats.messages_sent
                    );
                    all_ok &= o.all_honest_correct() && o.audited_bound <= t;
                }
                None => {
                    println!(
                        "{:>3} {:<20} {:>4} {:<18} (quarantined)",
                        r,
                        kind.name(),
                        t,
                        attack
                    );
                    complete = false;
                }
            }
        }
        let label = format!("{} achieves broadcast at t_max = {t} (r={r})", kind.name());
        if complete {
            v.check(&label, all_ok);
        } else {
            v.skip(&label);
        }
    }

    // Threshold placement at t_max + 1: Koo's construction. With t+1
    // liars per neighborhood the adversary can assemble t+1 disjoint
    // fake report chains — a full forged quorum — so honest nodes are
    // deceived and/or starved: reliable broadcast fails, exactly as the
    // impossibility bound demands.
    header("At the impossibility bound t = ⌈½·r(2r+1)⌉ (checkerboard strips)");
    let mut imp_configs: Vec<(u32, ProtocolKind)> = vec![
        (1, ProtocolKind::IndirectSimplified),
        (2, ProtocolKind::IndirectSimplified),
    ];
    if smoke {
        imp_configs.retain(|&(r, _)| r == 1);
    }
    let imp_experiments: Vec<Experiment> = imp_configs
        .iter()
        .map(|&(r, kind)| {
            // protocol still configured for its own t_max; the adversary
            // has t_imp faults per neighborhood
            let t = thresholds::byzantine_max_t(r) as usize;
            Experiment::new(r, kind)
                .with_t(t)
                .with_placement(Placement::CheckerStrips)
                .with_fault_kind(FaultKind::Liar)
        })
        .collect();
    let (imp_outcomes, _) = perf::run_sweep("thresh_byz/impossibility", &imp_experiments);
    for (&(r, kind), slot) in imp_configs.iter().zip(imp_outcomes.iter()) {
        let t_imp = thresholds::byzantine_impossible_t(r) as usize;
        let label =
            format!("reliable broadcast fails at t = {t_imp} (r={r}): deceived or starved nodes");
        match slot {
            Some(o) => {
                println!("r={r} {} vs t={t_imp} strips: {o}", kind.name());
                v.check(&label, o.committed_wrong > 0 || o.undecided > 0);
            }
            None => {
                println!("r={r} {} vs t={t_imp} strips: (quarantined)", kind.name());
                v.skip(&label);
            }
        }
    }

    v.finish()
}
