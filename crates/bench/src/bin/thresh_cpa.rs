//! THRESH-CPA — Theorem 6 vs the other bounds: CPA succeeds at
//! `t = ⌊⅔r²⌋`; an empirical sweep locates CPA's failure frontier under
//! cluster faults; the bound curves (Theorem 6, Koo's bound, the exact
//! `½r(2r+1)` threshold of the indirect protocol) are tabulated.

use rbcast_adversary::Placement;
use rbcast_bench::{header, perf, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    header("Bound curves");
    println!(
        "{:>4} {:>14} {:>14} {:>16} {:>14}",
        "r", "⌊⅔r²⌋ (Thm 6)", "Koo CPA bound", "½r(2r+1) exact", "r(2r+1) crash"
    );
    rule(68);
    for r in 1..=12u32 {
        println!(
            "{:>4} {:>14} {:>14.2} {:>16.1} {:>14}",
            r,
            thresholds::cpa_guaranteed_t(r),
            thresholds::koo_cpa_bound(r),
            thresholds::byzantine_max_t(r) as f64 + 0.5,
            thresholds::crash_impossible_t(r)
        );
    }

    let mut v = Verdicts::new();

    // Theorem 6 budget: CPA succeeds. The (r, behaviour) grid fans out
    // through the deterministic engine.
    let budget_experiments: Vec<(u32, Experiment)> = (1..=3u32)
        .flat_map(|r| {
            let t = thresholds::cpa_guaranteed_t(r) as usize;
            [FaultKind::Silent, FaultKind::Liar].map(move |kind| {
                (
                    r,
                    Experiment::new(r, ProtocolKind::Cpa)
                        .with_t(t)
                        .with_placement(Placement::FrontierCluster { t })
                        .with_fault_kind(kind),
                )
            })
        })
        .collect();
    let (budget_outcomes, _) = perf::run_sweep(
        "thresh_cpa/theorem6",
        &budget_experiments
            .iter()
            .map(|(_, e)| e.clone())
            .collect::<Vec<_>>(),
    );
    for (pair, chunk) in budget_experiments.chunks(2).zip(budget_outcomes.chunks(2)) {
        let r = pair[0].0;
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let label = format!("CPA succeeds at Theorem 6 budget t = {t} (r={r})");
        if chunk.iter().any(Option::is_none) {
            v.skip(&label);
        } else {
            v.check(
                &label,
                chunk
                    .iter()
                    .flatten()
                    .all(rbcast_core::Outcome::all_honest_correct),
            );
        }
    }

    // Empirical frontier: sweep t upward under the cluster adversary and
    // find where CPA first fails to complete. The whole t-range per r is
    // one engine sweep; the frontier is read off the ordered outcomes.
    header("Empirical CPA failure frontier (frontier-cluster, silent faults)");
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>16}",
        "r", "⌊⅔r²⌋", "first fail", "exact thresh", "crash thresh"
    );
    rule(60);
    for r in 1..=3u32 {
        let exact = thresholds::byzantine_max_t(r) as usize;
        let frontier_experiments: Vec<Experiment> = (0..=(thresholds::crash_impossible_t(r)
            as usize))
            .map(|t| {
                Experiment::new(r, ProtocolKind::Cpa)
                    .with_t(t)
                    .with_placement(Placement::FrontierCluster { t })
                    .with_fault_kind(FaultKind::Silent)
            })
            .collect();
        let (frontier_outcomes, _) =
            perf::run_sweep(&format!("thresh_cpa/frontier_r{r}"), &frontier_experiments);
        let frontier_label = format!("CPA's empirical frontier ≥ Theorem 6 guarantee (r={r})");
        if !frontier_outcomes.fully_healthy() {
            // A quarantined cell makes "first failing t" ambiguous.
            println!(
                "{:>4} {:>10} {:>12} {:>14} {:>16}",
                r,
                thresholds::cpa_guaranteed_t(r),
                "n/a",
                exact,
                thresholds::crash_impossible_t(r)
            );
            v.skip(&frontier_label);
            continue;
        }
        let first_fail = frontier_outcomes
            .iter()
            .flatten()
            .position(|o| !o.all_honest_correct());
        let ff = first_fail.map_or("none".to_string(), |t| t.to_string());
        println!(
            "{:>4} {:>10} {:>12} {:>14} {:>16}",
            r,
            thresholds::cpa_guaranteed_t(r),
            ff,
            exact,
            thresholds::crash_impossible_t(r)
        );
        if let Some(t) = first_fail {
            v.check(
                &frontier_label,
                t > thresholds::cpa_guaranteed_t(r) as usize,
            );
        }
    }

    // Safety within the bound: with at most t liars per neighborhood no
    // honest node ever accepts the wrong value ("no non-faulty node will
    // ever accept the wrong value", §III/§IX). Necessity of the locally
    // bounded assumption rides in the same sweep: 2t+2 liars in one
    // neighborhood exceed the budget and CAN make honest nodes accept
    // the wrong value (t+1 same-neighborhood liars fabricate a quorum).
    let safety_rs = [2u32, 3];
    let beyond_rs = [1u32, 2];
    let bound_experiments: Vec<Experiment> = safety_rs
        .iter()
        .map(|&r| {
            let t = thresholds::cpa_guaranteed_t(r) as usize;
            Experiment::new(r, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Liar)
        })
        .chain(beyond_rs.iter().map(|&r| {
            let t = thresholds::cpa_guaranteed_t(r) as usize;
            Experiment::new(r, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t: 2 * t + 2 })
                .with_fault_kind(FaultKind::Liar)
        }))
        .collect();
    let (bound_outcomes, _) = perf::run_sweep("thresh_cpa/local_bound", &bound_experiments);
    for (&r, slot) in safety_rs.iter().zip(bound_outcomes.iter()) {
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let label = format!("CPA is safe with t = {t} liars in one neighborhood (r={r})");
        match slot {
            Some(o) => v.check(&label, o.safe() && o.audited_bound <= t),
            None => v.skip(&label),
        }
    }
    for (&r, slot) in beyond_rs
        .iter()
        .zip(bound_outcomes[safety_rs.len()..].iter())
    {
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let label = format!(
            "beyond the bound ({} liars vs t = {t}) honest nodes are deceived (r={r})",
            2 * t + 2
        );
        match slot {
            Some(o) => v.check(&label, o.committed_wrong > 0),
            None => v.skip(&label),
        }
    }

    v.finish()
}
