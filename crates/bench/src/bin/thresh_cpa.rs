//! THRESH-CPA — Theorem 6 vs the other bounds: CPA succeeds at
//! `t = ⌊⅔r²⌋`; an empirical sweep locates CPA's failure frontier under
//! cluster faults; the bound curves (Theorem 6, Koo's bound, the exact
//! `½r(2r+1)` threshold of the indirect protocol) are tabulated.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    header("Bound curves");
    println!(
        "{:>4} {:>14} {:>14} {:>16} {:>14}",
        "r", "⌊⅔r²⌋ (Thm 6)", "Koo CPA bound", "½r(2r+1) exact", "r(2r+1) crash"
    );
    rule(68);
    for r in 1..=12u32 {
        println!(
            "{:>4} {:>14} {:>14.2} {:>16.1} {:>14}",
            r,
            thresholds::cpa_guaranteed_t(r),
            thresholds::koo_cpa_bound(r),
            thresholds::byzantine_max_t(r) as f64 + 0.5,
            thresholds::crash_impossible_t(r)
        );
    }

    let mut v = Verdicts::new();

    // Theorem 6 budget: CPA succeeds.
    for r in 1..=3u32 {
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let mut ok = true;
        for kind in [FaultKind::Silent, FaultKind::Liar] {
            let o = Experiment::new(r, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(kind)
                .run();
            ok &= o.all_honest_correct();
        }
        v.check(
            &format!("CPA succeeds at Theorem 6 budget t = {t} (r={r})"),
            ok,
        );
    }

    // Empirical frontier: sweep t upward under the cluster adversary and
    // find where CPA first fails to complete.
    header("Empirical CPA failure frontier (frontier-cluster, silent faults)");
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>16}",
        "r", "⌊⅔r²⌋", "first fail", "exact thresh", "crash thresh"
    );
    rule(60);
    for r in 1..=3u32 {
        let exact = thresholds::byzantine_max_t(r) as usize;
        let mut first_fail = None;
        for t in 0..=(thresholds::crash_impossible_t(r) as usize) {
            let o = Experiment::new(r, ProtocolKind::Cpa)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Silent)
                .run();
            if !o.all_honest_correct() {
                first_fail = Some(t);
                break;
            }
        }
        let ff = first_fail.map_or("none".to_string(), |t| t.to_string());
        println!(
            "{:>4} {:>10} {:>12} {:>14} {:>16}",
            r,
            thresholds::cpa_guaranteed_t(r),
            ff,
            exact,
            thresholds::crash_impossible_t(r)
        );
        if let Some(t) = first_fail {
            v.check(
                &format!("CPA's empirical frontier ≥ Theorem 6 guarantee (r={r})"),
                t > thresholds::cpa_guaranteed_t(r) as usize,
            );
        }
    }

    // Safety within the bound: with at most t liars per neighborhood no
    // honest node ever accepts the wrong value ("no non-faulty node will
    // ever accept the wrong value", §III/§IX).
    for r in 2..=3u32 {
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let o = Experiment::new(r, ProtocolKind::Cpa)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(FaultKind::Liar)
            .run();
        v.check(
            &format!("CPA is safe with t = {t} liars in one neighborhood (r={r})"),
            o.safe() && o.audited_bound <= t,
        );
    }

    // Necessity of the locally bounded assumption: 2t+2 liars in one
    // neighborhood exceed the budget and CAN make honest nodes accept
    // the wrong value (t+1 same-neighborhood liars fabricate a quorum).
    for r in 1..=2u32 {
        let t = thresholds::cpa_guaranteed_t(r) as usize;
        let o = Experiment::new(r, ProtocolKind::Cpa)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t: 2 * t + 2 })
            .with_fault_kind(FaultKind::Liar)
            .run();
        v.check(
            &format!(
                "beyond the bound ({} liars vs t = {t}) honest nodes are deceived (r={r})",
                2 * t + 2
            ),
            o.committed_wrong > 0,
        );
    }

    v.finish()
}
