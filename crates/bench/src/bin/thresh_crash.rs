//! THRESH-CRASH — Theorems 4–5: flooding succeeds at
//! `t = r(2r+1) − 1` under adversarial placements and fails (partition)
//! at `t = r(2r+1)` under the strip construction: the exact crash-stop
//! threshold.

use rbcast_adversary::Placement;
use rbcast_bench::{header, perf, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};

/// The achievable-side placements probed at `t_max`.
fn placements(t_max: usize) -> [Placement; 3] {
    [
        Placement::FrontierCluster { t: t_max },
        Placement::RandomLocal {
            t: t_max,
            seed: 3,
            attempts: 80,
        },
        Placement::ColumnStrips,
    ]
}

fn main() {
    header("Crash-stop threshold experiments (Theorems 4-5)");
    println!(
        "{:>3} {:>6} {:<18} {:>8} {:>9} {:>10} {:>8}",
        "r", "t", "placement", "faults", "correct", "undecided", "rounds"
    );
    rule(70);

    let mut v = Verdicts::new();
    let rs = [1u32, 2, 3];

    // Full (r, placement, side) grid as one deterministic engine sweep:
    // per r, three achievable-side runs then the impossible-side strip.
    let experiments: Vec<Experiment> = rs
        .iter()
        .flat_map(|&r| {
            let t_max = thresholds::crash_max_t(r) as usize;
            let t_imp = thresholds::crash_impossible_t(r) as usize;
            placements(t_max)
                .into_iter()
                .map(move |placement| {
                    Experiment::new(r, ProtocolKind::Flood)
                        .with_t(t_max)
                        .with_placement(placement)
                        .with_fault_kind(FaultKind::CrashStop)
                })
                .chain(std::iter::once(
                    Experiment::new(r, ProtocolKind::Flood)
                        .with_t(t_imp)
                        .with_placement(Placement::DoubleStrip)
                        .with_fault_kind(FaultKind::CrashStop),
                ))
        })
        .collect();
    let (outcomes, _) = perf::run_sweep("thresh_crash/theorems_4_5", &experiments);

    for (&r, chunk) in rs.iter().zip(outcomes.chunks(4)) {
        let t_max = thresholds::crash_max_t(r) as usize;
        let t_imp = thresholds::crash_impossible_t(r) as usize;

        // Achievable side: t_max, several adversarial placements.
        let mut ok = true;
        let mut complete = true;
        for (placement, slot) in placements(t_max).iter().zip(chunk) {
            match slot {
                Some(o) => {
                    println!(
                        "{:>3} {:>6} {:<18} {:>8} {:>9} {:>10} {:>8}",
                        r,
                        t_max,
                        placement.name(),
                        o.fault_count,
                        o.committed_correct,
                        o.undecided,
                        o.stats.rounds
                    );
                    // column strips have a lower local bound; audit anyway
                    ok &= o.all_honest_correct() || o.audited_bound > t_max;
                }
                None => {
                    println!(
                        "{:>3} {:>6} {:<18} (quarantined)",
                        r,
                        t_max,
                        placement.name()
                    );
                    complete = false;
                }
            }
        }
        let label = format!("flood covers everyone at t = r(2r+1)−1 = {t_max} (r={r})");
        if complete {
            v.check(&label, ok);
        } else {
            v.skip(&label);
        }

        // Impossible side: the strip at t = r(2r+1).
        let label = format!("strip at t = r(2r+1) = {t_imp} partitions the network (r={r})");
        match &chunk[3] {
            Some(o) => {
                println!(
                    "{:>3} {:>6} {:<18} {:>8} {:>9} {:>10} {:>8}",
                    r,
                    t_imp,
                    "double-strip",
                    o.fault_count,
                    o.committed_correct,
                    o.undecided,
                    o.stats.rounds
                );
                v.check(&label, o.undecided > 0 && o.audited_bound == t_imp);
            }
            None => {
                println!("{:>3} {:>6} {:<18} (quarantined)", r, t_imp, "double-strip");
                v.skip(&label);
            }
        }
    }
    v.finish()
}
