//! THRESH-L2 — the Euclidean-metric thresholds of §VIII, tested
//! empirically. The paper argues (informally, for large `r`) that
//! Byzantine broadcast is achievable for `t < 0.23πr²` and impossible
//! around `0.3πr²`; crash-stop doubles both. We run the simplified
//! indirect protocol under the L2 metric at `t = ⌊0.23πr²⌋` against
//! hostile placements, and flooding at the crash estimates.

use rbcast_adversary::Placement;
use rbcast_bench::{header, perf, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Metric;

/// The Byzantine (placement, behaviour) grid probed at `t`.
fn byz_attacks(t: usize) -> [(Placement, FaultKind); 3] {
    [
        (Placement::FrontierCluster { t }, FaultKind::Liar),
        (Placement::FrontierCluster { t }, FaultKind::Forger),
        (
            Placement::RandomLocal {
                t,
                seed: 5,
                attempts: 60,
            },
            FaultKind::Liar,
        ),
    ]
}

fn main() {
    header("Euclidean-metric thresholds (§VIII), simulated");
    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>14}",
        "r", "|nbd|", "0.23πr²", "0.3πr²", "crash 0.46πr²"
    );
    rule(54);
    for r in 2..=4u32 {
        println!(
            "{:>3} {:>8} {:>12.1} {:>12.1} {:>14.1}",
            r,
            Metric::L2.neighborhood_size(r),
            thresholds::l2_byzantine_estimate(r),
            0.3 * std::f64::consts::PI * f64::from(r) * f64::from(r),
            thresholds::l2_crash_estimate(r)
        );
    }

    let mut v = Verdicts::new();

    // Byzantine achievability at t = ⌊0.23πr²⌋ under the L2 metric:
    // the (r, attack) grid is one deterministic engine sweep.
    let byz_rs = [2u32, 3];
    let byz_experiments: Vec<Experiment> = byz_rs
        .iter()
        .flat_map(|&r| {
            let t = thresholds::l2_byzantine_estimate(r).floor() as usize;
            byz_attacks(t).into_iter().map(move |(placement, kind)| {
                Experiment::new(r, ProtocolKind::IndirectSimplified)
                    .with_metric(Metric::L2)
                    .with_t(t)
                    .with_placement(placement)
                    .with_fault_kind(kind)
            })
        })
        .collect();
    let (byz_outcomes, _) = perf::run_sweep("thresh_l2/byzantine", &byz_experiments);
    for (&r, chunk) in byz_rs.iter().zip(byz_outcomes.chunks(3)) {
        let t = thresholds::l2_byzantine_estimate(r).floor() as usize;
        let mut ok = true;
        let mut complete = true;
        for ((placement, kind), slot) in byz_attacks(t).iter().zip(chunk) {
            match slot {
                Some(o) => {
                    println!("r={r} t={t} {}/{kind:?}: {o}", placement.name());
                    ok &= o.all_honest_correct() && o.audited_bound <= t;
                }
                None => {
                    println!("r={r} t={t} {}/{kind:?}: (quarantined)", placement.name());
                    complete = false;
                }
            }
        }
        let label = format!("L2 Byzantine broadcast achieved at t = ⌊0.23πr²⌋ = {t} (r={r})");
        if complete {
            v.check(&label, ok);
        } else {
            v.skip(&label);
        }
    }

    // Crash-stop achievability at t = ⌊0.46πr²⌋ − small margin, and the
    // strip partition on the impossibility side, as one sweep (per r:
    // cluster run, then strip run).
    let crash_rs = [2u32, 3];
    let crash_experiments: Vec<Experiment> = crash_rs
        .iter()
        .flat_map(|&r| {
            let t = thresholds::l2_crash_estimate(r).floor() as usize;
            [Placement::FrontierCluster { t }, Placement::DoubleStrip].map(move |placement| {
                Experiment::new(r, ProtocolKind::Flood)
                    .with_metric(Metric::L2)
                    .with_t(t)
                    .with_placement(placement)
                    .with_fault_kind(FaultKind::CrashStop)
            })
        })
        .collect();
    let (crash_outcomes, _) = perf::run_sweep("thresh_l2/crash", &crash_experiments);
    for (&r, chunk) in crash_rs.iter().zip(crash_outcomes.chunks(2)) {
        let t = thresholds::l2_crash_estimate(r).floor() as usize;
        let cluster_label =
            format!("L2 crash-stop flood survives a ⌊0.46πr²⌋ = {t} cluster (r={r})");
        match &chunk[0] {
            Some(o) => {
                println!("r={r} crash cluster t={t}: {o}");
                v.check(&cluster_label, o.all_honest_correct());
            }
            None => {
                println!("r={r} crash cluster t={t}: (quarantined)");
                v.skip(&cluster_label);
            }
        }

        let strip_label = format!("the ≈0.6πr² strip partitions the L2 network (r={r})");
        match &chunk[1] {
            Some(strip) => {
                println!("r={r} crash strip (≈0.6πr² per nbd): {strip}");
                v.check(&strip_label, strip.undecided > 0);
            }
            None => {
                println!("r={r} crash strip (≈0.6πr² per nbd): (quarantined)");
                v.skip(&strip_label);
            }
        }
    }

    v.finish()
}
