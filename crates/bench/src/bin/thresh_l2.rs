//! THRESH-L2 — the Euclidean-metric thresholds of §VIII, tested
//! empirically. The paper argues (informally, for large `r`) that
//! Byzantine broadcast is achievable for `t < 0.23πr²` and impossible
//! around `0.3πr²`; crash-stop doubles both. We run the simplified
//! indirect protocol under the L2 metric at `t = ⌊0.23πr²⌋` against
//! hostile placements, and flooding at the crash estimates.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Metric;

fn main() {
    header("Euclidean-metric thresholds (§VIII), simulated");
    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>14}",
        "r", "|nbd|", "0.23πr²", "0.3πr²", "crash 0.46πr²"
    );
    rule(54);
    for r in 2..=4u32 {
        println!(
            "{:>3} {:>8} {:>12.1} {:>12.1} {:>14.1}",
            r,
            Metric::L2.neighborhood_size(r),
            thresholds::l2_byzantine_estimate(r),
            0.3 * std::f64::consts::PI * f64::from(r) * f64::from(r),
            thresholds::l2_crash_estimate(r)
        );
    }

    let mut v = Verdicts::new();

    // Byzantine achievability at t = ⌊0.23πr²⌋ under the L2 metric.
    for r in 2..=3u32 {
        let t = thresholds::l2_byzantine_estimate(r).floor() as usize;
        let mut ok = true;
        for (placement, kind) in [
            (Placement::FrontierCluster { t }, FaultKind::Liar),
            (Placement::FrontierCluster { t }, FaultKind::Forger),
            (
                Placement::RandomLocal {
                    t,
                    seed: 5,
                    attempts: 60,
                },
                FaultKind::Liar,
            ),
        ] {
            let o = Experiment::new(r, ProtocolKind::IndirectSimplified)
                .with_metric(Metric::L2)
                .with_t(t)
                .with_placement(placement.clone())
                .with_fault_kind(kind)
                .run();
            println!("r={r} t={t} {}/{kind:?}: {o}", placement.name());
            ok &= o.all_honest_correct() && o.audited_bound <= t;
        }
        v.check(
            &format!("L2 Byzantine broadcast achieved at t = ⌊0.23πr²⌋ = {t} (r={r})"),
            ok,
        );
    }

    // Crash-stop achievability at t = ⌊0.46πr²⌋ − small margin, and the
    // strip partition on the impossibility side.
    for r in 2..=3u32 {
        let t = thresholds::l2_crash_estimate(r).floor() as usize;
        let o = Experiment::new(r, ProtocolKind::Flood)
            .with_metric(Metric::L2)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(FaultKind::CrashStop)
            .run();
        println!("r={r} crash cluster t={t}: {o}");
        v.check(
            &format!("L2 crash-stop flood survives a ⌊0.46πr²⌋ = {t} cluster (r={r})"),
            o.all_honest_correct(),
        );

        let strip = Experiment::new(r, ProtocolKind::Flood)
            .with_metric(Metric::L2)
            .with_t(t)
            .with_placement(Placement::DoubleStrip)
            .with_fault_kind(FaultKind::CrashStop)
            .run();
        println!("r={r} crash strip (≈0.6πr² per nbd): {strip}");
        v.check(
            &format!("the ≈0.6πr² strip partitions the L2 network (r={r})"),
            strip.undecided > 0,
        );
    }

    v.finish()
}
