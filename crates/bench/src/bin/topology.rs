//! TOPOLOGY — the Pelc–Peleg general-graph perspective (§III): CPA run
//! by an independent generic-graph executor, cross-validated against the
//! radio simulator on the grid's connectivity graph, plus a bottleneck
//! topology where CPA stalls at `t = 1` — the dependence on fat
//! neighborhoods that makes the grid special.

use rbcast_adversary::Placement;
use rbcast_bench::{header, rule, Verdicts};
use rbcast_core::graphs::{bottleneck_graph, run_cpa, Graph};
use rbcast_core::{Experiment, FaultKind, ProtocolKind};
use rbcast_grid::{Coord, Metric, Torus};

fn main() {
    let mut v = Verdicts::new();

    header("Cross-validation: generic-graph CPA vs the radio simulator");
    println!(
        "{:>3} {:>4} {:<18} {:>14} {:>14}",
        "r", "t", "placement", "radio commits", "graph commits"
    );
    rule(60);
    let mut agree = true;
    for r in 1..=2u32 {
        let torus = Torus::for_radius(r);
        let g = Graph::from_torus(&torus, r, Metric::Linf);
        for t in 0..=rbcast_core::thresholds::cpa_guaranteed_t(r) as usize {
            for placement in [
                Placement::FrontierCluster { t },
                Placement::RandomLocal {
                    t,
                    seed: 21,
                    attempts: 40,
                },
            ] {
                let faults = placement.place(&torus, r, Metric::Linf);
                let o = Experiment::new(r, ProtocolKind::Cpa)
                    .with_t(t)
                    .with_placement(placement.clone())
                    .with_fault_kind(FaultKind::Silent)
                    .run();
                let graph_faults: Vec<usize> = faults.iter().map(|f| f.index()).collect();
                let commits = run_cpa(&g, torus.id(Coord::ORIGIN).index(), t, &graph_faults);
                let graph_committed = commits
                    .iter()
                    .enumerate()
                    .filter(|&(n, c)| c.is_some() && !graph_faults.contains(&n))
                    .count();
                println!(
                    "{:>3} {:>4} {:<18} {:>14} {:>14}",
                    r,
                    t,
                    placement.name(),
                    o.committed_correct,
                    graph_committed
                );
                agree &= o.committed_correct == graph_committed;
            }
        }
    }
    v.check(
        "two independent CPA implementations agree on every configuration",
        agree,
    );

    header("Topology dependence: the bottleneck graph");
    let (g, source) = bottleneck_graph();
    let flood = run_cpa(&g, source, 0, &[]);
    let stalled = run_cpa(&g, source, 1, &[]);
    println!(
        "t = 0: {}/{} commit;  t = 1: {}/{} commit (fault-free!)",
        flood.iter().flatten().count(),
        g.len(),
        stalled.iter().flatten().count(),
        g.len()
    );
    v.check(
        "CPA stalls on the two-vertex bridge at t = 1 despite zero faults",
        flood.iter().all(Option::is_some) && stalled.iter().any(Option::is_none),
    );
    println!();
    println!("on the grid, neighborhoods are (2r+1)²-fat and Theorem 6 applies;");
    println!("on arbitrary graphs CPA's fate is a topology question (Pelc & Peleg).");
    v.finish()
}
