//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints one artifact's rows (see DESIGN.md
//! for the experiment index); the Criterion benches in `benches/` cover
//! the performance-sensitive machinery. This library holds the shared
//! report formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints a table rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a PASS/FAIL verdict line (also used by EXPERIMENTS.md).
pub fn verdict(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
}

/// Tracks an overall exit status across verdicts.
#[derive(Debug, Default)]
pub struct Verdicts {
    failures: usize,
    total: usize,
}

impl Verdicts {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Verdicts::default()
    }

    /// Records and prints one verdict.
    pub fn check(&mut self, label: &str, ok: bool) {
        verdict(label, ok);
        self.total += 1;
        if !ok {
            self.failures += 1;
        }
    }

    /// Prints the summary and exits nonzero on any failure.
    pub fn finish(self) -> ! {
        println!();
        println!(
            "{}/{} checks passed",
            self.total - self.failures,
            self.total
        );
        std::process::exit(i32::from(self.failures > 0))
    }
}
