//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints one artifact's rows (see DESIGN.md
//! for the experiment index); the Criterion benches in `benches/` cover
//! the performance-sensitive machinery. This library holds the shared
//! report formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints a table rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a PASS/FAIL verdict line (also used by EXPERIMENTS.md).
pub fn verdict(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
}

/// Tracks an overall exit status across verdicts.
#[derive(Debug, Default)]
pub struct Verdicts {
    failures: usize,
    skipped: usize,
    total: usize,
}

impl Verdicts {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Verdicts::default()
    }

    /// Records and prints one verdict.
    pub fn check(&mut self, label: &str, ok: bool) {
        verdict(label, ok);
        self.total += 1;
        if !ok {
            self.failures += 1;
        }
    }

    /// Records and prints a check that could not run because every input
    /// it needed was quarantined by the sweep supervisor. A skip is
    /// visible but not a failure: the quarantine report already carries
    /// the underlying errors, and failing the bin on top of it would
    /// turn graceful degradation back into all-or-nothing.
    pub fn skip(&mut self, label: &str) {
        println!("[SKIP] {label} (inputs quarantined)");
        self.total += 1;
        self.skipped += 1;
    }

    /// Prints the summary and exits nonzero on any failure.
    pub fn finish(self) -> ! {
        println!();
        let note = if self.skipped > 0 {
            format!(" ({} skipped)", self.skipped)
        } else {
            String::new()
        };
        println!(
            "{}/{} checks passed{note}",
            self.total - self.failures - self.skipped,
            self.total
        );
        std::process::exit(i32::from(self.failures > 0))
    }
}
