//! Machine-readable sweep timing and the `BENCH_sweep.json` writer.
//!
//! Every sweep-shaped binary fans its experiment grid out through
//! [`rbcast_core::engine`], so wall-clock per sweep, runs/sec, and the
//! worker-thread count are the numbers that matter for throughput work.
//! This module measures them and serialises them to a stable JSON shape
//! (hand-rolled — the workspace is offline and carries no serde) so the
//! baseline can be checked in and diffed across PRs.
//!
//! Timing lives here and nowhere near the simulation: stopwatches come
//! from [`rbcast_core::obs`] (the only module allowed to read the wall
//! clock), and holding or dropping the timer never changes an outcome.
//! The emitted document also carries the process-wide [`obs`] metrics
//! and span-timing snapshots, so a bench run records *what* the sweeps
//! did (deliveries, retries, arena traffic) next to how long they took.
//!
//! [`obs`]: rbcast_core::obs

use rbcast_core::supervisor::{self, SupervisorConfig, SweepReport, TaskReport};
use rbcast_core::{engine, Experiment, Outcome};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Timing record for one executed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTiming {
    /// Stable sweep key, `"<bin>/<section>"` (e.g. `thresh_byz/achievability`).
    pub label: String,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Number of experiment runs in the sweep.
    pub runs: usize,
    /// Wall-clock duration of the whole sweep, milliseconds.
    pub wall_ms: f64,
}

impl SweepTiming {
    /// Experiment runs completed per second.
    #[must_use]
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.runs as f64 * 1000.0 / self.wall_ms
        }
    }
}

/// The supervised results of one sweep: healthy outcomes in experiment
/// order (quarantined slots are `None`) plus the quarantine report.
/// Derefs to `[Option<Outcome>]`, so `rows[i]`, `rows.iter().flatten()`
/// and `chunks(n)` all work directly on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRows {
    rows: Vec<Option<Outcome>>,
    /// Quarantined tasks: `(experiment index, error display)`.
    pub quarantined: Vec<(usize, String)>,
}

impl std::ops::Deref for SweepRows {
    type Target = [Option<Outcome>];
    fn deref(&self) -> &Self::Target {
        &self.rows
    }
}

impl SweepRows {
    /// True when no task was quarantined.
    #[must_use]
    pub fn fully_healthy(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// The supervisor policy every bench sweep runs under: the environment
/// knobs (`RBCAST_CHAOS`, `RBCAST_RETRIES`, `RBCAST_ROUND_BUDGET`)
/// applied to the defaults. A malformed knob aborts with exit code 2 —
/// a typo must not silently disarm a chaos gate.
fn env_config() -> SupervisorConfig {
    match SupervisorConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Where a sweep's checkpoint journal lives:
/// `results/journal/<label>.jsonl` under the workspace root (anchored
/// at compile time — `cargo bench`/`cargo test` set a per-crate cwd,
/// and journals must not scatter with it), with `/` flattened to `_`.
#[must_use]
pub fn journal_path(label: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("journal")
        .join(format!("{}.jsonl", label.replace('/', "_")))
}

/// Runs `experiments` under the sweep supervisor on `threads` workers
/// and times the sweep. Healthy outcomes come back in experiment order —
/// identical for every thread count — so callers print rows exactly as
/// the serial loops they replace did; failed tasks are quarantined
/// (reported and journalled) instead of killing the bin. Each sweep
/// checkpoints to [`journal_path`]`(label)` as tasks complete (best
/// effort: an unwritable path warns and continues).
#[must_use]
pub fn run_sweep_timed(
    label: &str,
    experiments: &[Experiment],
    threads: usize,
) -> (SweepRows, SweepTiming) {
    let mut config = env_config();
    match supervisor::Journal::create(&journal_path(label)) {
        Ok(journal) => config.journal = Some(journal),
        Err(e) => eprintln!(
            "warning: cannot open journal {}: {e}",
            journal_path(label).display()
        ),
    }
    let t0 = rbcast_core::obs::Stopwatch::start();
    let report = supervisor::run_experiments_supervised(experiments, threads, &config);
    let wall_ms = t0.elapsed_ms();
    (
        rows_of(label, report),
        SweepTiming {
            label: label.to_string(),
            threads,
            runs: experiments.len(),
            wall_ms,
        },
    )
}

/// Flattens a supervised report into [`SweepRows`], printing the
/// quarantine report (if any) so no failure is silent.
fn rows_of(label: &str, report: SweepReport) -> SweepRows {
    let quarantined: Vec<(usize, String)> = report
        .quarantined()
        .into_iter()
        .map(|(i, e)| (i, e.to_string()))
        .collect();
    for (i, error) in &quarantined {
        println!("quarantine {label}: task {i}: {error}");
    }
    let rows = report
        .tasks
        .into_iter()
        .map(|t| match t {
            TaskReport::Done { outcome, .. } => Some(outcome),
            // Bench sweeps never resume; a Resumed slot would mean a
            // stale resume map leaked in — treat it as unavailable.
            TaskReport::Resumed { .. } | TaskReport::Failed { .. } => None,
        })
        .collect();
    SweepRows { rows, quarantined }
}

/// [`run_sweep_timed`] at the ambient thread count
/// ([`engine::thread_count`]`(None)`, i.e. `RBCAST_THREADS` or all
/// cores), printing a one-line sweep summary.
#[must_use]
pub fn run_sweep(label: &str, experiments: &[Experiment]) -> (SweepRows, SweepTiming) {
    let threads = engine::thread_count(None);
    let (rows, timing) = run_sweep_timed(label, experiments, threads);
    let quarantine_note = if rows.fully_healthy() {
        String::new()
    } else {
        format!(", {} quarantined", rows.quarantined.len())
    };
    println!(
        "sweep {label}: {} runs on {threads} thread(s) in {:.1} ms ({:.0} runs/s{quarantine_note})",
        timing.runs,
        timing.wall_ms,
        timing.runs_per_sec()
    );
    (rows, timing)
}

/// Parallel scaling efficiency of one sweep against its bin's
/// single-thread baseline: `rps(threads=N) / (N × rps(threads=1))`,
/// where the baseline is the first `threads == 1` sweep sharing the
/// label's `<bin>/` prefix. Perfect scaling is `1.0` at every thread
/// count; on a single-core host the value decays towards `1/N`. `None`
/// when the bin has no single-thread sweep to compare against.
#[must_use]
pub fn scaling_efficiency(t: &SweepTiming, all: &[SweepTiming]) -> Option<f64> {
    let bin = |label: &str| label.split('/').next().map(str::to_owned);
    let mine = bin(&t.label);
    let base = all
        .iter()
        .find(|b| b.threads == 1 && bin(&b.label) == mine)?;
    let base_rps = base.runs_per_sec();
    if base_rps <= 0.0 {
        return None;
    }
    Some(t.runs_per_sec() / (t.threads as f64 * base_rps))
}

/// Serialises timings to the `BENCH_sweep.json` document: the default
/// thread count, one record per sweep (with its [`scaling_efficiency`]),
/// per-bin totals (keyed by the label's `<bin>/` prefix), the
/// [`rbcast_core::obs::metrics_snapshot`] counter readings, and the
/// [`rbcast_core::obs::timings_snapshot`] span aggregates. Key order is
/// sorted, floats are fixed to three decimals — the output is
/// byte-stable for identical inputs and identical counter state.
#[must_use]
pub fn to_json(default_threads: usize, timings: &[SweepTiming]) -> String {
    let mut bins: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for t in timings {
        let bin = t.label.split('/').next().unwrap_or(&t.label);
        let entry = bins.entry(bin).or_insert((0, 0.0));
        entry.0 += t.runs;
        entry.1 += t.wall_ms;
    }

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"rbcast-bench-sweep/v3\",");
    let _ = writeln!(s, "  \"default_threads\": {default_threads},");
    s.push_str("  \"sweeps\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let efficiency = scaling_efficiency(t, timings)
            .map_or_else(|| "null".to_string(), |e| format!("{e:.3}"));
        let _ = write!(
            s,
            "    {{\"label\": \"{}\", \"threads\": {}, \"runs\": {}, \
             \"wall_ms\": {:.3}, \"runs_per_sec\": {:.3}, \
             \"scaling_efficiency\": {efficiency}}}",
            json_escape(&t.label),
            t.threads,
            t.runs,
            t.wall_ms,
            t.runs_per_sec()
        );
        s.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"bins\": {\n");
    for (i, (bin, (runs, wall_ms))) in bins.iter().enumerate() {
        let _ = write!(
            s,
            "    \"{}\": {{\"runs\": {runs}, \"wall_ms\": {wall_ms:.3}}}",
            json_escape(bin)
        );
        s.push_str(if i + 1 < bins.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    let metrics = rbcast_core::obs::metrics_snapshot();
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let _ = write!(s, "    \"{}\": {value}", json_escape(name));
        s.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    let spans = rbcast_core::obs::timings_snapshot();
    s.push_str("  \"timings\": {\n");
    for (i, (name, stat)) in spans.iter().enumerate() {
        let _ = write!(
            s,
            "    \"{}\": {{\"count\": {}, \"total_ms\": {:.3}}}",
            json_escape(name),
            stat.count,
            stat.total_ms()
        );
        s.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

/// Writes [`to_json`] to `path`. I/O errors are reported, not fatal — a
/// read-only checkout must not fail a bench run.
pub fn write_bench_json(path: &Path, default_threads: usize, timings: &[SweepTiming]) {
    match std::fs::write(path, to_json(default_threads, timings)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// One cell of the scale bench: a single fault-free broadcast on an
/// `side × side` torus, timed wall-clock. Throughput is reported two
/// ways — `nodes/sec` (population divided by wall time, the headline
/// scaling number) and `rounds/sec` (simulated rounds per second, the
/// per-step cost of the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleCell {
    /// Protocol label (`flood` / `cpa` / `indirect`).
    pub protocol: String,
    /// Torus side length; the population is `side * side`.
    pub side: usize,
    /// Node count (`side * side`).
    pub nodes: usize,
    /// Rounds the run executed.
    pub rounds: u32,
    /// Message deliveries performed.
    pub deliveries: u64,
    /// Local broadcasts performed.
    pub messages: u64,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Process peak RSS (`VmHWM`) in kilobytes when the cell finished,
    /// or `None` where the probe is unavailable. The high-water mark is
    /// monotone across a bench run, so a cell's value bounds the memory
    /// of everything up to and including it; the final cell carries the
    /// run's true peak. Memory regressions (e.g. per-node evidence
    /// blow-up) surface here without any allocator instrumentation.
    pub peak_rss_kb: Option<u64>,
}

/// Process peak resident-set size in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). Std-only, no allocator hooks; returns
/// `None` on platforms without procfs or if the field is missing.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

impl ScaleCell {
    /// Nodes simulated per second of wall time.
    #[must_use]
    pub fn nodes_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.nodes as f64 * 1000.0 / self.wall_ms
        }
    }

    /// Simulated rounds per second of wall time.
    #[must_use]
    pub fn rounds_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            f64::from(self.rounds) * 1000.0 / self.wall_ms
        }
    }
}

/// Serialises scale cells to the `BENCH_scale.json` document: the
/// engine label, one record per cell, and the same trailing
/// [`rbcast_core::obs`] metrics / timings snapshots as
/// `BENCH_sweep.json`. Key order is fixed and floats print with three
/// decimals, so the output is byte-stable for identical inputs and
/// identical counter state.
#[must_use]
pub fn to_scale_json(engine: &str, cells: &[ScaleCell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"rbcast-bench-scale/v2\",");
    let _ = writeln!(s, "  \"engine\": \"{}\",", json_escape(engine));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"protocol\": \"{}\", \"side\": {}, \"nodes\": {}, \
             \"rounds\": {}, \"deliveries\": {}, \"messages\": {}, \
             \"wall_ms\": {:.3}, \"nodes_per_sec\": {:.3}, \
             \"rounds_per_sec\": {:.3}, \"peak_rss_kb\": {}}}",
            json_escape(&c.protocol),
            c.side,
            c.nodes,
            c.rounds,
            c.deliveries,
            c.messages,
            c.wall_ms,
            c.nodes_per_sec(),
            c.rounds_per_sec(),
            match c.peak_rss_kb {
                Some(kb) => kb.to_string(),
                None => "null".to_string(),
            }
        );
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let metrics = rbcast_core::obs::metrics_snapshot();
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let _ = write!(s, "    \"{}\": {value}", json_escape(name));
        s.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    let spans = rbcast_core::obs::timings_snapshot();
    s.push_str("  \"timings\": {\n");
    for (i, (name, stat)) in spans.iter().enumerate() {
        let _ = write!(
            s,
            "    \"{}\": {{\"count\": {}, \"total_ms\": {:.3}}}",
            json_escape(name),
            stat.count,
            stat.total_ms()
        );
        s.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

/// Writes [`to_scale_json`] to `path`. I/O errors are reported, not
/// fatal, matching [`write_bench_json`].
pub fn write_scale_json(path: &Path, engine: &str, cells: &[ScaleCell]) {
    match std::fs::write(path, to_scale_json(engine, cells)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(label: &str, threads: usize, runs: usize, wall_ms: f64) -> SweepTiming {
        SweepTiming {
            label: label.to_string(),
            threads,
            runs,
            wall_ms,
        }
    }

    #[test]
    fn json_shape_is_stable_and_totals_group_by_bin() {
        let t = [
            timing("byz/a", 4, 32, 100.0),
            timing("byz/b", 4, 8, 25.0),
            timing("cpa/a", 4, 4, 10.0),
        ];
        let j = to_json(4, &t);
        assert!(j.contains("\"schema\": \"rbcast-bench-sweep/v3\""));
        assert!(j.contains("\"default_threads\": 4"));
        assert!(j.contains("\"label\": \"byz/a\", \"threads\": 4, \"runs\": 32"));
        assert!(j.contains("\"byz\": {\"runs\": 40, \"wall_ms\": 125.000}"));
        assert!(j.contains("\"cpa\": {\"runs\": 4, \"wall_ms\": 10.000}"));
        // no threads-1 sweep in either bin → efficiency is null
        assert!(j.contains("\"scaling_efficiency\": null"));
        // v3 carries the observability snapshots
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"flow/augmentations\": "));
        assert!(j.contains("\"timings\": {"));
        // byte-stable for the timing-derived part (the trailing metrics /
        // timings blocks read live process counters, which sibling tests
        // running in parallel may bump between the two calls)
        let stable = |s: &str| s.split("\"metrics\"").next().map(str::to_owned);
        assert_eq!(stable(&j), stable(&to_json(4, &t)));
    }

    #[test]
    fn scaling_efficiency_uses_the_bins_serial_baseline() {
        let t = [
            timing("eng/threads1", 1, 32, 100.0), // 320 rps
            timing("eng/threads2", 2, 32, 100.0), // 320 rps → eff 0.5
            timing("eng/threads4", 4, 32, 25.0),  // 1280 rps → eff 1.0
            timing("other/threads2", 2, 8, 10.0), // no baseline in bin
        ];
        let eff = |i: usize| scaling_efficiency(&t[i], &t);
        assert!((eff(0).unwrap() - 1.0).abs() < 1e-9);
        assert!((eff(1).unwrap() - 0.5).abs() < 1e-9);
        assert!((eff(2).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(eff(3), None);
        let j = to_json(4, &t);
        assert!(j.contains("\"scaling_efficiency\": 1.000"));
        assert!(j.contains("\"scaling_efficiency\": 0.500"));
        assert!(j.contains("\"scaling_efficiency\": null"));
    }

    #[test]
    fn runs_per_sec_handles_zero_wall() {
        assert!(timing("x", 1, 5, 0.0).runs_per_sec().abs() < 1e-12);
        let t = timing("x", 1, 50, 1000.0);
        assert!((t.runs_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_escaped() {
        let j = to_json(1, &[timing("a\"b\\c", 1, 1, 1.0)]);
        assert!(j.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn timed_sweep_returns_outcomes_in_order() {
        use rbcast_core::ProtocolKind;
        let experiments: Vec<Experiment> = (1..=2)
            .map(|r| Experiment::new(r, ProtocolKind::Flood))
            .collect();
        let (rows, timing) = run_sweep_timed("test/order", &experiments, 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.fully_healthy());
        assert_eq!(timing.runs, 2);
        let serial = engine::run_experiments(&experiments, 1);
        let healthy: Vec<Outcome> = rows.iter().flatten().cloned().collect();
        assert_eq!(healthy, serial);
        std::fs::remove_file(journal_path("test/order")).ok();
    }

    fn cell(protocol: &str, side: usize, rounds: u32, wall_ms: f64) -> ScaleCell {
        ScaleCell {
            protocol: protocol.to_string(),
            side,
            nodes: side * side,
            rounds,
            deliveries: 40,
            messages: 10,
            wall_ms,
            peak_rss_kb: Some(2048),
        }
    }

    #[test]
    fn scale_json_shape_is_stable_and_rates_are_derived() {
        let cells = [
            cell("flood", 100, 54, 500.0),
            cell("cpa", 1000, 510, 2000.0),
        ];
        let j = to_scale_json("sparse", &cells);
        assert!(j.contains("\"schema\": \"rbcast-bench-scale/v2\""));
        assert!(j.contains("\"engine\": \"sparse\""));
        // 10 000 nodes in 0.5 s → 20 000 nodes/s; 54 rounds → 108 rounds/s
        assert!(j.contains(
            "\"protocol\": \"flood\", \"side\": 100, \"nodes\": 10000, \
             \"rounds\": 54, \"deliveries\": 40, \"messages\": 10, \
             \"wall_ms\": 500.000, \"nodes_per_sec\": 20000.000, \
             \"rounds_per_sec\": 108.000, \"peak_rss_kb\": 2048"
        ));
        // an absent probe serialises as JSON null, not a sentinel
        let mut no_probe = cell("flood", 10, 5, 1.0);
        no_probe.peak_rss_kb = None;
        assert!(to_scale_json("dense", &[no_probe]).contains("\"peak_rss_kb\": null"));
        assert!(j.contains("\"nodes\": 1000000"));
        // the trailing observability blocks ride along, as in sweep v3
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"timings\": {"));
        // byte-stable up to the live counter snapshots
        let stable = |s: &str| s.split("\"metrics\"").next().map(str::to_owned);
        assert_eq!(stable(&j), stable(&to_scale_json("sparse", &cells)));
    }

    #[test]
    fn peak_rss_probe_reports_a_plausible_value_on_procfs_platforms() {
        // On Linux the probe must succeed and report at least a few
        // hundred kB (the test binary alone maps more than that).
        // Elsewhere `None` is the documented answer.
        if std::path::Path::new("/proc/self/status").exists() {
            let kb = peak_rss_kb().expect("VmHWM present on procfs");
            assert!(kb > 100, "implausible peak RSS: {kb} kB");
        } else {
            assert_eq!(peak_rss_kb(), None);
        }
    }

    #[test]
    fn scale_rates_handle_zero_wall() {
        let c = cell("flood", 10, 5, 0.0);
        assert!(c.nodes_per_sec().abs() < 1e-12);
        assert!(c.rounds_per_sec().abs() < 1e-12);
    }

    #[test]
    fn journal_paths_flatten_labels_and_anchor_at_the_workspace_root() {
        let p = journal_path("thresh_byz/achievability");
        assert!(p.ends_with("results/journal/thresh_byz_achievability.jsonl"));
        assert!(p.is_absolute());
    }
}
