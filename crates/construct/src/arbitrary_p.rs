//! Arbitrary position of `P` (§VI-A, Fig. 7).
//!
//! Theorem 3's explicit construction covers the worst-case corner
//! `P = (−r, r+1)`; §VI-A argues every other frontier node enjoys at
//! least the same connectivity. This module verifies that claim
//! computationally for *every* node of `pnbd(0,0) − nbd(0,0)`: counting
//! the committers of `nbd(0,0)` that `P` either hears directly or reaches
//! through `r(2r+1)` vertex-disjoint paths inside a single neighborhood
//! (checked by max-flow on the lattice ball graph).

use crate::r_2r_plus_1;
use rbcast_flow::vertex_disjoint_count;
use rbcast_grid::{Coord, Metric, Neighborhood};
use std::collections::HashMap;

/// The frontier `pnbd(0,0) − nbd(0,0)` under the L∞ metric — the
/// `4(2r+1)` nodes the inductive step must newly reach.
#[must_use]
pub fn frontier_nodes(r: u32) -> Vec<Coord> {
    Neighborhood::new(Coord::ORIGIN, r, Metric::Linf).frontier()
}

/// `|nbd(P) ∩ ball(0, r)|` — committers `P` hears directly. For the
/// translated frontier-top node `P = (−r+l, r+1)` this is the paper's
/// `r(r+l+1)` (region `R` of Fig. 7).
#[must_use]
pub fn direct_count(r: u32, p: Coord) -> usize {
    ball(r, Coord::ORIGIN)
        .into_iter()
        .filter(|&x| Metric::Linf.within(p, x, r))
        .count()
}

/// All lattice points of the closed L∞ ball of radius `r` around `c`.
fn ball(r: u32, c: Coord) -> Vec<Coord> {
    let ri = i64::from(r);
    let mut v = Vec::with_capacity((2 * r as usize + 1).pow(2));
    for dy in -ri..=ri {
        for dx in -ri..=ri {
            v.push(c + Coord::new(dx, dy));
        }
    }
    v
}

/// Whether `P` can reach committer `x` through at least `k`
/// vertex-disjoint paths all lying inside a single closed L∞ ball of
/// radius `r` (searching every candidate ball containing both `P` and
/// `x`).
#[must_use]
pub fn connected_via_single_neighborhood(r: u32, p: Coord, x: Coord, k: u32) -> bool {
    let ri = i64::from(r);
    // candidate centers must cover both x and p
    for dy in -ri..=ri {
        for dx in -ri..=ri {
            let c = x + Coord::new(dx, dy);
            if !Metric::Linf.within(c, p, r) {
                continue;
            }
            let nodes = ball(r, c);
            let index: HashMap<Coord, usize> =
                nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            let adj: Vec<Vec<usize>> = nodes
                .iter()
                .map(|&a| {
                    nodes
                        .iter()
                        .enumerate()
                        .filter(|&(_, &b)| b != a && Metric::Linf.within(a, b, r))
                        .map(|(j, _)| j)
                        .collect()
                })
                .collect();
            if vertex_disjoint_count(&adj, index[&x], index[&p], Some(k)) >= k {
                return true;
            }
        }
    }
    false
}

/// Number of committers in `ball(0, r)` that `P` either hears directly or
/// reaches via `r(2r+1)` disjoint single-neighborhood paths.
///
/// The §VI-A claim is that this is ≥ `r(2r+1)` for every frontier node.
#[must_use]
pub fn determinable_count(r: u32, p: Coord) -> usize {
    let k = r_2r_plus_1(r) as u32;
    ball(r, Coord::ORIGIN)
        .into_iter()
        .filter(|&x| {
            x != p
                && (Metric::Linf.within(p, x, r) || connected_via_single_neighborhood(r, p, x, k))
        })
        .count()
}

/// Summary row for one frontier node, used by the Fig. 7 experiment
/// binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierRow {
    /// The frontier node.
    pub p: Coord,
    /// Committers heard directly.
    pub direct: usize,
    /// Committers determinable in total (direct + disjoint-path).
    pub determinable: usize,
    /// The required bound `r(2r+1)`.
    pub required: usize,
}

/// Computes the Fig. 7 table: one row per frontier node.
#[must_use]
pub fn frontier_table(r: u32) -> Vec<FrontierRow> {
    let required = r_2r_plus_1(r);
    frontier_nodes(r)
        .into_iter()
        .map(|p| FrontierRow {
            p,
            direct: direct_count(r, p),
            determinable: determinable_count(r, p),
            required,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worst_case_p;

    #[test]
    fn frontier_size_is_4_2r_plus_1() {
        for r in 1..=6u32 {
            assert_eq!(frontier_nodes(r).len(), 4 * (2 * r as usize + 1));
        }
    }

    #[test]
    fn direct_count_matches_paper_formula() {
        // P = (−r+l, r+1): direct range covers r(r+l+1) nodes (§VI-A).
        for r in 1..=8u32 {
            for l in 0..=r {
                let p = Coord::new(-i64::from(r) + i64::from(l), i64::from(r) + 1);
                assert_eq!(
                    direct_count(r, p),
                    (r as usize) * (r + l + 1) as usize,
                    "r={r} l={l}"
                );
            }
        }
    }

    #[test]
    fn worst_case_corner_has_smallest_direct_range() {
        for r in 1..=6u32 {
            let worst = direct_count(r, worst_case_p(r));
            for p in frontier_nodes(r) {
                assert!(direct_count(r, p) >= worst, "r={r} p={p}");
            }
        }
    }

    #[test]
    fn connectivity_bound_holds_for_all_frontier_nodes_r2() {
        let r = 2;
        for row in frontier_table(r) {
            assert!(
                row.determinable >= row.required,
                "P={} determinable={} < {}",
                row.p,
                row.determinable,
                row.required
            );
        }
    }

    #[test]
    fn connectivity_bound_holds_r1() {
        for row in frontier_table(1) {
            assert!(row.determinable >= row.required, "P={}", row.p);
        }
    }

    #[test]
    fn single_neighborhood_connectivity_examples() {
        // The explicit construction promises (0, r+1)-centered connectivity
        // between U committers and the worst-case P.
        let r = 2;
        let p = worst_case_p(r);
        let n = Coord::new(1, 2); // region U for r = 2
        assert!(connected_via_single_neighborhood(
            r,
            p,
            n,
            r_2r_plus_1(r) as u32
        ));
    }

    #[test]
    fn disconnected_when_k_too_large() {
        // No ball graph can offer more disjoint paths than the degree of
        // the terminals.
        let r = 1;
        let p = worst_case_p(r);
        let x = Coord::new(1, -1);
        assert!(!connected_via_single_neighborhood(r, p, x, 100));
    }
}
