//! Regions `M`, `R`, `U`, `S1`, `S2` of Figs. 1–3.
//!
//! With the neighborhood center at the origin and the worst-case frontier
//! node `P = (−r, r+1)`, the completeness proof partitions the region
//! `M ⊂ nbd(0,0)` of committers whose values `P` can reliably determine:
//!
//! * `R` — the `r(r+1)` nodes `P` hears directly (Fig. 2),
//! * `U` — the upper triangle `{(p, q) | 1 ≤ p < q ≤ r}` (Fig. 3),
//! * `S1` — the left column `{(−r, −p) | 0 ≤ p ≤ r−1}`,
//! * `S2` — the lower-left triangle `{(−q, −p) | 0 ≤ p < q ≤ r−1}`,
//!
//! with `M = R ∪ U ∪ S1 ∪ S2` a disjoint union of `r(2r+1)` nodes.

use crate::worst_case_p;
use rbcast_grid::{Coord, Metric};

/// Region `M` (Fig. 1): `{(−r+p, −r+q) | 2r ≥ q > p ≥ 0}` — the strict
/// upper-left triangle of `nbd(0,0)` above the main diagonal.
#[must_use]
pub fn region_m(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    let mut v = Vec::new();
    for p in 0..=(2 * r) {
        for q in (p + 1)..=(2 * r) {
            v.push(Coord::new(-r + p, -r + q));
        }
    }
    v
}

/// Region `R` (Fig. 2): `{(x, y) | −r ≤ x ≤ 0, 1 ≤ y ≤ r}` — the
/// `r(r+1)` nodes of `nbd(0,0)` that `P` hears directly.
#[must_use]
pub fn region_r(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    let mut v = Vec::new();
    for y in 1..=r {
        for x in -r..=0 {
            v.push(Coord::new(x, y));
        }
    }
    v
}

/// Region `U` (Fig. 3): `{(p, q) | 1 ≤ p < q ≤ r}` — `½·r(r−1)` nodes.
#[must_use]
pub fn region_u(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    let mut v = Vec::new();
    for p in 1..=r {
        for q in (p + 1)..=r {
            v.push(Coord::new(p, q));
        }
    }
    v
}

/// Region `S1` (Fig. 3): `{(−r, −p) | 0 ≤ p ≤ r−1}` — `r` nodes.
#[must_use]
pub fn region_s1(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    (0..r).map(|p| Coord::new(-r, -p)).collect()
}

/// Region `S2` (Fig. 3): `{(−q, −p) | r−1 ≥ q > p ≥ 0}` — `½·r(r−1)`
/// nodes.
#[must_use]
pub fn region_s2(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    let mut v = Vec::new();
    for p in 0..r {
        for q in (p + 1)..r {
            v.push(Coord::new(-q, -p));
        }
    }
    v
}

/// Checks the decomposition claim of Figs. 1–3: `M` is the disjoint union
/// of `R`, `U`, `S1` and `S2`, and `|M| = r(2r+1)`.
#[must_use]
pub fn decomposition_holds(r: u32) -> bool {
    use std::collections::BTreeSet;
    let m: BTreeSet<Coord> = region_m(r).into_iter().collect();
    let parts = [region_r(r), region_u(r), region_s1(r), region_s2(r)];
    let total: usize = parts.iter().map(Vec::len).sum();
    if total != crate::r_2r_plus_1(r) || m.len() != total {
        return false;
    }
    let mut union = BTreeSet::new();
    for part in &parts {
        for &c in part {
            if !union.insert(c) {
                return false; // overlap between parts
            }
        }
    }
    union == m
}

/// All members of `M` lie in `nbd(0,0)` and all members of `R` are within
/// direct range of `P` — the premises of Fig. 1 / Fig. 2.
#[must_use]
pub fn containment_holds(r: u32) -> bool {
    let p = worst_case_p(r);
    region_m(r)
        .iter()
        .all(|&c| Metric::Linf.within(Coord::ORIGIN, c, r))
        && region_r(r).iter().all(|&c| Metric::Linf.within(p, c, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_paper_formulas() {
        for r in 1..=12u32 {
            let ru = r as usize;
            assert_eq!(region_m(r).len(), ru * (2 * ru + 1), "M, r={r}");
            assert_eq!(region_r(r).len(), ru * (ru + 1), "R, r={r}");
            assert_eq!(region_u(r).len(), ru * (ru - 1) / 2, "U, r={r}");
            assert_eq!(region_s1(r).len(), ru, "S1, r={r}");
            assert_eq!(region_s2(r).len(), ru * (ru - 1) / 2, "S2, r={r}");
        }
    }

    #[test]
    fn m_decomposes_into_r_u_s1_s2() {
        for r in 1..=10 {
            assert!(decomposition_holds(r), "r={r}");
        }
    }

    #[test]
    fn m_and_r_containment() {
        for r in 1..=10 {
            assert!(containment_holds(r), "r={r}");
        }
    }

    #[test]
    fn r1_degenerate_shapes() {
        // r = 1: U and S2 are empty, M = R ∪ S1 with 3 nodes.
        assert!(region_u(1).is_empty());
        assert!(region_s2(1).is_empty());
        assert_eq!(region_m(1).len(), 3);
    }

    #[test]
    fn m_is_strictly_above_the_diagonal() {
        for c in region_m(4) {
            assert!(c.y > c.x, "{c} not above diagonal");
        }
    }

    #[test]
    fn s1_is_the_left_edge_column() {
        for c in region_s1(5) {
            assert_eq!(c.x, -5);
            assert!((-4..=0).contains(&c.y));
        }
    }

    #[test]
    fn direct_range_region_r_is_maximal() {
        // R is exactly nbd(P) ∩ nbd(0,0) for the worst-case P:
        // every node of nbd(0,0) within direct range of P is in R.
        for r in 1..=6u32 {
            let p = worst_case_p(r);
            let rset: std::collections::BTreeSet<Coord> = region_r(r).into_iter().collect();
            let ri = i64::from(r);
            for x in -ri..=ri {
                for y in -ri..=ri {
                    let c = Coord::new(x, y);
                    let in_range = Metric::Linf.within(p, c, r);
                    assert_eq!(rset.contains(&c), in_range, "r={r} c={c}");
                }
            }
        }
    }
}
