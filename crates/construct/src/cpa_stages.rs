//! Staged wavefront geometry of Theorem 6 (Figs. 14–19).
//!
//! Theorem 6 proves the simple protocol (CPA) tolerates `t ≤ ⅔·r²` in
//! L∞ by growing committed "stacks" against each edge of a committed
//! central square:
//!
//! 1. **Stage 1 seeds** (Fig. 14): the `2⌈r/2⌉+1` nodes centered on each
//!    edge at distance `r+1` see `≥ r(2r+1−⌈r/2⌉) > ³⁄₂r² + r` committed
//!    neighbors, exceeding the commit threshold `2t+1 ≤ ⁴⁄₃r²+1`.
//! 2. **Row growth** (Figs. 15–16): row `i` of the stack commits while
//!    `(⌈³⁄₂r⌉+1)(r+1−i) + (i−1)(2⌈r/2⌉+1) + (i−1)(⌈r/2⌉−i+1) ≥ ⁴⁄₃r²+1`,
//!    which holds for all `i ≤ ⌊r/√6⌋`, letting the stack reach `⌊r/3⌋`
//!    rows.
//! 3. **Stage 2** (Figs. 17–19): eight corner nodes commit with
//!    `≥ (r+1+⌈r/2⌉)r + 2⌈r/2⌉⌊r/3⌋ ≥ ¹¹⁄₆r²` committed neighbors, after
//!    which every remaining node has `≥ (r+1)r + 2⌈r/2⌉⌊r/3⌋ + 4 > ⁴⁄₃r²`.
//!
//! All inequalities are verified here with exact integer arithmetic
//! (comparisons against `⁴⁄₃r² + 1` are done as `3·lhs ≥ 4r² + 3`).

/// `⌈r/2⌉`.
#[must_use]
pub fn half_up(r: u32) -> u32 {
    r.div_ceil(2)
}

/// The largest `t` Theorem 6 guarantees CPA tolerates: `⌊⅔·r²⌋`.
///
/// The canonical definition lives in `rbcast-core::thresholds`
/// (`cpa_guaranteed_t`); this crate sits below `rbcast-core`, so it
/// keeps a local copy for its exact-arithmetic stage proofs, and a
/// dev-dependency test pins the two to agree.
///
/// # Panics
///
/// Panics if `⌊⅔·r²⌋` exceeds `u32::MAX` (the stage arithmetic here is
/// 32-bit; the core definition covers the full `u32` radius range).
#[must_use]
pub fn cpa_max_t(r: u32) -> u32 {
    let t = 2u64 * u64::from(r) * u64::from(r) / 3;
    u32::try_from(t).expect("⅔·r² exceeds u32 for this radius")
}

/// The commit threshold CPA needs when `t = ⌊⅔r²⌋`: `2t + 1`.
#[must_use]
pub fn cpa_commit_threshold(r: u32) -> u32 {
    let t = 2u64 * u64::from(cpa_max_t(r)) + 1;
    u32::try_from(t).expect("2t+1 exceeds u32 for this radius")
}

/// Koo's original CPA bound `½(r(r+√(r/2)+1))` that Theorem 6 dominates
/// asymptotically.
#[must_use]
pub fn koo_cpa_bound(r: u32) -> f64 {
    let r = f64::from(r);
    0.5 * (r * (r + (r / 2.0).sqrt() + 1.0))
}

/// Exact committed-neighbor count for a stage-1 seed node `(x, r+1)` with
/// `|x| ≤ ⌈r/2⌉`, assuming all of `ball(0, r)` has committed:
/// `r·(2r+1−|x|)`.
#[must_use]
pub fn seed_committed_neighbors(r: u32, x: i64) -> u64 {
    let ri = i64::from(r);
    assert!(
        x.unsigned_abs() <= u64::from(half_up(r)),
        "seed out of range"
    );
    // rows y ∈ [1, r] fully visible; columns [x−r, x+r] ∩ [−r, r].
    let cols = (x + ri).min(ri) - (x - ri).max(-ri) + 1;
    (ri as u64) * (cols as u64)
}

/// Whether every stage-1 seed on an edge can commit at `t = ⌊⅔r²⌋`
/// (Fig. 14): `seed_committed_neighbors ≥ 2t+1` for all `|x| ≤ ⌈r/2⌉`.
#[must_use]
pub fn stage1_seeds_commit(r: u32) -> bool {
    let need = u64::from(cpa_commit_threshold(r));
    (0..=i64::from(half_up(r))).all(|x| seed_committed_neighbors(r, x) >= need)
}

/// The paper's row-`i` growth inequality (Figs. 15–16), compared exactly:
/// `3·[(⌈³⁄₂r⌉+1)(r+1−i) + (i−1)(2⌈r/2⌉+1) + (i−1)(⌈r/2⌉−i+1)] ≥ 4r²+3`.
#[must_use]
pub fn row_condition(r: u32, i: u32) -> bool {
    let r64 = i64::from(r);
    let i64v = i64::from(i);
    let term1 = (i64::from((3 * r).div_ceil(2)) + 1) * (r64 + 1 - i64v);
    let term2 = (i64v - 1) * (2 * i64::from(half_up(r)) + 1);
    let term3 = (i64v - 1) * (i64::from(half_up(r)) - i64v + 1);
    3 * (term1 + term2 + term3) >= 4 * r64 * r64 + 3
}

/// Number of committed-stack rows guaranteed by [`row_condition`] — the
/// largest `i` such that rows `1..=i` all satisfy it.
#[must_use]
pub fn guaranteed_stack_rows(r: u32) -> u32 {
    let mut i = 0;
    while row_condition(r, i + 1) {
        i += 1;
    }
    i
}

/// The stack-depth target of Fig. 16: `⌊r/3⌋` rows.
#[must_use]
pub fn required_stack_rows(r: u32) -> u32 {
    r / 3
}

/// Stage-2 corner committed-neighbor lower bound (Fig. 17):
/// `(r+1+⌈r/2⌉)·r + 2⌈r/2⌉·⌊r/3⌋`.
#[must_use]
pub fn stage2_corner_count(r: u32) -> u64 {
    let (r64, h, s) = (u64::from(r), u64::from(half_up(r)), u64::from(r / 3));
    (r64 + 1 + h) * r64 + 2 * h * s
}

/// Stage-2 remaining-node committed-neighbor lower bound (Figs. 18–19):
/// `(r+1)·r + 2⌈r/2⌉·⌊r/3⌋ + 4`.
#[must_use]
pub fn stage2_rest_count(r: u32) -> u64 {
    let (r64, h, s) = (u64::from(r), u64::from(half_up(r)), u64::from(r / 3));
    (r64 + 1) * r64 + 2 * h * s + 4
}

/// Verifies the complete Theorem 6 chain of inequalities for radius `r`:
/// seeds commit, the stack reaches `⌊r/3⌋` rows, and both stage-2 counts
/// exceed the threshold. The paper claims this for all `r ≥ 2`.
#[must_use]
pub fn theorem6_holds(r: u32) -> bool {
    let need = u64::from(cpa_commit_threshold(r));
    stage1_seeds_commit(r)
        && guaranteed_stack_rows(r) >= required_stack_rows(r)
        && stage2_corner_count(r) >= need
        && stage2_rest_count(r) >= need
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpa_max_t_values() {
        assert_eq!(cpa_max_t(2), 2); // ⌊8/3⌋
        assert_eq!(cpa_max_t(3), 6);
        assert_eq!(cpa_max_t(6), 24);
    }

    #[test]
    fn cpa_max_t_matches_the_canonical_threshold() {
        // The workspace's single source of truth for Theorem 6.
        for r in 1..=2_000 {
            assert_eq!(
                u64::from(cpa_max_t(r)),
                rbcast_core::thresholds::cpa_guaranteed_t(r),
                "r={r}"
            );
        }
    }

    #[test]
    fn theorem6_dominates_koo_for_large_r() {
        // ⅔r² > ½(r(r+√(r/2)+1)) for sufficiently large r; the paper says
        // "for all sufficiently large r" — verify the crossover exists
        // and the domination holds beyond it.
        let crossover = (2..200u32)
            .find(|&r| f64::from(cpa_max_t(r)) > koo_cpa_bound(r))
            .expect("no crossover found");
        for r in crossover..200 {
            assert!(f64::from(cpa_max_t(r)) > koo_cpa_bound(r), "r={r}");
        }
        // and the crossover is small (the bounds are close from the start)
        assert!(crossover <= 20, "crossover={crossover}");
    }

    #[test]
    fn seed_counts_match_closed_form() {
        for r in 2..=12u32 {
            for x in 0..=i64::from(half_up(r)) {
                let count = seed_committed_neighbors(r, x);
                assert_eq!(count, u64::from(r) * (2 * u64::from(r) + 1 - x as u64));
            }
        }
    }

    #[test]
    fn seed_count_brute_force_cross_check() {
        // count ball(0,r) nodes within L∞ r of (x, r+1)
        use rbcast_grid::{Coord, Metric};
        for r in 2..=8u32 {
            for x in 0..=i64::from(half_up(r)) {
                let seed = Coord::new(x, i64::from(r) + 1);
                let ri = i64::from(r);
                let mut brute = 0u64;
                for yy in -ri..=ri {
                    for xx in -ri..=ri {
                        if Metric::Linf.within(seed, Coord::new(xx, yy), r) {
                            brute += 1;
                        }
                    }
                }
                assert_eq!(seed_committed_neighbors(r, x), brute, "r={r} x={x}");
            }
        }
    }

    #[test]
    fn stage1_commits_for_all_r_geq_2() {
        for r in 2..=100 {
            assert!(stage1_seeds_commit(r), "r={r}");
        }
    }

    #[test]
    fn stack_reaches_r_over_3() {
        for r in 2..=100 {
            assert!(
                guaranteed_stack_rows(r) >= required_stack_rows(r),
                "r={r}: {} < {}",
                guaranteed_stack_rows(r),
                required_stack_rows(r)
            );
        }
    }

    #[test]
    fn stack_rows_close_to_r_over_sqrt6() {
        // the paper: condition holds for all i ≤ r/√6
        for r in 6..=60u32 {
            let bound = (f64::from(r) / 6.0f64.sqrt()).floor() as u32;
            assert!(
                guaranteed_stack_rows(r) >= bound,
                "r={r}: {} < {bound}",
                guaranteed_stack_rows(r)
            );
        }
    }

    #[test]
    fn theorem6_full_chain() {
        for r in 2..=100 {
            assert!(theorem6_holds(r), "r={r}");
        }
    }

    #[test]
    fn stage2_counts_exceed_11_6_and_4_3() {
        for r in 2..=50u64 {
            let corner = stage2_corner_count(r as u32);
            // paper: corner count ≥ 11r²/6
            assert!(6 * corner >= 11 * r * r, "r={r} corner={corner}");
        }
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn seed_out_of_range_panics() {
        let _ = seed_committed_neighbors(4, 3);
    }
}
