//! Impossibility constructions: Fig. 8 (crash-stop, Theorem 4) and the
//! L∞ Byzantine threshold construction of Koo that Theorem 1 matches.
//!
//! * **Crash-stop** — all nodes in the vertical strip `a ≤ x < a+r` are
//!   faulty. Any closed L∞ ball of radius `r` contains at most
//!   `r(2r+1)` strip nodes, yet no edge crosses the strip, partitioning
//!   the half-plane `x ≥ a+r` from the source.
//! * **Byzantine** — the checkerboard half of the same strip
//!   (`(x+y)` even): at most `⌈½·r(2r+1)⌉` faults per ball, the
//!   placement realising Koo's impossibility bound that Theorem 1 shows
//!   to be tight.

use rbcast_grid::Coord;

/// Membership test for the width-`r` faulty strip `0 ≤ x < r`
/// (normalised to `a = 0`).
#[must_use]
pub fn in_crash_strip(r: u32, c: Coord) -> bool {
    c.x >= 0 && c.x < i64::from(r)
}

/// Membership test for the checkerboard half-strip used at the Byzantine
/// impossibility threshold: strip nodes with `x + y` even.
#[must_use]
pub fn in_byzantine_half_strip(r: u32, c: Coord) -> bool {
    in_crash_strip(r, c) && (c.x + c.y).rem_euclid(2) == 0
}

/// Maximum number of crash-strip nodes in any closed L∞ ball of radius
/// `r`, computed by brute force over ball centers. Theorem 4 claims this
/// equals `r(2r+1)`.
#[must_use]
pub fn max_crash_faults_per_ball(r: u32) -> usize {
    max_faults_per_ball(r, |c| in_crash_strip(r, c))
}

/// Maximum number of checkerboard half-strip nodes in any closed L∞
/// ball of radius `r`. Equals Koo's impossibility bound `⌈½·r(2r+1)⌉`.
#[must_use]
pub fn max_byzantine_faults_per_ball(r: u32) -> usize {
    max_faults_per_ball(r, |c| in_byzantine_half_strip(r, c))
}

fn max_faults_per_ball(r: u32, faulty: impl Fn(Coord) -> bool) -> usize {
    let ri = i64::from(r);
    let mut best = 0;
    // Scan centers far enough to cover all distinct strip/ball overlaps;
    // y matters only modulo 2 for the checkerboard.
    for cy in 0..=1 {
        for cx in -2 * ri..=3 * ri {
            let mut count = 0;
            for dy in -ri..=ri {
                for dx in -ri..=ri {
                    if faulty(Coord::new(cx + dx, cy + dy)) {
                        count += 1;
                    }
                }
            }
            best = best.max(count);
        }
    }
    best
}

/// Verifies the partition claim of Theorem 4: no node with `x < 0` is
/// within radius `r` of any node with `x ≥ r` (so correct nodes to the
/// right of the strip can never hear the broadcast).
#[must_use]
pub fn strip_partitions(r: u32) -> bool {
    let ri = i64::from(r);
    // The closest candidate pair is x = −1 vs x = r; L∞ distance r+1.
    for yl in -ri..=ri {
        let left = Coord::new(-1, 0);
        let right = Coord::new(ri, yl);
        if left.linf_dist(right) <= u64::from(r) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_strip_local_bound_is_r_2r_plus_1() {
        for r in 1..=8u32 {
            assert_eq!(max_crash_faults_per_ball(r), crate::r_2r_plus_1(r), "r={r}");
        }
    }

    #[test]
    fn byzantine_half_strip_matches_koo_bound() {
        for r in 1..=8u32 {
            let bound = crate::r_2r_plus_1(r).div_ceil(2); // ⌈½ r(2r+1)⌉
            assert_eq!(max_byzantine_faults_per_ball(r), bound, "r={r}");
        }
    }

    #[test]
    fn koo_bound_is_one_above_max_tolerable() {
        // Theorem 1 tolerates every t < ½ r(2r+1); the construction
        // realises exactly the first intolerable t.
        for r in 1..=8u32 {
            let t_max = (crate::r_2r_plus_1(r) - 1) / 2;
            assert_eq!(max_byzantine_faults_per_ball(r), t_max + 1, "r={r}");
        }
    }

    #[test]
    fn the_strip_partitions_the_grid() {
        for r in 1..=8 {
            assert!(strip_partitions(r));
        }
    }

    #[test]
    fn strip_membership() {
        assert!(in_crash_strip(3, Coord::new(0, 5)));
        assert!(in_crash_strip(3, Coord::new(2, -7)));
        assert!(!in_crash_strip(3, Coord::new(3, 0)));
        assert!(!in_crash_strip(3, Coord::new(-1, 0)));
    }

    #[test]
    fn checkerboard_is_half_the_strip() {
        let r = 4;
        let mut strip = 0;
        let mut half = 0;
        for x in 0..i64::from(r) {
            for y in 0..100 {
                if in_crash_strip(r, Coord::new(x, y)) {
                    strip += 1;
                }
                if in_byzantine_half_strip(r, Coord::new(x, y)) {
                    half += 1;
                }
            }
        }
        assert_eq!(strip, 400);
        assert_eq!(half, 200);
    }
}
