//! Euclidean-metric constructions (§VIII, Figs. 11–13).
//!
//! The paper's L2 arguments are approximate: lattice counts of circular
//! regions are `area ± O(r)`. This module computes the exact lattice
//! quantities so the experiment binaries can report how fast the ratios
//! converge to the paper's constants:
//!
//! * half-neighborhood population `≈ 0.5·πr²` (Fig. 11),
//! * disjoint `P–Q` paths inside one neighborhood for
//!   `|PQ| ≈ r√2` `≈ 1.47r² ≈ 0.47·πr²` (Fig. 12),
//! * strip faults per neighborhood `≈ 0.6·πr²`, half of them faulty
//!   `≈ 0.3·πr²` (Fig. 13).

use rbcast_flow::vertex_disjoint_count;
use rbcast_grid::{Coord, Metric};
use std::collections::HashMap;

/// Number of lattice points in the closed L2 disk of radius `r`
/// (the Gauss circle count, center included).
#[must_use]
pub fn disk_count(r: u32) -> usize {
    let ri = i64::from(r);
    let r_sq = i64::from(r) * i64::from(r);
    let mut n = 0;
    for y in -ri..=ri {
        for x in -ri..=ri {
            if x * x + y * y <= r_sq {
                n += 1;
            }
        }
    }
    n
}

/// Number of lattice points of the closed disk strictly on the negative-x
/// side of the medial axis (`x < 0`) — the "half-neighborhood" of
/// Fig. 11, whose population must exceed `2t + 1`.
#[must_use]
pub fn half_disk_count(r: u32) -> usize {
    let ri = i64::from(r);
    let r_sq = i64::from(r) * i64::from(r);
    let mut n = 0;
    for y in -ri..=ri {
        for x in -ri..=-1 {
            if x * x + y * y <= r_sq {
                n += 1;
            }
        }
    }
    n
}

/// Number of lattice points of the closed disk strictly on the negative
/// side of the axis perpendicular to direction `(dx, dy)` — the
/// half-neighborhood of Fig. 11 for an arbitrary frontier direction
/// `NQ` (the medial axis itself is excluded, as in the paper).
///
/// # Panics
///
/// Panics if `(dx, dy)` is the zero vector.
#[must_use]
pub fn half_disk_count_dir(r: u32, dx: i64, dy: i64) -> usize {
    assert!(dx != 0 || dy != 0, "direction must be non-zero");
    let ri = i64::from(r);
    let r_sq = ri * ri;
    let mut n = 0;
    for y in -ri..=ri {
        for x in -ri..=ri {
            if x * x + y * y <= r_sq && x * dx + y * dy < 0 {
                n += 1;
            }
        }
    }
    n
}

/// The integer separation used for the Fig. 12 worst case: `⌊r·√2⌋`.
#[must_use]
pub fn worst_case_separation(r: u32) -> i64 {
    (f64::from(r) * std::f64::consts::SQRT_2).floor() as i64
}

/// Result of the Fig. 12 disjoint-path computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig12Result {
    /// Transmission radius.
    pub r: u32,
    /// `P`–`Q` separation (`⌊r√2⌋`).
    pub separation: i64,
    /// Lattice points in the enclosing disk around the midpoint.
    pub disk_nodes: usize,
    /// Common neighbors of `P` and `Q` inside the disk (region `A`,
    /// two-hop paths).
    pub common_neighbors: usize,
    /// Maximum vertex-disjoint `P`–`Q` paths inside the disk.
    pub disjoint_paths: u32,
}

impl Fig12Result {
    /// `disjoint_paths / r²` — the paper predicts `≈ 1.47` for large `r`.
    #[must_use]
    pub fn paths_per_r_sq(&self) -> f64 {
        f64::from(self.disjoint_paths) / (f64::from(self.r) * f64::from(self.r))
    }
}

/// Computes the Fig. 12 construction for radius `r`: `P` and `Q` at
/// lattice distance `⌊r√2⌋`, paths constrained to the closed L2 ball
/// around the midpoint `M`, counted by max-flow.
///
/// # Panics
///
/// Panics if `r < 2` (the construction needs `P ≠ Q ≠ M`).
#[must_use]
pub fn fig12(r: u32) -> Fig12Result {
    assert!(r >= 2, "fig12 requires r >= 2");
    let d = worst_case_separation(r);
    let p = Coord::new(0, 0);
    let q = Coord::new(d, 0);
    let m = Coord::new(d / 2, 0);

    // Lattice points of the closed disk around M.
    let ri = i64::from(r);
    let mut nodes = Vec::new();
    for y in -ri..=ri {
        for x in (m.x - ri)..=(m.x + ri) {
            let c = Coord::new(x, y);
            if Metric::L2.within(m, c, r) {
                nodes.push(c);
            }
        }
    }
    let index: HashMap<Coord, usize> = nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    assert!(index.contains_key(&p) && index.contains_key(&q));

    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&a| {
            nodes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b != a && Metric::L2.within(a, b, r))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();

    let common = nodes
        .iter()
        .filter(|&&c| c != p && c != q && Metric::L2.within(p, c, r) && Metric::L2.within(q, c, r))
        .count();

    let disjoint = vertex_disjoint_count(&adj, index[&p], index[&q], None);

    Fig12Result {
        r,
        separation: d,
        disk_nodes: nodes.len(),
        common_neighbors: common,
        disjoint_paths: disjoint,
    }
}

/// Counts of the explicit Fig. 12 path families, lattice-rounded.
///
/// The paper builds `P`–`Q` paths from region pairs: `A` (common
/// neighbors, 2-hop), `B1 → B2` with `B2 = B1 + (r, 0)`, `C1 → C2` with
/// `C2 = C1 + (⌊r/√2⌉, 0)`, and `E1 → E2` with `E2` the mirror of `E1`
/// across the perpendicular bisector `OO'`. On the lattice the regions
/// are materialised greedily (a node joins at most one family), so the
/// total is a valid disjoint-path count and a lower bound on the
/// max-flow optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig12Regions {
    /// Transmission radius.
    pub r: u32,
    /// Two-hop paths through common neighbors (region `A`).
    pub a: usize,
    /// Three-hop paths through the `(r, 0)` translation (regions `B`).
    pub b_pairs: usize,
    /// Three-hop paths through the `(⌊r/√2⌉, 0)` translation (regions `C`/`D`).
    pub c_pairs: usize,
    /// Three-hop paths through the `OO'` mirror pairing (regions `E`).
    pub e_pairs: usize,
}

impl Fig12Regions {
    /// Total disjoint paths the explicit families yield.
    #[must_use]
    pub fn total(&self) -> usize {
        self.a + self.b_pairs + self.c_pairs + self.e_pairs
    }

    /// `total / r²` — the paper estimates the family areas sum to
    /// `≈ 1.47r²`.
    #[must_use]
    pub fn per_r_sq(&self) -> f64 {
        self.total() as f64 / (f64::from(self.r) * f64::from(self.r))
    }
}

/// Builds the explicit Fig. 12 families for radius `r` and returns their
/// (greedily disjointified) sizes. Every counted node set corresponds to
/// a valid `P`–`Q` path inside the ball around the midpoint `M`.
///
/// # Panics
///
/// Panics if `r < 2`.
#[must_use]
pub fn fig12_regions(r: u32) -> Fig12Regions {
    assert!(r >= 2, "fig12_regions requires r >= 2");
    let d = worst_case_separation(r);
    let p = Coord::new(0, 0);
    let q = Coord::new(d, 0);
    let m = Coord::new(d / 2, 0);
    let in_ball = |c: Coord| Metric::L2.within(m, c, r) && c != p && c != q;
    let near = |a: Coord, b: Coord| Metric::L2.within(a, b, r);

    let ri = i64::from(r);
    let mut used: std::collections::HashSet<Coord> = std::collections::HashSet::new();

    // A: common neighbors — 2-hop paths.
    let mut a = 0;
    for y in -ri..=ri {
        for x in (m.x - ri)..=(m.x + ri) {
            let c = Coord::new(x, y);
            if in_ball(c) && near(p, c) && near(q, c) {
                used.insert(c);
                a += 1;
            }
        }
    }

    // Pair families: for each candidate first relay b1 near P, the second
    // relay is a fixed translation/mirror; take the pair when both nodes
    // are free, in the ball, mutually adjacent, and correctly attached.
    let mut take_pairs = |offset: Box<dyn Fn(Coord) -> Coord>| -> usize {
        let mut n = 0;
        for y in -ri..=ri {
            for x in (m.x - ri)..=(m.x + ri) {
                let b1 = Coord::new(x, y);
                let b2 = offset(b1);
                if b1 != b2
                    && in_ball(b1)
                    && in_ball(b2)
                    && !used.contains(&b1)
                    && !used.contains(&b2)
                    && near(p, b1)
                    && near(b1, b2)
                    && near(b2, q)
                {
                    used.insert(b1);
                    used.insert(b2);
                    n += 1;
                }
            }
        }
        n
    };

    let b_pairs = take_pairs(Box::new(move |c| c + Coord::new(i64::from(r), 0)));
    let c_off = (f64::from(r) / std::f64::consts::SQRT_2).round() as i64;
    let c_pairs = take_pairs(Box::new(move |c| c + Coord::new(c_off, 0)));
    // E: mirror across the perpendicular bisector x = d/2.
    let e_pairs = take_pairs(Box::new(move |c| Coord::new(d - c.x, c.y)));

    Fig12Regions {
        r,
        a,
        b_pairs,
        c_pairs,
        e_pairs,
    }
}

/// Fig. 13 lattice counts for the width-`r` strip under the L2 metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig13Result {
    /// Transmission radius.
    pub r: u32,
    /// Maximum strip nodes in any closed L2 disk of radius `r`
    /// (`≈ 0.6·πr²`).
    pub max_strip_per_disk: usize,
    /// Maximum checkerboard half-strip nodes per disk (`≈ 0.3·πr²`).
    pub max_half_strip_per_disk: usize,
}

/// Computes the Fig. 13 counts by brute force over disk centers.
#[must_use]
pub fn fig13(r: u32) -> Fig13Result {
    let ri = i64::from(r);
    let r_sq = ri * ri;
    let mut max_strip = 0;
    let mut max_half = 0;
    for cy in 0..=1i64 {
        for cx in -2 * ri..=3 * ri {
            let mut strip = 0;
            let mut half = 0;
            for dy in -ri..=ri {
                for dx in -ri..=ri {
                    if dx * dx + dy * dy > r_sq {
                        continue;
                    }
                    let c = Coord::new(cx + dx, cy + dy);
                    if crate::impossibility::in_crash_strip(r, c) {
                        strip += 1;
                        if (c.x + c.y).rem_euclid(2) == 0 {
                            half += 1;
                        }
                    }
                }
            }
            max_strip = max_strip.max(strip);
            max_half = max_half.max(half);
        }
    }
    Fig13Result {
        r,
        max_strip_per_disk: max_strip,
        max_half_strip_per_disk: max_half,
    }
}

/// The exact area of the circle/strip overlap that the strip count
/// approximates: `r²(√3/2 + π/3) ≈ 0.609·πr²`.
#[must_use]
pub fn strip_overlap_area(r: u32) -> f64 {
    let r = f64::from(r);
    r * r * (3.0f64.sqrt() / 2.0 + std::f64::consts::PI / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_counts_gauss_circle() {
        // Known Gauss circle values N(r): 1, 5, 13, 29, 49, 81, 113, 149.
        let expected = [(0u32, 1usize), (1, 5), (2, 13), (3, 29), (4, 49), (5, 81)];
        for (r, n) in expected {
            assert_eq!(disk_count(r), n, "r={r}");
        }
    }

    #[test]
    fn half_disk_approaches_half_pi_r_sq() {
        for r in [10u32, 20, 40] {
            let ratio = half_disk_count(r) as f64 / (f64::from(r) * f64::from(r));
            let target = 0.5 * std::f64::consts::PI;
            assert!(
                (ratio - target).abs() < 0.25,
                "r={r} ratio={ratio} target={target}"
            );
        }
    }

    #[test]
    fn directional_half_disks_match_axis_aligned() {
        for r in 1..=15u32 {
            assert_eq!(half_disk_count_dir(r, 1, 0), half_disk_count(r), "r={r}");
        }
    }

    #[test]
    fn directional_half_disks_are_near_half_pi_r_sq_in_all_directions() {
        // the §VIII argument holds for any frontier direction NQ
        let r = 20u32;
        let r_sq = f64::from(r) * f64::from(r);
        for (dx, dy) in [(1, 0), (0, 1), (1, 1), (2, 1), (3, 2), (-1, 3)] {
            let ratio = half_disk_count_dir(r, dx, dy) as f64 / r_sq;
            assert!(
                (ratio - 0.5 * std::f64::consts::PI).abs() < 0.15,
                "dir=({dx},{dy}) ratio={ratio}"
            );
        }
    }

    #[test]
    fn opposite_directions_tile_the_off_axis_disk() {
        // points strictly on each side + points on the axis = disk
        let r = 9u32;
        for (dx, dy) in [(1, 0), (1, 1), (2, 1)] {
            let pos = half_disk_count_dir(r, dx, dy);
            let neg = half_disk_count_dir(r, -dx, -dy);
            assert!(pos + neg < disk_count(r), "axis points must remain");
            assert_eq!(pos, neg, "symmetry");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_direction_panics() {
        let _ = half_disk_count_dir(3, 0, 0);
    }

    #[test]
    fn half_disk_is_less_than_half_of_disk() {
        for r in 1..=20u32 {
            // strictly less: the x = 0 column is excluded
            assert!(2 * half_disk_count(r) < disk_count(r));
        }
    }

    #[test]
    fn separation_is_floor_r_sqrt2() {
        assert_eq!(worst_case_separation(5), 7);
        assert_eq!(worst_case_separation(10), 14);
        assert_eq!(worst_case_separation(20), 28);
    }

    #[test]
    fn fig12_small_radius_sanity() {
        let res = fig12(5);
        assert_eq!(res.separation, 7);
        assert!(res.disk_nodes > 0);
        // disjoint paths should be positive and bounded by the disk size
        assert!(res.disjoint_paths > 0);
        assert!((res.disjoint_paths as usize) < res.disk_nodes);
        // common neighbors provide a lower bound on disjoint paths
        // (each common neighbor is a 2-hop path, plus P–Q may be out of
        // direct range at distance ⌊r√2⌋ > r)
        assert!(res.disjoint_paths as usize >= res.common_neighbors);
    }

    #[test]
    fn fig12_ratio_approaches_paper_constant() {
        // 1.47 r² is the paper's area estimate; at moderate r the lattice
        // count should be in the right ballpark.
        let res = fig12(10);
        let ratio = res.paths_per_r_sq();
        assert!(
            (1.0..=2.0).contains(&ratio),
            "ratio {ratio} wildly off the paper's 1.47"
        );
    }

    #[test]
    fn fig12_supports_byzantine_threshold() {
        // The induction needs disjoint_paths ≥ 2t+1 with t = ⌊0.23πr²⌋.
        for r in [6u32, 8, 10] {
            let res = fig12(r);
            let t = (0.23 * std::f64::consts::PI * f64::from(r) * f64::from(r)) as u32;
            assert!(
                res.disjoint_paths > 2 * t,
                "r={r}: {} < 2·{t}+1",
                res.disjoint_paths
            );
        }
    }

    #[test]
    fn fig12_regions_are_valid_disjoint_paths() {
        // the greedy family total is a genuine disjoint-path count:
        // bounded by the max-flow optimum
        for r in [5u32, 8, 10] {
            let regions = fig12_regions(r);
            let flow = fig12(r);
            assert!(
                regions.total() as u32 <= flow.disjoint_paths,
                "r={r}: {} > {}",
                regions.total(),
                flow.disjoint_paths
            );
            assert!(regions.a > 0 && regions.total() > regions.a);
        }
    }

    #[test]
    fn fig12_regions_approach_the_paper_area_sum() {
        // the explicit families should capture the bulk of 1.47r²
        let regions = fig12_regions(16);
        let ratio = regions.per_r_sq();
        assert!(ratio > 1.0, "ratio={ratio} too small");
        assert!(ratio <= 1.8, "ratio={ratio} exceeds plausibility");
    }

    #[test]
    fn fig12_regions_support_threshold_for_moderate_r() {
        for r in [8u32, 12, 16] {
            let t = (0.23 * std::f64::consts::PI * f64::from(r) * f64::from(r)) as usize;
            let regions = fig12_regions(r);
            assert!(
                regions.total() > 2 * t,
                "r={r}: {} < {}",
                regions.total(),
                2 * t + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires r >= 2")]
    fn fig12_regions_rejects_tiny_radius() {
        let _ = fig12_regions(1);
    }

    #[test]
    fn fig13_ratios() {
        let res = fig13(12);
        let r_sq = 144.0;
        let strip_ratio = res.max_strip_per_disk as f64 / r_sq;
        // paper: ≈ 0.6π ≈ 1.913
        assert!(
            (strip_ratio - 1.913).abs() < 0.25,
            "strip ratio {strip_ratio}"
        );
        // half-strip ≈ half of the strip
        let half_ratio = res.max_half_strip_per_disk as f64 / res.max_strip_per_disk as f64;
        assert!((half_ratio - 0.5).abs() < 0.05, "half ratio {half_ratio}");
    }

    #[test]
    fn strip_overlap_area_close_to_0_6_pi() {
        let a = strip_overlap_area(1);
        assert!((a / std::f64::consts::PI - 0.609).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "requires r >= 2")]
    fn fig12_rejects_tiny_radius() {
        let _ = fig12(1);
    }
}
