//! Computational reproductions of the geometric constructions in
//! Bhandari & Vaidya, *On Reliable Broadcast in a Radio Network*.
//!
//! The paper's proofs are constructive lattice geometry: explicit families
//! of node-disjoint relay paths inside single neighborhoods (Theorems 1,
//! 3), fault-strip impossibility constructions (Theorems 4, Fig. 13), the
//! Euclidean-metric approximation (§VIII), and the staged wavefront
//! analysis of the simple CPA protocol (Theorem 6). Every figure and the
//! table of the paper corresponds to a module here:
//!
//! | Paper artifact | Module |
//! |----------------|--------|
//! | Figs. 1–3 (regions `M`, `R`, `U`, `S1`, `S2`) | [`corner`] |
//! | Table I + Figs. 4–5 (regions `A`..`D3`, paths for region `U`) | [`regions`], [`paths_u`] |
//! | Fig. 6 (regions `J`, `K1`, `K2`, paths for region `S1`) | [`paths_s1`] |
//! | axial symmetry for region `S2` | [`symmetry`] |
//! | Fig. 7 (arbitrary position of `P`, §VI-A) | [`arbitrary_p`] |
//! | §VI-B simplified-protocol connectivity witness | [`simplified`] |
//! | Fig. 8 (crash-stop impossibility strip) | [`impossibility`] |
//! | Figs. 11–13 (Euclidean metric, §VIII) | [`l2`] |
//! | Figs. 14–19 (CPA stage geometry, Theorem 6) | [`cpa_stages`] |
//!
//! Throughout, the neighborhood center is normalised to the origin
//! (`(a, b) = (0, 0)`) and the paper's worst-case frontier node is
//! `P = (−r, r+1)`. A *neighborhood*, as a set, is the closed L∞ ball of
//! radius `r` (the `(2r+1)²` lattice points within distance `r` of the
//! center, center included) — the convention under which the paper's
//! fault-budget statements ("a faulty node may have up to `t−1` faulty
//! neighbors") are consistent.
//!
//! # Example
//!
//! ```
//! use rbcast_construct::paths_u;
//!
//! // For every committer in region U the construction yields exactly
//! // r(2r+1) node-disjoint paths to P, all inside one neighborhood.
//! let r = 3;
//! let paths = paths_u::build(r, 1, 2);
//! assert_eq!(paths.len(), (r * (2 * r + 1)) as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary_p;
pub mod corner;
pub mod cpa_stages;
pub mod impossibility;
pub mod l2;
pub mod paths_s1;
pub mod paths_u;
pub mod regions;
pub mod simplified;
pub mod symmetry;
pub mod verify;

use rbcast_grid::Coord;

/// The paper's worst-case frontier node `P = (a−r, b+r+1)`, with the
/// neighborhood center normalised to the origin.
#[must_use]
pub fn worst_case_p(r: u32) -> Coord {
    Coord::new(-i64::from(r), i64::from(r) + 1)
}

/// `r(2r+1)` — the number of node-disjoint paths each construction
/// produces, the size of region `M`, and (twice) the Byzantine threshold.
#[must_use]
pub fn r_2r_plus_1(r: u32) -> usize {
    let r = r as usize;
    r * (2 * r + 1)
}
