//! The Fig. 6 construction: `r(2r+1)` node-disjoint paths between a
//! region-`S1` committer `N = (−r, −p)` and `P = (−r, r+1)`, all inside
//! the neighborhood centered at `(−r, 1)` (the paper's `nbd(a−r, b+1)`).
//!
//! * `N → J → P` — one relay each; `J` is the `(r−p)(2r+1)` common
//!   neighbors of `N` and `P`;
//! * `N → K1 → K2 → P` — two relays; `K2 = K1 + (0, r)`, `p(2r+1)` paths.

use crate::regions::S1Params;
use crate::{r_2r_plus_1, worst_case_p};
use rbcast_grid::Coord;

/// The enclosing neighborhood center for the region-`S1` construction:
/// `(a − r, b + 1)` — normalised, `(−r, 1)`.
#[must_use]
pub fn enclosing_center(r: u32) -> Coord {
    Coord::new(-i64::from(r), 1)
}

/// Builds the full family of `r(2r+1)` node-disjoint `N → P` paths for
/// the committer `N = (−r, −p)` in region `S1`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ r−1` (the definition of region `S1`).
#[must_use]
pub fn build(r: u32, p: u32) -> Vec<Vec<Coord>> {
    let params = S1Params::new(r, p);
    let n = Coord::new(-params.r, -params.p);
    let target = worst_case_p(r);
    let ri = i64::from(r);

    let mut paths = Vec::with_capacity(r_2r_plus_1(r));
    for j in params.region_j().points() {
        paths.push(vec![n, j, target]);
    }
    for k1 in params.region_k1().points() {
        let k2 = k1 + Coord::new(0, ri);
        paths.push(vec![n, k1, k2, target]);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_family;
    use rbcast_grid::Metric;

    #[test]
    fn count_is_r_2r_plus_1() {
        for r in 1..=10u32 {
            for p in 0..r {
                assert_eq!(build(r, p).len(), r_2r_plus_1(r), "r={r} p={p}");
            }
        }
    }

    #[test]
    fn family_verifies_for_all_parameters() {
        for r in 1..=8u32 {
            for p in 0..r {
                let n = Coord::new(-i64::from(r), -i64::from(p));
                let result = verify_family(
                    &build(r, p),
                    n,
                    worst_case_p(r),
                    r,
                    Metric::Linf,
                    enclosing_center(r),
                    3,
                );
                assert_eq!(result, Ok(()), "r={r} p={p}");
            }
        }
    }

    #[test]
    fn p_zero_uses_only_direct_relays() {
        // p = 0: K1 empty, all r(2r+1) paths are single-relay J paths.
        let paths = build(4, 0);
        assert!(paths.iter().all(|path| path.len() == 3));
    }

    #[test]
    fn relay_depth_split() {
        let paths = build(5, 3);
        let one_relay = paths.iter().filter(|p| p.len() == 3).count();
        let two_relay = paths.iter().filter(|p| p.len() == 4).count();
        // |J| = (r−p)(2r+1) = 2·11 = 22; |K1| = p(2r+1) = 33.
        assert_eq!(one_relay, 22);
        assert_eq!(two_relay, 33);
    }

    #[test]
    fn flow_cross_check() {
        use rbcast_flow::vertex_disjoint_count;
        use rbcast_grid::Neighborhood;
        for r in 1..=4u32 {
            for p in [0, r - 1] {
                let center = enclosing_center(r);
                let ball: Vec<Coord> = Neighborhood::new(center, r, Metric::Linf)
                    .members()
                    .chain(std::iter::once(center))
                    .collect();
                let index: std::collections::HashMap<Coord, usize> =
                    ball.iter().enumerate().map(|(i, &c)| (c, i)).collect();
                let adj: Vec<Vec<usize>> = ball
                    .iter()
                    .map(|&a| {
                        ball.iter()
                            .enumerate()
                            .filter(|&(_, &b)| b != a && Metric::Linf.within(a, b, r))
                            .map(|(j, _)| j)
                            .collect()
                    })
                    .collect();
                let n = Coord::new(-i64::from(r), -i64::from(p));
                let want = r_2r_plus_1(r) as u32;
                let got =
                    vertex_disjoint_count(&adj, index[&n], index[&worst_case_p(r)], Some(want));
                assert!(got >= want, "r={r} p={p}: flow={got} < {want}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "region S1 requires")]
    fn rejects_out_of_range_params() {
        let _ = build(3, 3);
    }
}
