//! The Fig. 4–5 construction: `r(2r+1)` node-disjoint paths between a
//! region-`U` committer `N = (p, q)` and the frontier node
//! `P = (−r, r+1)`, all inside the neighborhood centered at `(0, r+1)`.
//!
//! Path families (with counts summing to `r(2r+1)`):
//!
//! * `N → A → P` — one relay each, `(r−p+1)(r+q)` paths;
//! * `N → B1 → B2 → P` — two relays, `(p−1)(r+q)` paths, `B2 = B1 − (r, 0)`;
//! * `N → C1 → C2 → P` — two relays, `(r−p)(r−q+1)` paths, `C2 = C1 + (−r, r)`;
//! * `N → D1 → D2 → D3 → P` — three relays, `p(r−q+1)` paths, where every
//!   node of `D2` neighbors every node of `D1` (any pairing works) and
//!   `D3 = D2 − (r, 0)`.

use crate::regions::UParams;
use crate::{r_2r_plus_1, worst_case_p};
use rbcast_grid::Coord;

/// The enclosing neighborhood center for the region-`U` construction:
/// `(a, b + r + 1)` — normalised, `(0, r+1)`.
#[must_use]
pub fn enclosing_center(r: u32) -> Coord {
    Coord::new(0, i64::from(r) + 1)
}

/// Builds the full family of `r(2r+1)` node-disjoint `N → P` paths for
/// the committer `N = (p, q)` in region `U`.
///
/// Each returned path lists its nodes in order, starting at `N` and
/// ending at `P`.
///
/// # Panics
///
/// Panics unless `1 ≤ p < q ≤ r` (the definition of region `U`).
#[must_use]
pub fn build(r: u32, p: u32, q: u32) -> Vec<Vec<Coord>> {
    let params = UParams::new(r, p, q);
    let n = Coord::new(params.p, params.q);
    let target = worst_case_p(r);
    let ri = i64::from(r);

    let mut paths = Vec::with_capacity(r_2r_plus_1(r));

    // N -> A -> P
    for a in params.region_a().points() {
        paths.push(vec![n, a, target]);
    }
    // N -> B1 -> B2 -> P, with B2 the (−r, 0) translate of B1.
    for b1 in params.region_b1().points() {
        let b2 = b1 + Coord::new(-ri, 0);
        paths.push(vec![n, b1, b2, target]);
    }
    // N -> C1 -> C2 -> P, with C2 the (−r, +r) translate of C1.
    for c1 in params.region_c1().points() {
        let c2 = c1 + Coord::new(-ri, ri);
        paths.push(vec![n, c1, c2, target]);
    }
    // N -> D1 -> D2 -> D3 -> P. D1–D2 pairing is arbitrary (all pairs are
    // neighbors); we use the row-major zip. D3 is the (−r, 0) translate
    // of D2.
    let d1: Vec<Coord> = params.region_d1().points().collect();
    let d2: Vec<Coord> = params.region_d2().points().collect();
    debug_assert_eq!(d1.len(), d2.len());
    for (d1n, d2n) in d1.into_iter().zip(d2) {
        let d3n = d2n + Coord::new(-ri, 0);
        paths.push(vec![n, d1n, d2n, d3n, target]);
    }

    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_family;
    use rbcast_grid::Metric;

    #[test]
    fn count_is_r_2r_plus_1() {
        for r in 2..=9u32 {
            for p in 1..r {
                for q in (p + 1)..=r {
                    assert_eq!(build(r, p, q).len(), r_2r_plus_1(r), "r={r} p={p} q={q}");
                }
            }
        }
    }

    #[test]
    fn family_verifies_for_all_parameters() {
        for r in 2..=8u32 {
            for p in 1..r {
                for q in (p + 1)..=r {
                    let paths = build(r, p, q);
                    let n = Coord::new(i64::from(p), i64::from(q));
                    let result = verify_family(
                        &paths,
                        n,
                        worst_case_p(r),
                        r,
                        Metric::Linf,
                        enclosing_center(r),
                        3,
                    );
                    assert_eq!(result, Ok(()), "r={r} p={p} q={q}");
                }
            }
        }
    }

    #[test]
    fn relay_depth_matches_family() {
        // A-paths have 1 relay, B/C-paths 2, D-paths 3 — all within the
        // protocol's 4-hop HEARD propagation.
        let paths = build(5, 2, 4);
        let mut by_len = std::collections::BTreeMap::new();
        for p in &paths {
            *by_len.entry(p.len() - 2).or_insert(0usize) += 1;
        }
        let u = UParams::new(5, 2, 4);
        assert_eq!(by_len.get(&1).copied().unwrap_or(0), u.region_a().len());
        assert_eq!(
            by_len.get(&2).copied().unwrap_or(0),
            u.region_b1().len() + u.region_c1().len()
        );
        assert_eq!(by_len.get(&3).copied().unwrap_or(0), u.region_d1().len());
    }

    #[test]
    fn flow_cross_check_small_radii() {
        // Independent Menger verification: the lattice graph restricted to
        // the enclosing closed ball admits at least r(2r+1) vertex-
        // disjoint N–P paths.
        use rbcast_flow::vertex_disjoint_count;
        use rbcast_grid::Neighborhood;
        for r in 2..=4u32 {
            for (p, q) in [(1, 2), (1, r), (r - 1, r)] {
                if p >= q || q > r || p < 1 {
                    continue;
                }
                let center = enclosing_center(r);
                let ball: Vec<Coord> = Neighborhood::new(center, r, Metric::Linf)
                    .members()
                    .chain(std::iter::once(center))
                    .collect();
                let index: std::collections::HashMap<Coord, usize> =
                    ball.iter().enumerate().map(|(i, &c)| (c, i)).collect();
                let adj: Vec<Vec<usize>> = ball
                    .iter()
                    .map(|&a| {
                        ball.iter()
                            .enumerate()
                            .filter(|&(_, &b)| b != a && Metric::Linf.within(a, b, r))
                            .map(|(j, _)| j)
                            .collect()
                    })
                    .collect();
                let n = Coord::new(i64::from(p), i64::from(q));
                let s = index[&n];
                let t = index[&worst_case_p(r)];
                let want = r_2r_plus_1(r) as u32;
                let got = vertex_disjoint_count(&adj, s, t, Some(want));
                assert!(got >= want, "r={r} p={p} q={q}: flow={got} < {want}");
            }
        }
    }

    #[test]
    fn paths_start_and_end_correctly() {
        let paths = build(3, 1, 3);
        for path in &paths {
            assert_eq!(path[0], Coord::new(1, 3));
            assert_eq!(*path.last().unwrap(), worst_case_p(3));
        }
    }

    #[test]
    #[should_panic(expected = "region U requires")]
    fn rejects_out_of_range_params() {
        let _ = build(3, 0, 2);
    }
}
