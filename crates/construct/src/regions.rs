//! Table I — spatial extents of regions `A`, `B1`, `B2`, `C1`, `C2`,
//! `D1`, `D2`, `D3`, `J`, `K1`, `K2`.
//!
//! The rectangles are parameterised exactly as in the paper, with the
//! neighborhood center normalised to `(a, b) = (0, 0)`:
//!
//! * regions `A`–`D3` serve a committer `N = (p, q)` in region `U`
//!   (`1 ≤ p < q ≤ r`), building paths to `P = (−r, r+1)`;
//! * regions `J`, `K1`, `K2` serve a committer `N = (−r, −p)` in region
//!   `S1` (`0 ≤ p ≤ r−1`).

use rbcast_grid::Rect;

/// Parameters of a region-`U` committer: `N = (p, q)` with
/// `1 ≤ p < q ≤ r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UParams {
    /// Transmission radius.
    pub r: i64,
    /// Committer x-offset, `1 ≤ p < q`.
    pub p: i64,
    /// Committer y-offset, `p < q ≤ r`.
    pub q: i64,
}

impl UParams {
    /// Validates and builds the parameter triple.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ p < q ≤ r`.
    #[must_use]
    pub fn new(r: u32, p: u32, q: u32) -> Self {
        assert!(
            1 <= p && p < q && q <= r,
            "region U requires 1 ≤ p < q ≤ r (got r={r}, p={p}, q={q})"
        );
        UParams {
            r: i64::from(r),
            p: i64::from(p),
            q: i64::from(q),
        }
    }

    /// Region `A`: common neighbors of `N` and `P`;
    /// `{(x,y) | p−r ≤ x ≤ 0, 1 ≤ y ≤ q+r}` — `(r−p+1)(r+q)` nodes.
    #[must_use]
    pub fn region_a(&self) -> Rect {
        Rect::new(self.p - self.r, 0, 1, self.q + self.r)
    }

    /// Region `B1 ⊂ nbd(N)`: `{(x,y) | 1 ≤ x ≤ p−1, 1 ≤ y ≤ q+r}` —
    /// `(p−1)(r+q)` nodes.
    #[must_use]
    pub fn region_b1(&self) -> Rect {
        Rect::new(1, self.p - 1, 1, self.q + self.r)
    }

    /// Region `B2 ⊂ nbd(P)`: `B1` translated left by `r`.
    #[must_use]
    pub fn region_b2(&self) -> Rect {
        Rect::new(1 - self.r, self.p - 1 - self.r, 1, self.q + self.r)
    }

    /// Region `C1 ⊂ nbd(N)`: `{(x,y) | p+1 ≤ x ≤ r, q+1 ≤ y ≤ r+1}` —
    /// `(r−p)(r−q+1)` nodes.
    #[must_use]
    pub fn region_c1(&self) -> Rect {
        Rect::new(self.p + 1, self.r, self.q + 1, self.r + 1)
    }

    /// Region `C2 ⊂ nbd(P)`: `C1` translated by `(−r, +r)`.
    #[must_use]
    pub fn region_c2(&self) -> Rect {
        Rect::new(self.p + 1 - self.r, 0, self.q + 1 + self.r, 1 + 2 * self.r)
    }

    /// Region `D1 ⊂ nbd(N)`:
    /// `{(x,y) | p ≤ x ≤ p+r−q, r+q−p+1 ≤ y ≤ r+q}` — `p(r−q+1)` nodes.
    #[must_use]
    pub fn region_d1(&self) -> Rect {
        Rect::new(
            self.p,
            self.p + self.r - self.q,
            self.r + self.q - self.p + 1,
            self.r + self.q,
        )
    }

    /// Region `D2`: `{(x,y) | 1 ≤ x ≤ p, 1+r+q ≤ y ≤ 1+2r}` —
    /// `p(r−q+1)` nodes; every node of `D2` neighbors every node of `D1`.
    #[must_use]
    pub fn region_d2(&self) -> Rect {
        Rect::new(1, self.p, 1 + self.r + self.q, 1 + 2 * self.r)
    }

    /// Region `D3 ⊂ nbd(P)`: `D2` translated left by `r`.
    #[must_use]
    pub fn region_d3(&self) -> Rect {
        Rect::new(
            1 - self.r,
            self.p - self.r,
            1 + self.r + self.q,
            1 + 2 * self.r,
        )
    }

    /// The path-count identity of Fig. 5:
    /// `|A| + |B1| + |C1| + |D1| = r(2r+1)`.
    #[must_use]
    pub fn total_paths(&self) -> usize {
        self.region_a().len()
            + self.region_b1().len()
            + self.region_c1().len()
            + self.region_d1().len()
    }
}

/// Parameters of a region-`S1` committer: `N = (−r, −p)` with
/// `0 ≤ p ≤ r−1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S1Params {
    /// Transmission radius.
    pub r: i64,
    /// Committer y-offset (downward), `0 ≤ p ≤ r−1`.
    pub p: i64,
}

impl S1Params {
    /// Validates and builds the parameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless `p ≤ r−1`.
    #[must_use]
    pub fn new(r: u32, p: u32) -> Self {
        assert!(p < r, "region S1 requires 0 ≤ p ≤ r−1 (got r={r}, p={p})");
        S1Params {
            r: i64::from(r),
            p: i64::from(p),
        }
    }

    /// Region `J`: common neighbors of `N` and `P`;
    /// `{(x,y) | −2r ≤ x ≤ 0, 1 ≤ y ≤ r−p}` — `(r−p)(2r+1)` nodes.
    #[must_use]
    pub fn region_j(&self) -> Rect {
        Rect::new(-2 * self.r, 0, 1, self.r - self.p)
    }

    /// Region `K1 ⊂ nbd(N)`: `{(x,y) | −2r ≤ x ≤ 0, 1−p ≤ y ≤ 0}` —
    /// `p(2r+1)` nodes.
    #[must_use]
    pub fn region_k1(&self) -> Rect {
        Rect::new(-2 * self.r, 0, 1 - self.p, 0)
    }

    /// Region `K2 ⊂ nbd(P)`: `K1` translated up by `r`.
    #[must_use]
    pub fn region_k2(&self) -> Rect {
        Rect::new(-2 * self.r, 0, 1 - self.p + self.r, self.r)
    }

    /// `|J| + |K1| = r(2r+1)`.
    #[must_use]
    pub fn total_paths(&self) -> usize {
        self.region_j().len() + self.region_k1().len()
    }
}

/// One row of the reproduced Table I: region name and its inclusive
/// extents (relative to `(a, b) = (0, 0)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Region name as printed in the paper ("A", "B1", …).
    pub region: &'static str,
    /// The region rectangle.
    pub rect: Rect,
    /// Node count.
    pub count: usize,
}

/// Reproduces Table I for given `(r, p, q)` (regions `A`–`D3`) and the
/// `S1` rows `J`, `K1`, `K2` for offset `p_s1`.
#[must_use]
pub fn table_one(r: u32, p: u32, q: u32, p_s1: u32) -> Vec<TableRow> {
    let u = UParams::new(r, p, q);
    let s = S1Params::new(r, p_s1);
    let mut rows = vec![
        TableRow {
            region: "A",
            rect: u.region_a(),
            count: u.region_a().len(),
        },
        TableRow {
            region: "B1",
            rect: u.region_b1(),
            count: u.region_b1().len(),
        },
        TableRow {
            region: "B2",
            rect: u.region_b2(),
            count: u.region_b2().len(),
        },
        TableRow {
            region: "C1",
            rect: u.region_c1(),
            count: u.region_c1().len(),
        },
        TableRow {
            region: "C2",
            rect: u.region_c2(),
            count: u.region_c2().len(),
        },
        TableRow {
            region: "D1",
            rect: u.region_d1(),
            count: u.region_d1().len(),
        },
        TableRow {
            region: "D2",
            rect: u.region_d2(),
            count: u.region_d2().len(),
        },
        TableRow {
            region: "D3",
            rect: u.region_d3(),
            count: u.region_d3().len(),
        },
    ];
    rows.push(TableRow {
        region: "J",
        rect: s.region_j(),
        count: s.region_j().len(),
    });
    rows.push(TableRow {
        region: "K1",
        rect: s.region_k1(),
        count: s.region_k1().len(),
    });
    rows.push(TableRow {
        region: "K2",
        rect: s.region_k2(),
        count: s.region_k2().len(),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cardinality_formulas_hold() {
        for r in 2..=10u32 {
            for p in 1..r {
                for q in (p + 1)..=r {
                    let u = UParams::new(r, p, q);
                    let (ri, pi, qi) = (r as usize, p as usize, q as usize);
                    assert_eq!(u.region_a().len(), (ri - pi + 1) * (ri + qi));
                    assert_eq!(u.region_b1().len(), (pi - 1) * (ri + qi));
                    assert_eq!(u.region_b1().len(), u.region_b2().len());
                    assert_eq!(u.region_c1().len(), (ri - pi) * (ri - qi + 1));
                    assert_eq!(u.region_c1().len(), u.region_c2().len());
                    assert_eq!(u.region_d1().len(), pi * (ri - qi + 1));
                    assert_eq!(u.region_d1().len(), u.region_d2().len());
                    assert_eq!(u.region_d1().len(), u.region_d3().len());
                }
            }
        }
    }

    #[test]
    fn path_count_identity_u() {
        // |A| + |B1| + |C1| + |D1| = r(2r+1) for all valid (p, q).
        for r in 2..=12u32 {
            for p in 1..r {
                for q in (p + 1)..=r {
                    let u = UParams::new(r, p, q);
                    assert_eq!(u.total_paths(), crate::r_2r_plus_1(r), "r={r} p={p} q={q}");
                }
            }
        }
    }

    #[test]
    fn path_count_identity_s1() {
        for r in 1..=12u32 {
            for p in 0..r {
                let s = S1Params::new(r, p);
                assert_eq!(s.total_paths(), crate::r_2r_plus_1(r), "r={r} p={p}");
            }
        }
    }

    #[test]
    fn translations_match_paper() {
        let u = UParams::new(5, 2, 4);
        use rbcast_grid::Coord;
        assert_eq!(u.region_b2(), u.region_b1().translate(Coord::new(-5, 0)));
        assert_eq!(u.region_c2(), u.region_c1().translate(Coord::new(-5, 5)));
        assert_eq!(u.region_d3(), u.region_d2().translate(Coord::new(-5, 0)));
    }

    #[test]
    fn k2_is_k1_translated_up_by_r() {
        use rbcast_grid::Coord;
        for p in 0..4u32 {
            let s = S1Params::new(4, p);
            assert_eq!(s.region_k2(), s.region_k1().translate(Coord::new(0, 4)));
        }
    }

    #[test]
    #[should_panic(expected = "region U requires")]
    fn invalid_u_params_panic() {
        let _ = UParams::new(3, 2, 2); // p must be < q
    }

    #[test]
    #[should_panic(expected = "region S1 requires")]
    fn invalid_s1_params_panic() {
        let _ = S1Params::new(3, 3);
    }

    #[test]
    fn table_one_shape() {
        let rows = table_one(4, 1, 2, 0);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].region, "A");
        assert!(rows.iter().all(|row| row.count == row.rect.len()));
    }

    #[test]
    fn d1_d2_mutual_visibility() {
        // "each node in D2 is a neighbor of each node in D1" — maximum
        // distance between any pair is ≤ r.
        use rbcast_grid::Metric;
        for r in 2..=8u32 {
            for p in 1..r {
                for q in (p + 1)..=r {
                    let u = UParams::new(r, p, q);
                    for d1 in u.region_d1().points() {
                        for d2 in u.region_d2().points() {
                            assert!(
                                Metric::Linf.within(d1, d2, r),
                                "r={r} p={p} q={q}: {d1} !~ {d2}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_degenerate_regions() {
        // p = 1 makes B1/B2 empty; q = r makes C1 width... C1 has
        // (r−p)(r−q+1): q = r gives one row, still non-empty unless p = r.
        let u = UParams::new(3, 1, 2);
        assert!(u.region_b1().is_empty());
        assert!(u.region_b2().is_empty());
        // p = 0 (S1) makes K1/K2 empty.
        let s = S1Params::new(3, 0);
        assert!(s.region_k1().is_empty());
        assert!(s.region_k2().is_empty());
    }

    proptest! {
        #[test]
        fn regions_pairwise_disjoint(r in 2u32..9) {
            // exhaustively inside proptest: choose p, q via indices
            for p in 1..r {
                for q in (p + 1)..=r {
                    let u = UParams::new(r, p, q);
                    let regions = [
                        u.region_a(), u.region_b1(), u.region_b2(),
                        u.region_c1(), u.region_c2(), u.region_d1(),
                        u.region_d2(), u.region_d3(),
                    ];
                    for (i, a) in regions.iter().enumerate() {
                        for b in &regions[i + 1..] {
                            prop_assert!(
                                !a.overlaps(b),
                                "r={} p={} q={}: {} overlaps {}", r, p, q, a, b
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn s1_regions_pairwise_disjoint(r in 1u32..10) {
            for p in 0..r {
                let s = S1Params::new(r, p);
                let regions = [s.region_j(), s.region_k1(), s.region_k2()];
                for (i, a) in regions.iter().enumerate() {
                    for b in &regions[i + 1..] {
                        prop_assert!(!a.overlaps(b));
                    }
                }
            }
        }
    }
}
