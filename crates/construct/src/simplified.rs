//! Connectivity condition of the simplified protocol (§VI-B).
//!
//! The §VI-B condition: given that all honest nodes of `nbd(a,b)` have
//! committed, a frontier node `P` must be connected to `2t+1` committers
//! `N ∈ nbd(a,b)` by *one path each, of at most one relay*, such that the
//! paths are collectively node-disjoint and all committers and relays lie
//! inside one single neighborhood.
//!
//! For the worst-case corner `P = (−r, r+1)` an explicit witness exists
//! with the enclosing neighborhood centered at `(0, r+1)`:
//!
//! * committers `{(x, y) | −r ≤ x ≤ 0, 1 ≤ y ≤ r}` (region `R`) are heard
//!   directly — `r(r+1)` zero-relay paths;
//! * committers `{(x, y) | 1 ≤ x ≤ r, 1 ≤ y ≤ r}` each use the relay
//!   `(x−r, y+r)` — a *translation by `(−r, +r)`*, giving `r²` one-relay
//!   paths with pairwise distinct relays that live in the top band
//!   `y ≥ r+1` of the ball (so they never collide with committers).
//!
//! Total: `r(2r+1)` collectively disjoint ≤1-relay paths — enough for
//! `2t+1` at the exact threshold `t < ½·r(2r+1)`. This module builds the
//! witness, verifies it, and cross-checks optimality with a max-flow
//! formulation over every frontier node.

use crate::{r_2r_plus_1, worst_case_p};
use rbcast_flow::FlowNetwork;
use rbcast_grid::{Coord, Metric};
use std::collections::HashMap;

/// Builds the explicit §VI-B witness for the worst-case corner `P`:
/// `r(2r+1)` paths `[committer, P]` or `[committer, relay, P]`.
#[must_use]
pub fn witness_paths(r: u32) -> Vec<Vec<Coord>> {
    let ri = i64::from(r);
    let p = worst_case_p(r);
    let mut paths = Vec::with_capacity(r_2r_plus_1(r));
    // Region R: direct.
    for y in 1..=ri {
        for x in -ri..=0 {
            paths.push(vec![Coord::new(x, y), p]);
        }
    }
    // Right half: relay by translation (−r, +r).
    for y in 1..=ri {
        for x in 1..=ri {
            let committer = Coord::new(x, y);
            let relay = Coord::new(x - ri, y + ri);
            paths.push(vec![committer, relay, p]);
        }
    }
    paths
}

/// Verifies the witness family: committers in `nbd(0,0)`, hops within
/// `r`, committers and relays inside the ball at `(0, r+1)`, and
/// collective disjointness. Returns the number of valid paths.
#[must_use]
pub fn verify_witness(r: u32) -> Option<usize> {
    let paths = witness_paths(r);
    let p = worst_case_p(r);
    let center = Coord::new(0, i64::from(r) + 1);
    let mut used = std::collections::HashSet::new();
    for path in &paths {
        let committer = *path.first()?;
        // committer in nbd(0,0), path ends at P
        if !Metric::Linf.within(Coord::ORIGIN, committer, r) || *path.last()? != p {
            return None;
        }
        // hops within r
        for w in path.windows(2) {
            if !Metric::Linf.within(w[0], w[1], r) {
                return None;
            }
        }
        // committer + relays inside the enclosing ball, collectively
        // disjoint (P itself is exempt per §VI-B)
        for &node in &path[..path.len() - 1] {
            if !Metric::Linf.within(center, node, r) || !used.insert(node) {
                return None;
            }
        }
    }
    Some(paths.len())
}

/// Maximum number of collectively node-disjoint ≤1-relay paths from
/// committers of `ball(0, r)` to `p`, with committers and relays confined
/// to `ball(center, r)` — solved exactly as a max-flow.
///
/// Encoding: every ball node (except `p`) gets a unit capacity arc
/// `v_in → v_out`; `source → v_in` for committers; `v_out → sink` for
/// nodes that hear `p`; and a relay edge `c_out → z_in` for every
/// committer `c` and potential relay `z` (adjacent to both `c` and `p`).
/// A flow path may in principle traverse several relays, but since every
/// relay edge targets a node adjacent to `p`, truncating such a path at
/// its *first* relay yields a valid ≤1-relay path using a subset of its
/// vertices — so the max-flow value equals the true maximum.
#[must_use]
pub fn max_disjoint_paths(r: u32, p: Coord, center: Coord) -> u32 {
    let ri = i64::from(r);
    // nodes of the enclosing closed ball
    let mut ball: Vec<Coord> = Vec::new();
    for dy in -ri..=ri {
        for dx in -ri..=ri {
            let c = center + Coord::new(dx, dy);
            if c != p {
                ball.push(c);
            }
        }
    }
    let index: HashMap<Coord, usize> = ball.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let n = ball.len();
    // layout: node v has in = 2v, out = 2v+1; source = 2n, sink = 2n+1
    let mut net = FlowNetwork::new(2 * n + 2);
    let (source, sink) = (2 * n, 2 * n + 1);
    let committer = |c: Coord| Metric::Linf.within(Coord::ORIGIN, c, r);
    let hears_p = |c: Coord| Metric::Linf.within(p, c, r);
    for (i, &c) in ball.iter().enumerate() {
        net.add_edge(2 * i, 2 * i + 1, 1); // shared node capacity
        if committer(c) {
            net.add_edge(source, 2 * i, 1);
        }
        if hears_p(c) {
            net.add_edge(2 * i + 1, sink, 1);
        }
    }
    for (i, &c) in ball.iter().enumerate() {
        if !committer(c) {
            continue;
        }
        for &z in &ball {
            if z != c && hears_p(z) && Metric::Linf.within(c, z, r) {
                net.add_edge(2 * i + 1, 2 * index[&z], 1);
            }
        }
    }
    net.max_flow(source, sink)
}

/// Checks the §VI-B claim for every frontier node of `pnbd(0,0)`:
/// some enclosing ball within distance `r+1` of `P` admits at least
/// `r(2r+1)` collectively disjoint ≤1-relay paths.
#[must_use]
pub fn frontier_condition_holds(r: u32) -> bool {
    let need = r_2r_plus_1(r) as u32;
    crate::arbitrary_p::frontier_nodes(r).into_iter().all(|p| {
        let ri = i64::from(r) + 1;
        // candidate centers within r+1 of P
        for dy in -ri..=ri {
            for dx in -ri..=ri {
                let center = p + Coord::new(dx, dy);
                if max_disjoint_paths(r, p, center) >= need {
                    return true;
                }
            }
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_has_r_2r_plus_1_paths() {
        for r in 1..=8u32 {
            assert_eq!(verify_witness(r), Some(r_2r_plus_1(r)), "r={r}");
        }
    }

    #[test]
    fn witness_relays_live_in_the_top_band() {
        let r = 4;
        for path in witness_paths(r) {
            if path.len() == 3 {
                let relay = path[1];
                assert!(relay.y > i64::from(r), "relay {relay} below band");
            }
        }
    }

    #[test]
    fn flow_matches_witness_at_the_corner() {
        for r in 1..=4u32 {
            let p = worst_case_p(r);
            let center = Coord::new(0, i64::from(r) + 1);
            let flow = max_disjoint_paths(r, p, center);
            assert!(
                flow >= r_2r_plus_1(r) as u32,
                "r={r}: flow {flow} < {}",
                r_2r_plus_1(r)
            );
        }
    }

    #[test]
    fn frontier_condition_small_radii() {
        for r in 1..=2 {
            assert!(frontier_condition_holds(r), "r={r}");
        }
    }

    #[test]
    fn flow_bounded_by_ball_population() {
        let r = 3;
        let p = worst_case_p(r);
        let center = Coord::new(0, 4);
        let flow = max_disjoint_paths(r, p, center);
        assert!(flow as usize <= (2 * r as usize + 1).pow(2));
    }
}
