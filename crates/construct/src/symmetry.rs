//! Axial symmetry argument for region `S2` (the axis `OO′` of Fig. 3/7).
//!
//! The paper handles region `S2` by symmetry: reflection across the
//! anti-diagonal through `P = (−r, r+1)` maps region `U` onto region `S2`
//! while fixing `P`, so the Fig. 5 construction transfers verbatim. The
//! reflection is `(x, y) ↦ (1 − y, 1 − x)`.

use crate::paths_u;
use rbcast_grid::Coord;

/// The reflection across the anti-diagonal axis through `P`:
/// `(x, y) ↦ (1 − y, 1 − x)`. It is an involution fixing `P`.
#[must_use]
pub fn reflect(c: Coord) -> Coord {
    Coord::new(1 - c.y, 1 - c.x)
}

/// The enclosing neighborhood center for the region-`S2` construction:
/// the reflection of the region-`U` center `(0, r+1)`, i.e. `(−r, 1)`.
#[must_use]
pub fn enclosing_center(r: u32) -> Coord {
    reflect(paths_u::enclosing_center(r))
}

/// Builds the `r(2r+1)` node-disjoint paths from the region-`S2`
/// committer `N = (−q′, −p′)` (with `0 ≤ p′ < q′ ≤ r−1`) to `P`, by
/// reflecting the region-`U` construction for `(p, q) = (p′+1, q′+1)`.
///
/// # Panics
///
/// Panics unless `0 ≤ p′ < q′ ≤ r−1`.
#[must_use]
pub fn build(r: u32, p_prime: u32, q_prime: u32) -> Vec<Vec<Coord>> {
    assert!(
        p_prime < q_prime && q_prime < r,
        "region S2 requires 0 ≤ p' < q' ≤ r−1 (got r={r}, p'={p_prime}, q'={q_prime})"
    );
    paths_u::build(r, p_prime + 1, q_prime + 1)
        .into_iter()
        .map(|path| path.into_iter().map(reflect).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::region_s2;
    use crate::verify::verify_family;
    use crate::{r_2r_plus_1, worst_case_p};
    use rbcast_grid::Metric;

    #[test]
    fn reflection_is_involution_fixing_p() {
        for r in 1..=6u32 {
            let p = worst_case_p(r);
            assert_eq!(reflect(p), p, "P not fixed for r={r}");
        }
        for x in -5..5 {
            for y in -5..5 {
                let c = Coord::new(x, y);
                assert_eq!(reflect(reflect(c)), c);
            }
        }
    }

    #[test]
    fn reflection_preserves_linf_distance() {
        let pairs = [
            (Coord::new(0, 0), Coord::new(3, -2)),
            (Coord::new(-1, 4), Coord::new(2, 2)),
        ];
        for (a, b) in pairs {
            assert_eq!(a.linf_dist(b), reflect(a).linf_dist(reflect(b)));
        }
    }

    #[test]
    fn u_maps_onto_s2() {
        for r in 2..=8u32 {
            let mapped: std::collections::BTreeSet<Coord> = crate::corner::region_u(r)
                .into_iter()
                .map(reflect)
                .collect();
            let s2: std::collections::BTreeSet<Coord> = region_s2(r).into_iter().collect();
            assert_eq!(mapped, s2, "r={r}");
        }
    }

    #[test]
    fn reflected_families_verify() {
        for r in 2..=7u32 {
            for pp in 0..(r - 1) {
                for qp in (pp + 1)..r {
                    let n = Coord::new(-i64::from(qp), -i64::from(pp));
                    let paths = build(r, pp, qp);
                    assert_eq!(paths.len(), r_2r_plus_1(r));
                    let result = verify_family(
                        &paths,
                        n,
                        worst_case_p(r),
                        r,
                        Metric::Linf,
                        enclosing_center(r),
                        3,
                    );
                    assert_eq!(result, Ok(()), "r={r} p'={pp} q'={qp}");
                }
            }
        }
    }

    #[test]
    fn enclosing_center_is_reflected_u_center() {
        assert_eq!(enclosing_center(3), Coord::new(-3, 1));
    }

    #[test]
    #[should_panic(expected = "region S2 requires")]
    fn rejects_out_of_range() {
        let _ = build(3, 1, 3);
    }
}
