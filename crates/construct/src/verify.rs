//! Reusable verifier for constructed node-disjoint path families.

use rbcast_grid::{Coord, Metric};
use std::collections::HashSet;

/// Why a path family failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathDefect {
    /// A path is shorter than the two endpoints.
    TooShort,
    /// A path does not start at the committer.
    WrongStart(Coord),
    /// A path does not end at the target.
    WrongEnd(Coord),
    /// Two consecutive path nodes are farther apart than `r`.
    BrokenHop(Coord, Coord),
    /// A node appears on two different paths (or twice on one).
    SharedNode(Coord),
    /// A path node lies outside the enclosing neighborhood.
    OutsideNeighborhood(Coord),
    /// A path has more intermediate relays than the protocol propagates.
    TooManyRelays(usize),
}

impl std::fmt::Display for PathDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathDefect::TooShort => write!(f, "path shorter than two nodes"),
            PathDefect::WrongStart(c) => write!(f, "path starts at {c}, not the committer"),
            PathDefect::WrongEnd(c) => write!(f, "path ends at {c}, not the target"),
            PathDefect::BrokenHop(a, b) => write!(f, "hop {a} -> {b} exceeds the radius"),
            PathDefect::SharedNode(c) => write!(f, "node {c} appears on two paths"),
            PathDefect::OutsideNeighborhood(c) => {
                write!(f, "node {c} lies outside the enclosing neighborhood")
            }
            PathDefect::TooManyRelays(n) => write!(f, "{n} relays exceed the protocol bound"),
        }
    }
}

/// Verifies that `paths` is a family of node-disjoint `from → to` paths,
/// every hop within radius `r` (under `metric`), every node inside the
/// closed ball of radius `r` around `enclosing_center`, and no path using
/// more than `max_relays` intermediates.
///
/// Disjointness is *internal*: the shared endpoints `from`/`to` are
/// exempt, matching the paper's condition.
///
/// # Errors
///
/// Returns the first [`PathDefect`] found.
pub fn verify_family(
    paths: &[Vec<Coord>],
    from: Coord,
    to: Coord,
    r: u32,
    metric: Metric,
    enclosing_center: Coord,
    max_relays: usize,
) -> Result<(), PathDefect> {
    let mut used: HashSet<Coord> = HashSet::new();
    for path in paths {
        if path.len() < 2 {
            return Err(PathDefect::TooShort);
        }
        let first = *path.first().expect("len >= 2");
        let last = *path.last().expect("len >= 2");
        if first != from {
            return Err(PathDefect::WrongStart(first));
        }
        if last != to {
            return Err(PathDefect::WrongEnd(last));
        }
        let relays = &path[1..path.len() - 1];
        if relays.len() > max_relays {
            return Err(PathDefect::TooManyRelays(relays.len()));
        }
        for w in path.windows(2) {
            if !metric.within(w[0], w[1], r) {
                return Err(PathDefect::BrokenHop(w[0], w[1]));
            }
        }
        for &node in relays {
            if node == from || node == to {
                return Err(PathDefect::SharedNode(node));
            }
            if !used.insert(node) {
                return Err(PathDefect::SharedNode(node));
            }
        }
        // Every node of the path (endpoints included) must lie in the
        // closed ball around the enclosing center.
        for &node in path.iter() {
            if !metric.within(enclosing_center, node, r) {
                return Err(PathDefect::OutsideNeighborhood(node));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i64, y: i64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn accepts_valid_family() {
        let paths = vec![
            vec![c(0, 0), c(1, 0), c(2, 0)],
            vec![c(0, 0), c(1, 1), c(2, 0)],
        ];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(2, 0), 1, Metric::Linf, c(1, 0), 3),
            Ok(())
        );
    }

    #[test]
    fn rejects_wrong_endpoints() {
        let paths = vec![vec![c(1, 0), c(2, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(2, 0), 1, Metric::Linf, c(1, 0), 3),
            Err(PathDefect::WrongStart(c(1, 0)))
        );
        let paths = vec![vec![c(0, 0), c(1, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(2, 0), 1, Metric::Linf, c(1, 0), 3),
            Err(PathDefect::WrongEnd(c(1, 0)))
        );
    }

    #[test]
    fn rejects_broken_hop() {
        let paths = vec![vec![c(0, 0), c(3, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(3, 0), 1, Metric::Linf, c(1, 0), 3),
            Err(PathDefect::BrokenHop(c(0, 0), c(3, 0)))
        );
    }

    #[test]
    fn rejects_shared_relay() {
        let paths = vec![
            vec![c(0, 0), c(1, 0), c(2, 0)],
            vec![c(0, 0), c(1, 0), c(2, 0)],
        ];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(2, 0), 1, Metric::Linf, c(1, 0), 3),
            Err(PathDefect::SharedNode(c(1, 0)))
        );
    }

    #[test]
    fn rejects_outside_neighborhood() {
        let paths = vec![vec![c(0, 0), c(1, 0), c(2, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(2, 0), 1, Metric::Linf, c(10, 10), 3),
            Err(PathDefect::OutsideNeighborhood(c(0, 0)))
        );
    }

    #[test]
    fn rejects_relay_equal_to_endpoint() {
        let paths = vec![vec![c(0, 0), c(0, 0), c(1, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(1, 0), 1, Metric::Linf, c(0, 0), 3),
            Err(PathDefect::SharedNode(c(0, 0)))
        );
    }

    #[test]
    fn rejects_too_many_relays() {
        let paths = vec![vec![c(0, 0), c(1, 0), c(2, 0), c(3, 0), c(4, 0), c(5, 0)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(5, 0), 5, Metric::Linf, c(2, 0), 3),
            Err(PathDefect::TooManyRelays(4))
        );
    }

    #[test]
    fn direct_edge_is_a_valid_path() {
        let paths = vec![vec![c(0, 0), c(1, 1)]];
        assert_eq!(
            verify_family(&paths, c(0, 0), c(1, 1), 2, Metric::Linf, c(0, 0), 0),
            Ok(())
        );
    }

    #[test]
    fn defect_display_is_informative() {
        let d = PathDefect::BrokenHop(c(0, 0), c(5, 5));
        assert!(d.to_string().contains("exceeds the radius"));
    }
}
