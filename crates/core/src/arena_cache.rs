//! Process-wide cache of shared topology arenas.
//!
//! A sweep runs hundreds of experiments over a handful of distinct
//! geometries. Each run needs a [`NeighborTable`], and building one is
//! the single most expensive part of network construction — so tables
//! are interned here, keyed by `(torus dims, r, metric)`, and handed out
//! as `Arc`s. The registry holds only [`Weak`] references: it never
//! keeps a table alive by itself. Callers that want "built once per
//! sweep" semantics (the engine does) hold a strong guard for the
//! sweep's duration.
//!
//! Sharing is sound because a [`NeighborTable`] is immutable after
//! construction and fully determined by its key — two experiments with
//! the same key would build byte-identical tables, so handing both the
//! same `Arc` cannot change any outcome or trace hash.

use rbcast_grid::{Metric, NeighborTable, Torus};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};

// Cache traffic is reported through the metrics registry as
// `arena/hits` / `arena/misses` (diagnostics only — totals never feed
// anything hashed or journaled).

/// `(width, height, radius, metric tag)` — `Metric` is not `Ord`, so it
/// is encoded as a stable discriminant.
type Key = (u32, u32, u32, u8);

fn metric_tag(metric: Metric) -> u8 {
    match metric {
        Metric::Linf => 0,
        Metric::L2 => 1,
    }
}

fn registry() -> &'static Mutex<BTreeMap<Key, Weak<NeighborTable>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<Key, Weak<NeighborTable>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The shared arena for `(torus, r, metric)`: returns the live cached
/// table if one exists, otherwise builds, caches, and returns it.
///
/// # Panics
///
/// Panics if the torus cannot host the radius (see
/// [`NeighborTable::build`]).
pub(crate) fn shared(torus: &Torus, r: u32, metric: Metric) -> Arc<NeighborTable> {
    static HITS: OnceLock<crate::obs::Counter> = OnceLock::new();
    static MISSES: OnceLock<crate::obs::Counter> = OnceLock::new();
    let key = (torus.width(), torus.height(), r, metric_tag(metric));
    // Tables are immutable, so a panic while holding the lock cannot
    // leave entries half-written — recover rather than propagate.
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(table) = map.get(&key).and_then(Weak::upgrade) {
        HITS.get_or_init(|| crate::obs::counter("arena/hits"))
            .incr();
        return table;
    }
    MISSES
        .get_or_init(|| crate::obs::counter("arena/misses"))
        .incr();
    let built = Arc::new(NeighborTable::build(torus, r, metric));
    map.retain(|_, w| w.strong_count() > 0);
    map.insert(key, Arc::downgrade(&built));
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_yields_the_same_table() {
        let torus = Torus::for_radius(1);
        let a = shared(&torus, 1, Metric::Linf);
        let b = shared(&torus, 1, Metric::Linf);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_keys_yield_distinct_tables() {
        let torus = Torus::for_radius(2);
        let a = shared(&torus, 1, Metric::Linf);
        let b = shared(&torus, 2, Metric::Linf);
        let c = shared(&torus, 1, Metric::L2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(b.radius(), 2);
        assert_eq!(c.metric(), Metric::L2);
    }

    #[test]
    fn cache_traffic_is_counted() {
        let hits = crate::obs::counter("arena/hits");
        let misses = crate::obs::counter("arena/misses");
        let (h0, m0) = (hits.get(), misses.get());
        // A geometry no other test uses: the first request must miss,
        // the second (while the first guard is alive) must hit.
        let torus = Torus::new(21, 21);
        let a = shared(&torus, 1, Metric::L2);
        let _b = shared(&torus, 1, Metric::L2);
        drop(a);
        // Counters are process-global and tests run concurrently, so
        // only lower bounds are stable.
        assert!(misses.get() > m0, "first build must count as a miss");
        assert!(hits.get() > h0, "second lookup must count as a hit");
    }

    #[test]
    fn dropped_tables_are_rebuilt_not_leaked() {
        let torus = Torus::new(25, 25);
        let first = shared(&torus, 3, Metric::L2);
        let ptr = Arc::as_ptr(&first);
        drop(first);
        // The weak entry is dead; a fresh request builds a new table.
        let second = shared(&torus, 3, Metric::L2);
        // Can't assert pointer inequality (the allocator may reuse the
        // address) — but the table must be valid and correctly keyed.
        let _ = ptr;
        assert_eq!(second.radius(), 3);
        assert_eq!(second.len(), 625);
    }
}
