//! `rbcast attack` — the adversary-search driver.
//!
//! Runs the pure search machinery of `rbcast-adversary`
//! ([`rbcast_adversary::greedy_cut_seed`] + [`rbcast_adversary::anneal`])
//! against full simulations: each candidate placement is scored by one
//! complete [`Experiment`] run, and the annealing chain walks toward
//! the placement doing the most damage (see
//! [`AttackScore`](rbcast_adversary::AttackScore)).
//!
//! The search sweeps a grid of `(r, t)` *cells* — one independent
//! search per cell, supervised like any other sweep task (panic
//! isolation, deterministic retry, thread-count-invariant ordering).
//! Cell searches checkpoint their annealing state into a JSONL journal
//! (`--journal`), and `--resume` replays the completed prefix and
//! continues the rest; because every proposal draw is pure in
//! `(seed, step)`, a resumed run is byte-identical to a
//! straight-through one.
//!
//! Every cell also evaluates the hand-built strategy library at the
//! same budget, so the report shows the search's margin over the best
//! hand-built adversary — the CI gate requires the found placement to
//! strictly beat it on at least one cell.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::experiment::{Experiment, FaultKind, Outcome, ProtocolKind};
use crate::supervisor::{
    escape_json, parse_flat_json, supervise, JsonValue, Supervised, SupervisorConfig, TaskError,
};
use rbcast_adversary::{
    anneal, initial_state, local_fault_bound, mix, AnnealState, AttackScore, Placement,
    SearchConfig,
};
use rbcast_grid::{Metric, NodeId, Torus};

/// Configuration of one `rbcast attack` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackConfig {
    /// Radii to search; each contributes a column of `(r, t)` cells.
    pub rs: Vec<u32>,
    /// Master seed. Per-cell chains derive from `(seed, cell index)`.
    pub seed: u64,
    /// Annealing steps per cell.
    pub steps: u32,
    /// Worker threads for the cell sweep (does not affect results).
    pub threads: usize,
    /// Protocol under attack.
    pub protocol: ProtocolKind,
    /// Behaviour of the placed faults.
    pub fault_kind: FaultKind,
    /// Distance metric.
    pub metric: Metric,
    /// Checkpoint the annealing state every this many steps (0 = final
    /// checkpoint only).
    pub checkpoint_every: u32,
    /// Checkpoint journal path.
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it.
    pub resume: bool,
}

impl AttackConfig {
    /// The default search: radius 1, indirect-simplified protocol,
    /// liar faults, a modest annealing budget.
    #[must_use]
    pub fn new(seed: u64) -> AttackConfig {
        AttackConfig {
            rs: vec![1],
            seed,
            steps: 120,
            threads: 1,
            protocol: ProtocolKind::IndirectSimplified,
            fault_kind: FaultKind::Liar,
            metric: Metric::Linf,
            checkpoint_every: 20,
            journal: None,
            resume: false,
        }
    }
}

/// One `(r, t)` search cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCell {
    /// Broadcast radius.
    pub r: u32,
    /// Local fault bound the search must respect.
    pub t: usize,
    /// The protocol's proven tolerance at this radius — `t - threshold`
    /// is the cell's margin to the paper's bound.
    pub threshold: usize,
}

/// Result of one cell's search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// The cell searched.
    pub cell: AttackCell,
    /// Worst-found placement (sorted node ids).
    pub found: Vec<NodeId>,
    /// Score of [`CellResult::found`].
    pub found_score: AttackScore,
    /// Name of the best hand-built strategy admissible at this bound.
    pub baseline_name: String,
    /// Score of that strategy.
    pub baseline_score: AttackScore,
    /// Simulations executed for this cell (search + baselines).
    pub evaluations: u64,
    /// Annealing proposals accepted.
    pub accepted: u64,
    /// True when the search state came fully from a resume journal.
    pub resumed: bool,
}

impl CellResult {
    /// True iff the search strictly beat every hand-built strategy on
    /// this cell.
    #[must_use]
    pub fn beats_baseline(&self) -> bool {
        self.found_score > self.baseline_score
    }
}

/// Report of a full attack sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// Per-cell results, in cell order.
    pub cells: Vec<CellResult>,
}

impl AttackReport {
    /// The CI gate: the search beat the best hand-built strategy on at
    /// least one cell.
    #[must_use]
    pub fn gate_passed(&self) -> bool {
        self.cells.iter().any(CellResult::beats_baseline)
    }
}

/// Why an attack run could not complete.
#[derive(Debug)]
pub enum AttackError {
    /// Journal I/O failed.
    Io(std::io::Error),
    /// A resume journal belongs to a differently-configured search.
    JournalMismatch {
        /// Fingerprint of the requested configuration.
        expected: u64,
        /// Fingerprint stored in the journal.
        found: u64,
    },
    /// A journal line failed to parse.
    Journal(String),
    /// A cell search failed terminally under supervision.
    Search(String),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::Io(e) => write!(f, "journal I/O: {e}"),
            AttackError::JournalMismatch { expected, found } => write!(
                f,
                "journal belongs to a different search \
                 (fingerprint {found:#018x}, expected {expected:#018x}); \
                 delete it or drop --resume"
            ),
            AttackError::Journal(e) => write!(f, "journal: {e}"),
            AttackError::Search(e) => write!(f, "search failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<std::io::Error> for AttackError {
    fn from(e: std::io::Error) -> Self {
        AttackError::Io(e)
    }
}

/// The protocol's proven fault tolerance at radius `r` (mirrors
/// `Experiment::default_t`).
#[must_use]
pub fn protocol_threshold(protocol: ProtocolKind, r: u32) -> usize {
    (match protocol {
        ProtocolKind::Flood | ProtocolKind::PersistentFlood { .. } => {
            crate::thresholds::crash_max_t(r)
        }
        ProtocolKind::Cpa => crate::thresholds::cpa_guaranteed_t(r),
        _ => crate::thresholds::byzantine_max_t(r),
    }) as usize
}

/// The `(r, t)` cells an attack configuration sweeps: per radius, half
/// the proven threshold, the threshold itself, and one past it — enough
/// points for a margin-to-threshold curve without exploding the budget.
#[must_use]
pub fn attack_cells(cfg: &AttackConfig) -> Vec<AttackCell> {
    let mut cells = Vec::new();
    for &r in &cfg.rs {
        let threshold = protocol_threshold(cfg.protocol, r);
        let mut ts = vec![threshold.div_ceil(2), threshold, threshold + 1];
        ts.retain(|&t| t > 0);
        ts.sort_unstable();
        ts.dedup();
        for t in ts {
            cells.push(AttackCell { r, t, threshold });
        }
    }
    cells
}

/// FNV-1a fingerprint of everything a journal's contents depend on.
/// Thread count and checkpoint cadence are deliberately excluded — they
/// do not change any journalled value.
#[must_use]
pub fn attack_fingerprint(cfg: &AttackConfig, cells: &[AttackCell]) -> u64 {
    let mut hash = crate::obs::FNV_OFFSET;
    let mut fold = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(crate::obs::FNV_PRIME);
    };
    let spec = format!(
        "{:?}|{}|{}|{:?}|{:?}|{:?}|{cells:?}",
        cfg.rs, cfg.seed, cfg.steps, cfg.protocol, cfg.fault_kind, cfg.metric
    );
    for b in spec.bytes() {
        fold(b);
    }
    hash
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

/// A cell's journalled search state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CellCheckpoint {
    state: AnnealState,
    done: bool,
}

/// Append-only JSONL journal of annealing checkpoints, one line per
/// checkpoint, last-entry-per-cell wins (same discipline as the sweep
/// journal in [`crate::supervisor`]).
struct AttackJournal {
    file: Mutex<File>,
}

fn ids_to_field(ids: &[NodeId]) -> String {
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out
}

fn ids_from_field(s: &str) -> Result<Vec<NodeId>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| part.parse::<u32>().map(NodeId).map_err(|e| e.to_string()))
        .collect()
}

fn score_to_field(s: AttackScore) -> String {
    format!("{},{},{}", s.wrong, s.undecided, s.last_round)
}

fn score_from_field(s: &str) -> Result<AttackScore, String> {
    let mut parts = s.split(',');
    let mut next = || {
        parts
            .next()
            .ok_or_else(|| format!("score field {s:?} has too few components"))
    };
    let wrong = next()?.parse::<u64>().map_err(|e| e.to_string())?;
    let undecided = next()?.parse::<u64>().map_err(|e| e.to_string())?;
    let last_round = next()?.parse::<u32>().map_err(|e| e.to_string())?;
    Ok(AttackScore {
        wrong,
        undecided,
        last_round,
    })
}

impl AttackJournal {
    fn create(path: &Path, fingerprint: u64, cells: usize) -> std::io::Result<AttackJournal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = File::create(path)?;
        writeln!(
            file,
            "{{\"fingerprint\":\"{fingerprint:016x}\",\"cells\":{cells}}}"
        )?;
        file.flush()?;
        Ok(AttackJournal {
            file: Mutex::new(file),
        })
    }

    fn append_to(path: &Path) -> std::io::Result<AttackJournal> {
        Ok(AttackJournal {
            file: Mutex::new(std::fs::OpenOptions::new().append(true).open(path)?),
        })
    }

    fn record(&self, cell: usize, state: &AnnealState, done: bool) -> std::io::Result<()> {
        let line = format!(
            "{{\"cell\":{cell},\"step\":{step},\"evaluations\":{evals},\
             \"accepted\":{acc},\"current_score\":\"{cs}\",\"best_score\":\"{bs}\",\
             \"current\":\"{cur}\",\"best\":\"{best}\",\"done\":{done}}}",
            step = state.step,
            evals = state.evaluations,
            acc = state.accepted,
            cs = escape_json(&score_to_field(state.current_score)),
            bs = escape_json(&score_to_field(state.best_score)),
            cur = escape_json(&ids_to_field(&state.current)),
            best = escape_json(&ids_to_field(&state.best)),
            done = u8::from(done),
        );
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{line}")?;
        file.flush()
    }
}

/// Reads the fingerprint header and last checkpoint per cell from a
/// journal file.
fn load_attack_journal(
    path: &Path,
) -> Result<(Option<u64>, BTreeMap<usize, CellCheckpoint>), AttackError> {
    let reader = BufReader::new(File::open(path)?);
    let mut fingerprint = None;
    let mut entries = BTreeMap::new();
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_json(&line)
            .map_err(|e| AttackError::Journal(format!("line {}: {e}", n + 1)))?;
        let err = |msg: &str| AttackError::Journal(format!("line {}: {msg}", n + 1));
        if let Some(JsonValue::String(fp)) = fields.get("fingerprint") {
            if n == 0 {
                fingerprint = Some(
                    u64::from_str_radix(fp, 16)
                        .map_err(|e| err(&format!("bad fingerprint: {e}")))?,
                );
                continue;
            }
            return Err(err("header line after entries"));
        }
        let num = |key: &str| match fields.get(key) {
            Some(JsonValue::Number(v)) => Ok(*v),
            _ => Err(err(&format!("missing numeric field {key:?}"))),
        };
        let text = |key: &str| match fields.get(key) {
            Some(JsonValue::String(v)) => Ok(v.as_str()),
            _ => Err(err(&format!("missing string field {key:?}"))),
        };
        let cell = usize::try_from(num("cell")?).map_err(|e| err(&e.to_string()))?;
        let state = AnnealState {
            step: u32::try_from(num("step")?).map_err(|e| err(&e.to_string()))?,
            current: ids_from_field(text("current")?).map_err(|e| err(&e))?,
            current_score: score_from_field(text("current_score")?).map_err(|e| err(&e))?,
            best: ids_from_field(text("best")?).map_err(|e| err(&e))?,
            best_score: score_from_field(text("best_score")?).map_err(|e| err(&e))?,
            evaluations: num("evaluations")?,
            accepted: num("accepted")?,
        };
        let done = num("done")? == 1;
        entries.insert(cell, CellCheckpoint { state, done });
    }
    Ok((fingerprint, entries))
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// The torus an attack cell runs on — the experiment default for the
/// radius, constructed explicitly so the search and the evaluator are
/// guaranteed to agree on the geometry.
#[must_use]
pub fn attack_torus(r: u32) -> Torus {
    Torus::for_radius(r)
}

fn score_outcome(o: &Outcome) -> AttackScore {
    AttackScore {
        wrong: o.committed_wrong as u64,
        undecided: o.undecided as u64,
        last_round: o.last_decision_round.unwrap_or(0),
    }
}

/// Hand-built strategies admissible at bound `t` on this cell, used as
/// the search's baseline.
fn hand_built(cfg: &AttackConfig, t: usize) -> Vec<Placement> {
    vec![
        Placement::FrontierCluster { t },
        Placement::RandomLocal {
            t,
            seed: cfg.seed,
            attempts: 60,
        },
        Placement::DoubleStrip,
        Placement::CheckerStrips,
        Placement::ColumnStrips,
    ]
}

/// Runs one cell's search (and baseline evaluations) to completion.
fn run_cell(
    cfg: &AttackConfig,
    index: usize,
    cell: AttackCell,
    prior: Option<&CellCheckpoint>,
    journal: Option<&AttackJournal>,
) -> Result<CellResult, TaskError> {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<[crate::obs::Counter; 2]> = OnceLock::new();
    let [evals_ctr, accepted_ctr] = COUNTERS.get_or_init(|| {
        [
            crate::obs::counter("attack/evaluations"),
            crate::obs::counter("attack/accepted"),
        ]
    });

    let torus = attack_torus(cell.r);
    let search_cfg = SearchConfig {
        r: cell.r,
        metric: cfg.metric,
        t: cell.t,
        // Cell chains must not collide: derive each from the master
        // seed and the cell's position in the sweep.
        seed: mix(cfg.seed, index as u64, 0x17),
        steps: cfg.steps,
    };
    let experiment = Experiment::new(cell.r, cfg.protocol)
        .with_metric(cfg.metric)
        .with_torus(torus.clone())
        .with_t(cell.t)
        .with_fault_kind(cfg.fault_kind);
    let mut eval = |faults: &[NodeId]| -> AttackScore {
        evals_ctr.incr();
        let outcome = experiment
            .clone()
            .with_placement(Placement::Explicit {
                faults: faults.to_vec(),
            })
            .run();
        score_outcome(&outcome)
    };

    let journal_err = |e: std::io::Error| TaskError::Invariant {
        message: format!("attack journal write failed: {e}"),
    };

    // Baselines are cheap and deterministic; recompute them every run
    // (journals only store search state). They double as anneal seeds:
    // a fresh search starts from whichever is worse for the protocol —
    // the min-cut seed or the best admissible hand-built placement — so
    // the refinement can only extend the library, never trail it.
    let mut baseline_name = String::from("none");
    let mut baseline_score = AttackScore::default();
    let mut baseline_faults: Vec<NodeId> = Vec::new();
    let mut baseline_evals = 0u64;
    for placement in hand_built(cfg, cell.t) {
        let mut faults = placement.place(&torus, cell.r, cfg.metric);
        faults.sort_unstable();
        faults.dedup();
        if local_fault_bound(&torus, cell.r, cfg.metric, &faults) > cell.t {
            continue;
        }
        let score = eval(&faults);
        baseline_evals += 1;
        if baseline_name == "none" || score > baseline_score {
            baseline_name = placement.name().to_string();
            baseline_score = score;
            baseline_faults = faults;
        }
    }

    let (mut state, resumed) = match prior {
        Some(cp) if cp.done => (cp.state.clone(), true),
        Some(cp) => (cp.state.clone(), false),
        None => {
            let _guard = crate::obs::span("attack/seed");
            let mut state = initial_state(&torus, &search_cfg, &mut eval);
            if !baseline_faults.is_empty() && baseline_score > state.best_score {
                state.current.clone_from(&baseline_faults);
                state.current_score = baseline_score;
                state.best = baseline_faults;
                state.best_score = baseline_score;
            }
            (state, false)
        }
    };
    if !(resumed && state.step >= search_cfg.steps) {
        let accepted_before = state.accepted;
        let mut journal_failure: Option<std::io::Error> = None;
        {
            let _guard = crate::obs::span("attack/anneal");
            anneal(
                &torus,
                &search_cfg,
                &mut state,
                &mut eval,
                cfg.checkpoint_every,
                &mut |s| {
                    if let (Some(j), None) = (journal, journal_failure.as_ref()) {
                        if let Err(e) = j.record(index, s, s.step >= search_cfg.steps) {
                            journal_failure = Some(e);
                        }
                    }
                },
            );
        }
        if let Some(e) = journal_failure {
            return Err(journal_err(e));
        }
        accepted_ctr.add(state.accepted - accepted_before);
    }

    Ok(CellResult {
        cell,
        found: state.best.clone(),
        found_score: state.best_score,
        baseline_name,
        baseline_score,
        evaluations: state.evaluations + baseline_evals,
        accepted: state.accepted,
        resumed,
    })
}

/// Runs the full attack sweep described by `cfg`.
///
/// One supervised task per `(r, t)` cell: panics inside an evaluation
/// are isolated and retried like any sweep task, and results come back
/// in cell order regardless of `threads`.
///
/// # Errors
///
/// On journal I/O or parse failures, a resume-fingerprint mismatch, or
/// a cell search failing terminally after its retry budget.
pub fn run_attack(cfg: &AttackConfig) -> Result<AttackReport, AttackError> {
    let cells = attack_cells(cfg);
    let fingerprint = attack_fingerprint(cfg, &cells);

    let mut prior: BTreeMap<usize, CellCheckpoint> = BTreeMap::new();
    let journal = match (&cfg.journal, cfg.resume) {
        (Some(path), true) if path.exists() => {
            let (stored, entries) = load_attack_journal(path)?;
            if let Some(found) = stored {
                if found != fingerprint {
                    return Err(AttackError::JournalMismatch {
                        expected: fingerprint,
                        found,
                    });
                }
            }
            prior = entries;
            Some(AttackJournal::append_to(path)?)
        }
        (Some(path), _) => Some(AttackJournal::create(path, fingerprint, cells.len())?),
        (None, _) => None,
    };
    let journal = journal.as_ref();

    let sup = SupervisorConfig::new();
    let results = supervise(&cells, cfg.threads.max(1), &sup, |ctx, cell| {
        run_cell(cfg, ctx.index, *cell, prior.get(&ctx.index), journal)
    });

    let mut out = Vec::with_capacity(results.len());
    for (i, supervised) in results.into_iter().enumerate() {
        match supervised {
            Supervised::Done { value, .. } => out.push(value),
            Supervised::Failed { error, .. } => {
                return Err(AttackError::Search(format!("cell {i}: {error}")));
            }
        }
    }
    Ok(AttackReport { cells: out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> AttackConfig {
        let mut cfg = AttackConfig::new(7);
        cfg.steps = 6;
        cfg.checkpoint_every = 2;
        cfg
    }

    #[test]
    fn cells_cover_the_threshold_curve() {
        let cfg = AttackConfig::new(1);
        let cells = attack_cells(&cfg);
        // r=1, byzantine threshold 1 → t ∈ {1, 2}
        assert_eq!(
            cells,
            vec![
                AttackCell {
                    r: 1,
                    t: 1,
                    threshold: 1
                },
                AttackCell {
                    r: 1,
                    t: 2,
                    threshold: 1
                },
            ]
        );
    }

    #[test]
    fn fingerprint_tracks_search_inputs_only() {
        let cfg = AttackConfig::new(3);
        let cells = attack_cells(&cfg);
        let fp = attack_fingerprint(&cfg, &cells);
        let mut same = cfg.clone();
        same.threads = 8;
        same.checkpoint_every = 999;
        same.journal = Some(PathBuf::from("elsewhere.jsonl"));
        assert_eq!(fp, attack_fingerprint(&same, &cells));
        let mut other = cfg.clone();
        other.seed = 4;
        assert_ne!(fp, attack_fingerprint(&other, &attack_cells(&other)));
    }

    #[test]
    fn attack_is_deterministic_across_thread_counts() {
        let mut one = tiny_cfg();
        one.threads = 1;
        let mut four = tiny_cfg();
        four.threads = 4;
        let a = run_attack(&one).expect("attack runs");
        let b = run_attack(&four).expect("attack runs");
        assert_eq!(a, b);
    }

    #[test]
    fn journal_roundtrips_checkpoints() {
        let dir = std::env::temp_dir().join(format!("rbcast-attack-test-{}", std::process::id()));
        let path = dir.join("attack.jsonl");
        let journal = AttackJournal::create(&path, 0xabcd, 2).expect("create journal");
        let state = AnnealState {
            step: 4,
            current: vec![NodeId(3), NodeId(9)],
            current_score: AttackScore {
                wrong: 0,
                undecided: 2,
                last_round: 7,
            },
            best: vec![NodeId(3)],
            best_score: AttackScore {
                wrong: 1,
                undecided: 0,
                last_round: 2,
            },
            evaluations: 11,
            accepted: 5,
        };
        journal.record(1, &state, false).expect("record");
        journal.record(1, &state, true).expect("record");
        let (fp, entries) = load_attack_journal(&path).expect("load");
        assert_eq!(fp, Some(0xabcd));
        let cp = entries.get(&1).expect("cell 1 present");
        assert_eq!(cp.state, state);
        assert!(cp.done);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_reproduces_straight_run() {
        let dir = std::env::temp_dir().join(format!("rbcast-attack-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("attack.jsonl");

        let mut cfg = tiny_cfg();
        cfg.journal = Some(path.clone());
        let straight = run_attack(&cfg).expect("straight run");

        // Truncate the journal to a partial prefix (header + first few
        // checkpoints) and resume: the report must be identical.
        let full = std::fs::read_to_string(&path).expect("journal written");
        let lines: Vec<&str> = full.lines().collect();
        assert!(lines.len() > 3, "journal too short to truncate: {full}");
        let partial: String = lines[..3].join("\n") + "\n";
        std::fs::write(&path, partial).expect("truncate");

        let mut resume_cfg = cfg.clone();
        resume_cfg.resume = true;
        let resumed = run_attack(&resume_cfg).expect("resumed run");
        // `resumed` flags may differ; compare the search results.
        for (a, b) in straight.cells.iter().zip(resumed.cells.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.found, b.found);
            assert_eq!(a.found_score, b.found_score);
            assert_eq!(a.baseline_name, b.baseline_name);
            assert_eq!(a.baseline_score, b.baseline_score);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_journal_is_refused() {
        let dir =
            std::env::temp_dir().join(format!("rbcast-attack-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("attack.jsonl");
        let mut cfg = tiny_cfg();
        cfg.journal = Some(path.clone());
        run_attack(&cfg).expect("first run");

        let mut other = cfg.clone();
        other.seed ^= 1;
        other.resume = true;
        match run_attack(&other) {
            Err(AttackError::JournalMismatch { .. }) => {}
            other => panic!("expected fingerprint refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
