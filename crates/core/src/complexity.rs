//! Closed-form message-complexity predictions, validated against the
//! simulator.
//!
//! The paper motivates the simplified protocol by communication overhead
//! ("localizes the circulation of indirect reports, and thus reduces
//! communication overhead"); this module quantifies that claim. For a
//! fault-free broadcast on an `n`-node torus with neighborhood size
//! `d = |nbd|`:
//!
//! | protocol | local broadcasts | reason |
//! |----------|------------------|--------|
//! | flood (§VII) | `n` | every node re-broadcasts once |
//! | CPA (§IX) | `n` | every node announces its commit once |
//! | simplified (§VI-B) | `n·(1 + d)` | one commit announcement + one `HEARD` per neighbor announcement observed |
//! | full (§VI) | measured | relaying is data-dependent (chains ≤ 3 relays, box-pruned, dominance-pruned) |
//!
//! The full protocol's volume is bounded above by `n·(1 + d + d·c₂ + d·c₂·c₃)`
//! with `cᵢ` the box-constrained relay branching — measured empirically
//! rather than predicted exactly.

use crate::{Experiment, ProtocolKind};
use rbcast_grid::{Metric, Torus};

/// Exact predicted number of local broadcasts for a *fault-free* run of
/// `kind` on `torus` (L∞ or L2), or `None` when the volume is
/// data-dependent (the full indirect protocol).
#[must_use]
pub fn predicted_broadcasts(
    kind: ProtocolKind,
    torus: &Torus,
    r: u32,
    metric: Metric,
) -> Option<u64> {
    let n = torus.len() as u64;
    let d = metric.neighborhood_size(r) as u64;
    match kind {
        ProtocolKind::Flood | ProtocolKind::Cpa => Some(n),
        ProtocolKind::PersistentFlood { repeats } => Some(n * u64::from(repeats)),
        ProtocolKind::IndirectSimplified => Some(n * (1 + d)),
        ProtocolKind::IndirectFull | ProtocolKind::IndirectCustom(_) => None,
    }
}

/// One row of the complexity table: prediction vs measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexityRow {
    /// Protocol.
    pub protocol: &'static str,
    /// Node count.
    pub n: usize,
    /// Predicted broadcasts (`None` = data-dependent).
    pub predicted: Option<u64>,
    /// Measured broadcasts.
    pub measured: u64,
}

/// Runs every protocol fault-free at radius `r` and tabulates predicted
/// vs measured broadcast counts.
#[must_use]
pub fn table(r: u32) -> Vec<ComplexityRow> {
    let torus = Torus::for_radius(r);
    [
        ProtocolKind::Flood,
        ProtocolKind::Cpa,
        ProtocolKind::IndirectSimplified,
        ProtocolKind::IndirectFull,
    ]
    .into_iter()
    .map(|kind| {
        // Complexity counts every broadcast until quiescence, including
        // the tail after all nodes have decided (persistent flood keeps
        // re-transmitting there) — so the run may not stop early.
        let o = Experiment::new(r, kind).with_early_termination(false).run();
        assert!(o.all_honest_correct(), "{}: {o}", kind.name());
        ComplexityRow {
            protocol: kind.name(),
            n: torus.len(),
            predicted: predicted_broadcasts(kind, &torus, r, Metric::Linf),
            measured: o.stats.messages_sent,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_and_cpa_are_linear() {
        let rows = table(1);
        let n = rows[0].n as u64;
        for row in &rows[..2] {
            assert_eq!(row.predicted, Some(n), "{}", row.protocol);
            assert_eq!(row.measured, n, "{}", row.protocol);
        }
    }

    #[test]
    fn simplified_prediction_is_exact() {
        // checked directly (without the full-protocol rows of `table`,
        // which are slow in debug builds) for r = 1 and 2
        for r in 1..=2u32 {
            let torus = Torus::for_radius(r);
            let o = Experiment::new(r, ProtocolKind::IndirectSimplified)
                .with_early_termination(false)
                .run();
            assert!(o.all_honest_correct());
            let predicted =
                predicted_broadcasts(ProtocolKind::IndirectSimplified, &torus, r, Metric::Linf);
            assert_eq!(Some(o.stats.messages_sent), predicted, "r={r}");
            let expect = (torus.len() as u64) * u64::from((2 * r + 1) * (2 * r + 1));
            assert_eq!(o.stats.messages_sent, expect);
        }
    }

    #[test]
    fn full_protocol_dominates_simplified() {
        let rows = table(1);
        let simplified = rows
            .iter()
            .find(|row| row.protocol == "indirect-simplified")
            .unwrap()
            .measured;
        let full = rows
            .iter()
            .find(|row| row.protocol == "indirect-full")
            .unwrap()
            .measured;
        assert!(full > 3 * simplified, "full={full} simplified={simplified}");
    }

    #[test]
    fn persistent_flood_scales_with_repeats() {
        let torus = Torus::for_radius(1);
        let p3 = predicted_broadcasts(
            ProtocolKind::PersistentFlood { repeats: 3 },
            &torus,
            1,
            Metric::Linf,
        );
        assert_eq!(p3, Some(3 * torus.len() as u64));
        let o = Experiment::new(1, ProtocolKind::PersistentFlood { repeats: 3 })
            .with_early_termination(false)
            .run();
        assert_eq!(Some(o.stats.messages_sent), p3);
    }

    #[test]
    fn l2_neighborhoods_shrink_the_simplified_volume() {
        let torus = Torus::for_radius(2);
        let linf = predicted_broadcasts(ProtocolKind::IndirectSimplified, &torus, 2, Metric::Linf);
        let l2 = predicted_broadcasts(ProtocolKind::IndirectSimplified, &torus, 2, Metric::L2);
        assert!(l2 < linf);
    }
}
