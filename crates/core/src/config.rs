//! The config layer: the single sanctioned home for process-environment
//! reads.
//!
//! Every `RBCAST_*` knob flows through [`env_var`], so the full set of
//! environment switches is discoverable from this module's callers and
//! the audit (`env-read` rule) can keep `std::env` out of the rest of
//! the workspace. Knob *names* stay with the subsystem that owns them
//! (`engine::THREADS_ENV`, the supervisor's chaos/retry variables);
//! only the raw read is centralised here.

/// Read one environment variable, `None` when unset or not valid UTF-8.
///
/// An unset knob and an invalid-unicode knob are deliberately collapsed:
/// callers treat both as "not configured" and apply their own defaults
/// and parse-failure diagnostics.
#[must_use]
pub fn env_var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_reads_as_none() {
        assert_eq!(env_var("RBCAST_DEFINITELY_UNSET_KNOB_XYZZY"), None);
    }

    #[test]
    fn set_variable_reads_back() {
        // Safe single-threaded mutation is not guaranteed under the test
        // harness, so probe with a variable this process inherited: PATH
        // exists in every CI and dev environment we run under.
        if std::env::var_os("PATH").is_some() {
            assert!(env_var("PATH").is_some());
        }
    }
}
