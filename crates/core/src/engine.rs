//! Deterministic parallel experiment executor.
//!
//! Sweep-shaped workloads — grids of independent [`Experiment::run`]
//! calls over `t`, `r`, seeds, and adversary strategies — are
//! embarrassingly parallel, but naive parallelism would threaten the
//! property the whole test/audit stack is built on: *same inputs, same
//! bytes out*. This module provides the one sanctioned way to spend
//! multiple cores on such workloads while keeping output byte-identical
//! for every thread count (including 1):
//!
//! * each task is fixed at construction time (its seed, placement, and
//!   channel are part of the task value — workers share no mutable
//!   state);
//! * workers pull chunks off a shared [`AtomicUsize`] cursor, so
//!   scheduling is dynamic, but every result is stored **by input
//!   index**;
//! * the caller receives `Vec<R>` in input order, so downstream
//!   printing/aggregation cannot observe scheduling.
//!
//! Three entry points share the machinery and differ only in failure
//! behaviour:
//!
//! * [`run_indexed`] — the legacy infallible path: a worker panic is
//!   re-raised on the calling thread;
//! * [`try_run_indexed`] — failures come back as a structured
//!   [`EngineError`] instead of a panic;
//! * [`run_indexed_partial`] — graceful degradation: every slot a live
//!   worker filled is returned, missing slots are `None`. This is the
//!   substrate the [`crate::supervisor`] builds on.
//!
//! The executor is std-only (`std::thread::scope`); the
//! `raw-thread-spawn` audit rule confines `std::thread` spawning to this
//! module so all parallelism in the workspace flows through it.
//!
//! Thread count resolution: an explicit request wins, then the
//! `RBCAST_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use crate::{Experiment, Outcome};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "RBCAST_THREADS";

/// Tasks are claimed in chunks of this size to bound cursor contention;
/// chunking only affects which worker computes a task, never where its
/// result lands.
const CHUNK: usize = 4;

/// Structured failure of a parallel run — what [`try_run_indexed`]
/// returns instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A worker thread panicked; the message is recovered from the
    /// panic payload (the first failed worker observed wins).
    WorkerPanicked {
        /// Stringified panic payload.
        message: String,
    },
    /// The work queue failed to cover every index exactly once — an
    /// executor bug, never a task failure. Carries the uncovered
    /// indices.
    QueueInvariant {
        /// Input indices for which no result was produced.
        missing: Vec<usize>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerPanicked { message } => {
                write!(f, "worker thread panicked: {message}")
            }
            EngineError::QueueInvariant { missing } => write!(
                f,
                "work queue invariant violated: {} index(es) never covered \
                 (first: {:?})",
                missing.len(),
                missing.first()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Best-effort stringification of a panic payload (the two shapes
/// `panic!` actually produces, then a generic fallback).
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves the worker-thread count: `requested` if given (clamped to at
/// least 1), else the `RBCAST_THREADS` environment variable, else
/// [`std::thread::available_parallelism`] (1 when unknown).
///
/// An `RBCAST_THREADS` value that is unparseable or zero is clamped to 1
/// — loudly: a one-time stderr warning names the rejected value, so a
/// typo in the environment can no longer silently serialize a sweep.
#[must_use]
pub fn thread_count(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Some(raw) = crate::config::env_var(THREADS_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: {THREADS_ENV}={raw:?} is not a positive \
                         integer; running with 1 worker thread"
                    );
                });
                return 1;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every task on `threads` worker threads and returns the
/// results **in input order** — output is byte-identical for any thread
/// count because collection is by index and tasks share no mutable
/// state. `f` receives the task's index alongside the task.
///
/// With `threads <= 1` (or one task) no threads are spawned and the
/// tasks run inline, making the serial path the literal baseline the
/// parallel path is tested against.
///
/// # Panics
///
/// Panics propagate from worker threads: if any task panics, the first
/// worker panic observed is re-raised on the calling thread. Callers
/// that need isolation instead of propagation use [`try_run_indexed`]
/// or [`run_indexed_partial`].
pub fn run_indexed<T, R, F>(tasks: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads == 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let (slots, first_panic) = run_chunked(tasks, threads, &f);
    if let Some(payload) = first_panic {
        // Re-raise the worker panic verbatim.
        std::panic::resume_unwind(payload);
    }
    match collect_full(slots) {
        Ok(results) => results,
        // infallible legacy entry point — the invariant error is
        // surfaced structurally by try_run_indexed
        // audit:allow(panic)
        Err(e) => panic!("{e}"),
    }
}

/// [`run_indexed`] with structured failure: a worker panic or a
/// work-queue invariant violation comes back as an [`EngineError`]
/// instead of unwinding through the caller. On success the results are
/// complete and in input order, exactly as [`run_indexed`] returns them.
///
/// Unlike [`run_indexed`], the single-thread path also runs on a worker
/// thread so a panicking task is captured rather than propagated — the
/// error contract is identical at every thread count.
///
/// # Errors
///
/// [`EngineError::WorkerPanicked`] if any worker died (the first
/// observed panic's message is reported); [`EngineError::QueueInvariant`]
/// if the chunked queue failed to cover every index.
pub fn try_run_indexed<T, R, F>(tasks: &[T], threads: usize, f: F) -> Result<Vec<R>, EngineError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    let (slots, first_panic) = run_chunked(tasks, threads, &f);
    if let Some(payload) = first_panic {
        return Err(EngineError::WorkerPanicked {
            message: payload_message(payload.as_ref()),
        });
    }
    collect_full(slots)
}

/// Graceful-degradation variant: every slot some live worker filled is
/// returned in input order; slots lost to a dead worker (a panicking
/// task takes down its worker thread, losing that worker's uncollected
/// chunk results) or to a queue invariant violation are `None` instead
/// of poisoning the whole run.
///
/// This is deliberately coarse — per-*task* isolation (one `None` per
/// failing task, with a reason) is the [`crate::supervisor`]'s job; this
/// layer only guarantees the caller gets everything that survived.
/// Like [`try_run_indexed`], the single-thread path runs on a worker
/// thread so a panic is contained at every thread count.
pub fn run_indexed_partial<T, R, F>(tasks: &[T], threads: usize, f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    run_chunked(tasks, threads, &f).0
}

/// The shared chunked work-queue machinery: runs every task on `threads`
/// scoped workers (at least one — the caller normalizes), collects
/// results by input index, and returns the slot vector together with the
/// first worker panic payload observed (slots computed by a panicked
/// worker since its last hand-off are lost, i.e. `None`).
fn run_chunked<T, R, F>(
    tasks: &[T],
    threads: usize,
    f: &F,
) -> (Vec<Option<R>>, Option<Box<dyn Any + Send>>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let worker = |_w: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= tasks.len() {
                break;
            }
            let end = (start + CHUNK).min(tasks.len());
            for (i, t) in tasks.iter().enumerate().take(end).skip(start) {
                local.push((i, f(i, t)));
            }
        }
        local
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    slots.resize_with(tasks.len(), || None);
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || worker(w))).collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
    });
    (slots, first_panic)
}

/// Converts a complete slot vector into results, reporting any uncovered
/// index as the structured queue-invariant error (previously a bare
/// `expect` panic).
fn collect_full<R>(slots: Vec<Option<R>>) -> Result<Vec<R>, EngineError> {
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !missing.is_empty() {
        return Err(EngineError::QueueInvariant { missing });
    }
    Ok(slots.into_iter().flatten().collect())
}

/// [`run_indexed`] over a slice of experiments: the deterministic
/// parallel sweep primitive used by the bench binaries and the `rbcast
/// sweep` CLI. Results are outcomes in experiment order.
#[must_use]
pub fn run_experiments(experiments: &[Experiment], threads: usize) -> Vec<Outcome> {
    let _arenas = prewarm_arenas(experiments);
    run_indexed(experiments, threads, |_, e| e.run())
}

/// [`run_experiments`] keeping each run's delivery-trace hash — the
/// cross-thread-count determinism witness (two sweeps agree on these iff
/// they agree on every delivery of every run).
#[must_use]
pub fn run_experiments_traced(experiments: &[Experiment], threads: usize) -> Vec<(Outcome, u64)> {
    let _arenas = prewarm_arenas(experiments);
    run_indexed(experiments, threads, |_, e| e.run_traced())
}

/// Builds each distinct shared arena exactly once, serially, before the
/// sweep fans out, and returns the strong guards that keep them alive
/// for its duration. Without the prewarm, workers racing on a cold cache
/// could each build the same table (correct but wasted work), and
/// back-to-back runs of one experiment would rebuild a table whose last
/// `Arc` died between them.
pub(crate) fn prewarm_arenas(
    experiments: &[Experiment],
) -> Vec<std::sync::Arc<rbcast_grid::NeighborTable>> {
    experiments
        .iter()
        .filter_map(Experiment::arena_guard)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use rbcast_adversary::Placement;

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u32> = run_indexed(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_arrive_in_input_order() {
        let tasks: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(&tasks, threads, |i, &t| {
                assert_eq!(i, t);
                t * 7
            });
            assert_eq!(out, tasks.iter().map(|t| t * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_indexed(&[10usize, 20], 16, |_, &t| t + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        assert_eq!(thread_count(Some(0)), 1);
        assert_eq!(thread_count(Some(5)), 5);
        assert!(thread_count(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        let tasks: Vec<usize> = (0..8).collect();
        let _ = run_indexed(&tasks, 4, |i, _| {
            assert!(i != 3, "task {i} exploded");
            i
        });
    }

    #[test]
    fn try_run_matches_run_indexed_when_healthy() {
        let tasks: Vec<usize> = (0..17).collect();
        for threads in [1, 2, 8] {
            let out = try_run_indexed(&tasks, threads, |_, &t| t * 3).unwrap();
            assert_eq!(out, tasks.iter().map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_run_reports_worker_panics_structurally() {
        let tasks: Vec<usize> = (0..8).collect();
        for threads in [1, 2] {
            let err = try_run_indexed(&tasks, threads, |i, &t| {
                assert!(i != 3, "task {i} exploded");
                t
            })
            .unwrap_err();
            match err {
                EngineError::WorkerPanicked { message } => {
                    assert!(message.contains("task 3 exploded"), "{message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn partial_returns_everything_that_survived() {
        let tasks: Vec<usize> = (0..32).collect();
        for threads in [1, 2, 4] {
            let out = run_indexed_partial(&tasks, threads, |i, &t| {
                assert!(i != 9, "boom");
                t * 2
            });
            assert_eq!(out.len(), tasks.len());
            assert!(out[9].is_none());
            // Whatever made it back is correct and correctly placed.
            for (i, slot) in out.iter().enumerate() {
                if let Some(v) = slot {
                    assert_eq!(*v, i * 2);
                }
            }
        }
    }

    #[test]
    fn partial_is_complete_when_nothing_fails() {
        let tasks: Vec<usize> = (0..11).collect();
        let out = run_indexed_partial(&tasks, 3, |_, &t| t + 100);
        let full: Vec<usize> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(full, tasks.iter().map(|t| t + 100).collect::<Vec<_>>());
    }

    #[test]
    fn engine_error_display_names_the_failure() {
        let p = EngineError::WorkerPanicked {
            message: "kaput".into(),
        };
        assert!(p.to_string().contains("kaput"));
        let q = EngineError::QueueInvariant {
            missing: vec![4, 7],
        };
        let s = q.to_string();
        assert!(s.contains('2') && s.contains('4'), "{s}");
    }

    #[test]
    fn invalid_threads_env_clamps_to_one_with_warning() {
        // Runs in-process: the Once means only the first offender warns,
        // but the clamp itself must hold for every bad shape.
        for bad in ["zero", "0", "-3", "1.5", ""] {
            std::env::set_var(THREADS_ENV, bad);
            assert_eq!(thread_count(None), 1, "RBCAST_THREADS={bad:?}");
        }
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn experiment_sweep_matches_serial() {
        let experiments: Vec<Experiment> = (0..6u64)
            .map(|seed| {
                Experiment::new(1, ProtocolKind::Flood)
                    .with_t(2)
                    .with_placement(Placement::RandomLocal {
                        t: 2,
                        seed,
                        attempts: 40,
                    })
            })
            .collect();
        let serial = run_experiments(&experiments, 1);
        let parallel = run_experiments(&experiments, 4);
        assert_eq!(serial, parallel);
    }
}
