//! Deterministic parallel experiment executor.
//!
//! Sweep-shaped workloads — grids of independent [`Experiment::run`]
//! calls over `t`, `r`, seeds, and adversary strategies — are
//! embarrassingly parallel, but naive parallelism would threaten the
//! property the whole test/audit stack is built on: *same inputs, same
//! bytes out*. This module provides the one sanctioned way to spend
//! multiple cores on such workloads while keeping output byte-identical
//! for every thread count (including 1):
//!
//! * each task is fixed at construction time (its seed, placement, and
//!   channel are part of the task value — workers share no mutable
//!   state);
//! * workers pull chunks off a shared [`AtomicUsize`] cursor, so
//!   scheduling is dynamic, but every result is stored **by input
//!   index**;
//! * the caller receives `Vec<R>` in input order, so downstream
//!   printing/aggregation cannot observe scheduling.
//!
//! The executor is std-only (`std::thread::scope`); the
//! `raw-thread-spawn` audit rule confines `std::thread` spawning to this
//! module so all parallelism in the workspace flows through it.
//!
//! Thread count resolution: an explicit request wins, then the
//! `RBCAST_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use crate::{Experiment, Outcome};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "RBCAST_THREADS";

/// Tasks are claimed in chunks of this size to bound cursor contention;
/// chunking only affects which worker computes a task, never where its
/// result lands.
const CHUNK: usize = 4;

/// Resolves the worker-thread count: `requested` if given (clamped to at
/// least 1), else the `RBCAST_THREADS` environment variable, else
/// [`std::thread::available_parallelism`] (1 when unknown).
#[must_use]
pub fn thread_count(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every task on `threads` worker threads and returns the
/// results **in input order** — output is byte-identical for any thread
/// count because collection is by index and tasks share no mutable
/// state. `f` receives the task's index alongside the task.
///
/// With `threads <= 1` (or one task) no threads are spawned and the
/// tasks run inline, making the serial path the literal baseline the
/// parallel path is tested against.
///
/// # Panics
///
/// Panics propagate from worker threads: if any task panics, the first
/// worker panic observed is re-raised on the calling thread.
pub fn run_indexed<T, R, F>(tasks: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads == 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let worker = |_w: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= tasks.len() {
                break;
            }
            let end = (start + CHUNK).min(tasks.len());
            for (i, t) in tasks.iter().enumerate().take(end).skip(start) {
                local.push((i, f(i, t)));
            }
        }
        local
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    slots.resize_with(tasks.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || worker(w))).collect();
        for h in handles {
            let local = match h.join() {
                Ok(local) => local,
                // audit:allow(panic): re-raising a worker panic verbatim
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("work queue covered every index exactly once"))
        .collect()
}

/// [`run_indexed`] over a slice of experiments: the deterministic
/// parallel sweep primitive used by the bench binaries and the `rbcast
/// sweep` CLI. Results are outcomes in experiment order.
#[must_use]
pub fn run_experiments(experiments: &[Experiment], threads: usize) -> Vec<Outcome> {
    let _arenas = prewarm_arenas(experiments);
    run_indexed(experiments, threads, |_, e| e.run())
}

/// [`run_experiments`] keeping each run's delivery-trace hash — the
/// cross-thread-count determinism witness (two sweeps agree on these iff
/// they agree on every delivery of every run).
#[must_use]
pub fn run_experiments_traced(experiments: &[Experiment], threads: usize) -> Vec<(Outcome, u64)> {
    let _arenas = prewarm_arenas(experiments);
    run_indexed(experiments, threads, |_, e| e.run_traced())
}

/// Builds each distinct shared arena exactly once, serially, before the
/// sweep fans out, and returns the strong guards that keep them alive
/// for its duration. Without the prewarm, workers racing on a cold cache
/// could each build the same table (correct but wasted work), and
/// back-to-back runs of one experiment would rebuild a table whose last
/// `Arc` died between them.
fn prewarm_arenas(experiments: &[Experiment]) -> Vec<std::sync::Arc<rbcast_grid::NeighborTable>> {
    experiments
        .iter()
        .filter_map(Experiment::arena_guard)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use rbcast_adversary::Placement;

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u32> = run_indexed(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_arrive_in_input_order() {
        let tasks: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(&tasks, threads, |i, &t| {
                assert_eq!(i, t);
                t * 7
            });
            assert_eq!(out, tasks.iter().map(|t| t * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_indexed(&[10usize, 20], 16, |_, &t| t + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        assert_eq!(thread_count(Some(0)), 1);
        assert_eq!(thread_count(Some(5)), 5);
        assert!(thread_count(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        let tasks: Vec<usize> = (0..8).collect();
        let _ = run_indexed(&tasks, 4, |i, _| {
            assert!(i != 3, "task {i} exploded");
            i
        });
    }

    #[test]
    fn experiment_sweep_matches_serial() {
        let experiments: Vec<Experiment> = (0..6u64)
            .map(|seed| {
                Experiment::new(1, ProtocolKind::Flood)
                    .with_t(2)
                    .with_placement(Placement::RandomLocal {
                        t: 2,
                        seed,
                        attempts: 40,
                    })
            })
            .collect();
        let serial = run_experiments(&experiments, 1);
        let parallel = run_experiments(&experiments, 4);
        assert_eq!(serial, parallel);
    }
}
