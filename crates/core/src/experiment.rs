//! One-stop experiment harness: torus + protocol + placement + behaviour
//! → outcome.

use rbcast_adversary::{local_fault_bound_in, Placement};
use rbcast_grid::{Coord, Metric, NeighborTable, NodeId, Torus};
use rbcast_protocols::{
    attackers, Cpa, Flood, Indirect, IndirectConfig, Msg, PersistentFlood, ProtocolParams,
};
use rbcast_sim::{ChannelConfig, EngineKind, Network, Process, RunStats, Value};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Which protocol the honest nodes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Crash-stop flooding (§VII).
    Flood,
    /// The simple protocol / Certified Propagation Algorithm (§IX).
    Cpa,
    /// The full indirect-report protocol (§VI): 4-hop reports, two-level
    /// rule.
    IndirectFull,
    /// Flooding with per-node re-transmissions (§X counter-measure to
    /// disruption and loss).
    PersistentFlood {
        /// Re-transmissions per node.
        repeats: u32,
    },
    /// The simplified protocol (§VI-B): 2-hop reports, one-level rule.
    IndirectSimplified,
    /// A custom indirect configuration (ablations).
    IndirectCustom(IndirectConfig),
}

impl ProtocolKind {
    /// Short name for tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Flood => "flood",
            ProtocolKind::PersistentFlood { .. } => "persistent-flood",
            ProtocolKind::Cpa => "cpa",
            ProtocolKind::IndirectFull => "indirect-full",
            ProtocolKind::IndirectSimplified => "indirect-simplified",
            ProtocolKind::IndirectCustom(_) => "indirect-custom",
        }
    }
}

/// How faulty nodes behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash-stop: the node never participates.
    CrashStop,
    /// Byzantine but mute (strictly weaker than crash for this model —
    /// kept separate for bookkeeping).
    Silent,
    /// Byzantine: pushes the wrong value and corrupts relayed chains.
    Liar,
    /// Byzantine: additionally fabricates indirect reports wholesale.
    Forger,
    /// Byzantine with the §X spoofing relaxation: impersonates honest
    /// neighbors (only effective on a spoofing-enabled channel).
    Spoofer,
    /// Each faulty node independently draws one of silent/liar/forger
    /// (deterministically from the seed) — a heterogeneous adversary.
    Mixed {
        /// Seed for the per-node behaviour draw.
        seed: u64,
    },
}

/// Aggregate result of one broadcast experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Number of honest (non-faulty) nodes.
    pub honest: usize,
    /// Honest nodes that committed the source's value.
    pub committed_correct: usize,
    /// Honest nodes that committed the wrong value (must be 0 whenever
    /// the placement respects the protocol's `t` — the safety theorem).
    pub committed_wrong: usize,
    /// Honest nodes that never decided.
    pub undecided: usize,
    /// Number of faulty nodes placed.
    pub fault_count: usize,
    /// Audited local fault bound of the placement (max faults in any
    /// single neighborhood).
    pub audited_bound: usize,
    /// Simulator statistics.
    pub stats: RunStats,
    /// Transmission counts per message kind (SOURCE / COMMITTED / HEARD).
    pub message_kinds: Vec<(&'static str, u64)>,
    /// The latest round at which any honest node decided (`None` when no
    /// honest node decided at all) — the run's time-to-commit, and the
    /// tiebreaking term of the adversary-search objective.
    pub last_decision_round: Option<rbcast_sim::Round>,
}

impl Outcome {
    /// True iff every honest node committed the correct value —
    /// the paper's *reliable broadcast achieved*.
    #[must_use]
    pub fn all_honest_correct(&self) -> bool {
        self.committed_wrong == 0 && self.undecided == 0 && self.committed_correct == self.honest
    }

    /// True iff no honest node committed a wrong value (Theorem 2's
    /// safety property — holds under any placement within budget).
    #[must_use]
    pub fn safe(&self) -> bool {
        self.committed_wrong == 0
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} correct, {} wrong, {} undecided (faults: {}, bound: {}; {})",
            self.committed_correct,
            self.honest,
            self.committed_wrong,
            self.undecided,
            self.fault_count,
            self.audited_bound,
            self.stats
        )
    }
}

/// Builder for a single broadcast experiment.
///
/// Defaults: torus `4(2r+1)` square, L∞ metric, `t` = the protocol's
/// maximum tolerable budget, no faults, source value `true`,
/// 10 000-round cap.
#[derive(Debug, Clone)]
pub struct Experiment {
    r: u32,
    metric: Metric,
    torus: Option<Torus>,
    protocol: ProtocolKind,
    t: Option<usize>,
    placement: Option<Placement>,
    fault_kind: FaultKind,
    value: Value,
    max_rounds: u32,
    channel: ChannelConfig,
    shared_arena: bool,
    early_termination: bool,
    round_budget: Option<u32>,
    trace_path: Option<PathBuf>,
    engine: EngineKind,
}

impl Experiment {
    /// Starts an experiment description for radius `r` and `protocol`.
    #[must_use]
    pub fn new(r: u32, protocol: ProtocolKind) -> Self {
        Experiment {
            r,
            metric: Metric::Linf,
            torus: None,
            protocol,
            t: None,
            placement: None,
            fault_kind: FaultKind::CrashStop,
            value: true,
            max_rounds: 10_000,
            channel: ChannelConfig::reliable(),
            shared_arena: true,
            early_termination: true,
            round_budget: None,
            trace_path: None,
            engine: EngineKind::default(),
        }
    }

    /// Overrides the metric (default L∞).
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Overrides the arena (default `Torus::for_radius(r)`).
    #[must_use]
    pub fn with_torus(mut self, torus: Torus) -> Self {
        self.torus = Some(torus);
        self
    }

    /// Sets the protocol's fault budget `t`.
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = Some(t);
        self
    }

    /// Sets the fault placement (default: none).
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Sets the faulty nodes' behaviour (default crash-stop).
    #[must_use]
    pub fn with_fault_kind(mut self, kind: FaultKind) -> Self {
        self.fault_kind = kind;
        self
    }

    /// Sets the source's value (default `true`).
    #[must_use]
    pub fn with_value(mut self, value: Value) -> Self {
        self.value = value;
        self
    }

    /// Sets the round cap (default 10 000).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the channel model (default: the paper's reliable local
    /// broadcast). When jammers are left empty on a jam-enabled channel,
    /// the faulty placement doubles as the jammer set.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Whether to draw the neighbor table from the process-wide shared
    /// arena cache (default `true`). Tables are immutable and fully
    /// determined by `(torus, r, metric)`, so sharing cannot change any
    /// outcome or trace hash — disable only to measure the build cost or
    /// to cross-check determinism against private tables.
    #[must_use]
    pub fn with_shared_arena(mut self, shared: bool) -> Self {
        self.shared_arena = shared;
        self
    }

    /// Whether the simulator may stop as soon as every honest node has
    /// decided (default `true`). The delivery-trace hash is frozen at
    /// that point in *both* modes, so hashes stay byte-identical with
    /// the setting on or off; only round/message statistics for the
    /// post-decision tail differ.
    #[must_use]
    pub fn with_early_termination(mut self, on: bool) -> Self {
        self.early_termination = on;
        self
    }

    /// Arms the supervisor's cooperative watchdog (default: off). A
    /// budget strictly below `max_rounds` makes the simulator stop at
    /// the budget with [`rbcast_sim::StopReason::DeadlineExceeded`]
    /// instead of running to the cap; budgets at or above the cap never
    /// bind, so a generous budget is byte-identical to no budget.
    #[must_use]
    pub fn with_round_budget(mut self, budget: Option<u32>) -> Self {
        self.round_budget = budget;
        self
    }

    /// The configured watchdog budget, if any (the supervisor threads
    /// its default through experiments that did not set their own).
    #[must_use]
    pub fn round_budget(&self) -> Option<u32> {
        self.round_budget
    }

    /// Streams the run's structured trace events to `path` as JSONL
    /// (default: no trace). Event payloads are pure functions of
    /// simulation state, so the file is byte-identical for identical
    /// experiments regardless of thread count, and
    /// [`crate::obs::replay_hash`] re-derives the run's delivery-trace
    /// hash from it. Under `debug-invariants` only the first of the two
    /// determinism replicas writes the file.
    #[must_use]
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Selects the simulator round loop (default:
    /// [`EngineKind::Sparse`]). The dense loop is the `--dense` escape
    /// hatch / parity oracle: both engines are byte-identical in every
    /// observable — trace hash, event stream, stats — which the
    /// determinism gate asserts on every torus it covers.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The configured simulator engine.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The default fault budget when `with_t` was not called: the
    /// maximum the chosen protocol is proven to tolerate at this radius.
    fn default_t(&self) -> usize {
        let r = self.r;
        (match self.protocol {
            ProtocolKind::Flood | ProtocolKind::PersistentFlood { .. } => {
                crate::thresholds::crash_max_t(r)
            }
            ProtocolKind::Cpa => crate::thresholds::cpa_guaranteed_t(r),
            _ => crate::thresholds::byzantine_max_t(r),
        }) as usize
    }

    /// Runs the experiment.
    ///
    /// Under the `debug-invariants` feature the run executes twice and
    /// asserts both replicas produce the identical delivery-trace hash
    /// and outcome — the determinism half of the audit gates; the T2
    /// safety oracle (no honest node commits a wrong value) is asserted
    /// every round inside the simulator whenever the configuration is
    /// within the protocol's proven tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the arena cannot host the radius (see
    /// [`Torus::supports_radius`]), if a configured trace file cannot be
    /// created, or — under `debug-invariants` — if a runtime invariant
    /// is violated.
    #[must_use]
    pub fn run(&self) -> Outcome {
        self.run_traced().0
    }

    /// [`Experiment::run`], additionally returning the simulator's
    /// order-sensitive delivery-trace hash — the determinism witness
    /// used by the parallel sweep tests (identical inputs must produce
    /// identical hashes at any thread count).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Experiment::run`].
    #[must_use]
    pub fn run_traced(&self) -> (Outcome, u64) {
        #[cfg(feature = "debug-invariants")]
        {
            // The two determinism runs are independent; execute them
            // concurrently on the deterministic engine (2 fixed tasks →
            // index-ordered results, so the comparison itself is stable).
            // Only replica 0 may write the trace file — the replay is a
            // shadow run, not a second observation.
            let mut runs = crate::engine::run_indexed(&[(), ()], 2, |i, ()| self.run_once(i == 0));
            let (replay, replay_hash) = runs.pop().expect("engine returned both replicas");
            let (outcome, hash) = runs.pop().expect("engine returned both replicas");
            assert_eq!(
                hash, replay_hash,
                "same-seed trace-hash determinism violated: two runs of one \
                 experiment diverged ({hash:#018x} vs {replay_hash:#018x})"
            );
            assert_eq!(
                outcome, replay,
                "same-seed determinism violated: identical trace hashes but \
                 diverging outcomes"
            );
            (outcome, hash)
        }
        #[cfg(not(feature = "debug-invariants"))]
        self.run_once(true)
    }

    /// Whether Theorem 2's safety guarantee is provably in force, i.e.
    /// whether the safety oracle may assert without false alarms: the
    /// channel delivers authentic identities, the placement's audited
    /// local bound is within the budget, and the protocol carries a
    /// Byzantine safety proof for the configured fault behaviour.
    /// `IndirectCustom` ablations may deliberately weaken the commit
    /// rule, so they are never audited.
    fn t2_oracle_applies(&self, audited_bound: usize, t: usize) -> bool {
        if self.channel.spoofing || audited_bound > t {
            return false;
        }
        match self.protocol {
            ProtocolKind::Cpa | ProtocolKind::IndirectFull | ProtocolKind::IndirectSimplified => {
                true
            }
            ProtocolKind::Flood | ProtocolKind::PersistentFlood { .. } => {
                matches!(self.fault_kind, FaultKind::CrashStop | FaultKind::Silent)
            }
            ProtocolKind::IndirectCustom(_) => false,
        }
    }

    /// The torus this experiment will run on (the override or the
    /// radius-derived default).
    fn resolve_torus(&self) -> Torus {
        self.torus
            .clone()
            .unwrap_or_else(|| Torus::for_radius(self.r))
    }

    /// A strong reference to this experiment's shared arena, building it
    /// if needed. The sweep engine calls this for every experiment
    /// *before* fanning out, so each distinct geometry is built exactly
    /// once per sweep and workers only ever clone `Arc`s. Returns `None`
    /// when the experiment opted out of sharing.
    pub(crate) fn arena_guard(&self) -> Option<Arc<NeighborTable>> {
        self.shared_arena
            .then(|| crate::arena_cache::shared(&self.resolve_torus(), self.r, self.metric))
    }

    /// One full simulation, returning the outcome and the simulator's
    /// delivery-trace hash. `primary` is false for the `debug-invariants`
    /// shadow replica, which must not write the trace file.
    fn run_once(&self, primary: bool) -> (Outcome, u64) {
        let _span = crate::obs::span("experiment/run");
        let torus = self.resolve_torus();
        let arena = if self.shared_arena {
            crate::arena_cache::shared(&torus, self.r, self.metric)
        } else {
            Arc::new(NeighborTable::build(&torus, self.r, self.metric))
        };
        let t = self.t.unwrap_or_else(|| self.default_t());
        let source = torus.id(Coord::ORIGIN);
        let params = ProtocolParams {
            source,
            value: self.value,
            t,
        };
        let faults: Vec<NodeId> = self
            .placement
            .as_ref()
            .map(|p| p.place(&torus, self.r, self.metric))
            .unwrap_or_default();
        let audited_bound = local_fault_bound_in(&arena, &faults);
        let fault_set: HashSet<NodeId> = faults.iter().copied().collect();

        let protocol = self.protocol;
        let fault_kind = self.fault_kind;
        let wrong = !self.value;
        let fs = fault_set.clone();
        let mut channel = self.channel.clone();
        if channel.jam_budget > 0 && channel.jammers.is_empty() {
            channel.jammers = faults.clone();
        }
        let mut net = Network::with_arena(Arc::clone(&arena), channel, move |id| {
            if fs.contains(&id) {
                match fault_kind {
                    // crash is applied post-construction; give them a
                    // silent process either way
                    FaultKind::CrashStop | FaultKind::Silent => attackers::silent(),
                    FaultKind::Liar => attackers::liar(wrong),
                    FaultKind::Forger => attackers::forger(wrong),
                    FaultKind::Spoofer => attackers::spoofer(wrong),
                    FaultKind::Mixed { seed } => {
                        // cheap deterministic per-node draw
                        let mut x = seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(u64::from(id.0));
                        x ^= x >> 33;
                        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                        match x % 3 {
                            0 => attackers::silent(),
                            1 => attackers::liar(wrong),
                            _ => attackers::forger(wrong),
                        }
                    }
                }
            } else {
                match protocol {
                    ProtocolKind::Flood => Box::new(Flood::new(params)) as Box<dyn Process<Msg>>,
                    ProtocolKind::PersistentFlood { repeats } => {
                        Box::new(PersistentFlood::new(params, repeats))
                    }
                    ProtocolKind::Cpa => Box::new(Cpa::new(params)),
                    ProtocolKind::IndirectFull => {
                        Box::new(Indirect::new(params, IndirectConfig::full()))
                    }
                    ProtocolKind::IndirectSimplified => {
                        Box::new(Indirect::new(params, IndirectConfig::simplified()))
                    }
                    ProtocolKind::IndirectCustom(cfg) => Box::new(Indirect::new(params, cfg)),
                }
            }
        });
        net.set_classifier(Msg::kind);
        // The completion mask is installed unconditionally so the trace
        // hash freezes at the same round whether or not the run is
        // allowed to stop early — the two modes stay byte-identical.
        let honest_ids: Vec<NodeId> = torus
            .node_ids()
            .filter(|id| !fault_set.contains(id))
            .collect();
        net.set_completion_mask(&honest_ids);
        net.set_early_termination(self.early_termination);
        net.set_round_budget(self.round_budget);
        net.set_engine(self.engine);
        if self.t2_oracle_applies(audited_bound, t) {
            net.set_safety_oracle(self.value, &faults);
        }
        if matches!(self.fault_kind, FaultKind::CrashStop) {
            for &f in &faults {
                net.crash_at(f, 0);
            }
        }
        if primary {
            if let Some(path) = &self.trace_path {
                let file = std::fs::File::create(path).unwrap_or_else(|e| {
                    // audit:allow(panic): an unwritable trace path is caller misconfiguration
                    panic!("cannot create trace file {}: {e}", path.display())
                });
                net.set_trace_sink(Box::new(crate::obs::JsonlSink::new(
                    std::io::BufWriter::new(file),
                )));
            }
        }
        let stats = net.run(self.max_rounds);
        record_run_metrics(&stats);
        let message_kinds: Vec<(&'static str, u64)> =
            net.kind_counts().iter().map(|(&k, &v)| (k, v)).collect();

        let mut committed_correct = 0;
        let mut committed_wrong = 0;
        let mut undecided = 0;
        let mut honest = 0;
        for id in torus.node_ids() {
            if fault_set.contains(&id) {
                continue;
            }
            honest += 1;
            match net.decision(id) {
                Some((v, _)) if v == self.value => committed_correct += 1,
                Some(_) => committed_wrong += 1,
                None => undecided += 1,
            }
        }
        let outcome = Outcome {
            honest,
            committed_correct,
            committed_wrong,
            undecided,
            fault_count: faults.len(),
            audited_bound,
            stats,
            message_kinds,
            last_decision_round: net.latest_decision_round(&honest_ids),
        };
        (outcome, net.trace_hash())
    }
}

/// Folds one run's simulator statistics into the process-wide metrics
/// registry (`sim/*` counters). Handles are resolved once so the
/// registry lock is not taken per run.
fn record_run_metrics(stats: &RunStats) {
    use std::sync::OnceLock;
    static SIM: OnceLock<[crate::obs::Counter; 6]> = OnceLock::new();
    let [runs, rounds, messages, deliveries, jammed, lost] = SIM.get_or_init(|| {
        [
            crate::obs::counter("sim/runs"),
            crate::obs::counter("sim/rounds"),
            crate::obs::counter("sim/messages"),
            crate::obs::counter("sim/deliveries"),
            crate::obs::counter("sim/jammed-deliveries"),
            crate::obs::counter("sim/lost-deliveries"),
        ]
    });
    runs.incr();
    rounds.add(u64::from(stats.rounds));
    messages.add(stats.messages_sent);
    deliveries.add(stats.deliveries);
    jammed.add(stats.jammed_deliveries);
    lost.add(stats.lost_deliveries);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_flood() {
        let o = Experiment::new(2, ProtocolKind::Flood).run();
        assert!(o.all_honest_correct());
        assert_eq!(o.fault_count, 0);
    }

    #[test]
    fn flood_below_crash_threshold_survives_strips_minus_one() {
        // random local placement at t = r(2r+1) − 1 cannot partition
        let t = crate::thresholds::crash_max_t(2) as usize;
        let o = Experiment::new(2, ProtocolKind::Flood)
            .with_t(t)
            .with_placement(Placement::RandomLocal {
                t,
                seed: 11,
                attempts: 60,
            })
            .run();
        assert!(o.audited_bound <= t);
        assert!(o.all_honest_correct(), "{o}");
    }

    #[test]
    fn flood_partitioned_by_double_strip() {
        // Theorem 4: t = r(2r+1) faults as a strip partition the torus.
        let o = Experiment::new(2, ProtocolKind::Flood)
            .with_t(10)
            .with_placement(Placement::DoubleStrip)
            .run();
        assert_eq!(o.audited_bound, 10);
        assert!(o.undecided > 0, "{o}");
        assert!(o.safe());
    }

    #[test]
    fn cpa_tolerates_its_guarantee_r2() {
        let t = crate::thresholds::cpa_guaranteed_t(2) as usize; // 2
        let o = Experiment::new(2, ProtocolKind::Cpa)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(FaultKind::Liar)
            .run();
        assert!(o.all_honest_correct(), "{o}");
    }

    #[test]
    fn indirect_simplified_tolerates_max_t_r2() {
        let t = crate::thresholds::byzantine_max_t(2) as usize; // 4
        let o = Experiment::new(2, ProtocolKind::IndirectSimplified)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(FaultKind::Silent)
            .run();
        assert!(o.all_honest_correct(), "{o}");
    }

    #[test]
    fn outcome_display_mentions_counts() {
        let o = Experiment::new(1, ProtocolKind::Flood).run();
        let s = o.to_string();
        assert!(s.contains("correct"));
        assert!(s.contains("faults: 0"));
    }

    #[test]
    fn default_t_follows_protocol() {
        let e = Experiment::new(3, ProtocolKind::Flood);
        assert_eq!(e.default_t(), 20);
        let e = Experiment::new(3, ProtocolKind::Cpa);
        assert_eq!(e.default_t(), 6);
        let e = Experiment::new(3, ProtocolKind::IndirectSimplified);
        assert_eq!(e.default_t(), 10);
    }

    #[test]
    fn message_kind_breakdown_is_consistent() {
        let o = Experiment::new(1, ProtocolKind::IndirectSimplified).run();
        let total: u64 = o.message_kinds.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, o.stats.messages_sent);
        let kinds: Vec<&str> = o.message_kinds.iter().map(|&(k, _)| k).collect();
        assert!(kinds.contains(&"SOURCE"));
        assert!(kinds.contains(&"COMMITTED"));
        assert!(kinds.contains(&"HEARD"));
    }

    #[test]
    fn round_budget_cuts_a_run_short() {
        let o = Experiment::new(1, ProtocolKind::Flood)
            .with_round_budget(Some(1))
            .run();
        assert_eq!(
            o.stats.stop_reason,
            rbcast_sim::StopReason::DeadlineExceeded
        );
        assert!(o.undecided > 0, "{o}");
        // A budget at the cap never binds: byte-identical to no budget.
        let capped = Experiment::new(1, ProtocolKind::Flood)
            .with_round_budget(Some(10_000))
            .run_traced();
        let free = Experiment::new(1, ProtocolKind::Flood).run_traced();
        assert_eq!(capped, free);
        assert!(free.0.all_honest_correct());
    }

    #[test]
    fn trace_file_replays_to_the_run_hash() {
        let path = std::env::temp_dir().join("rbcast-test-experiment-trace.jsonl");
        let (outcome, hash) = Experiment::new(1, ProtocolKind::Flood)
            .with_trace_path(&path)
            .run_traced();
        let text = std::fs::read_to_string(&path).expect("trace file written");
        assert!(!text.is_empty());
        assert_eq!(
            crate::obs::replay_hash(&text),
            Ok(hash),
            "JSONL stream must re-derive the run's delivery-trace hash"
        );
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"ev\":\"delivery\""))
                .count() as u64,
            outcome.stats.deliveries,
            "one delivery event per counted delivery"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_metrics_accumulate_across_runs() {
        let deliveries = crate::obs::counter("sim/deliveries");
        let runs = crate::obs::counter("sim/runs");
        let (d0, r0) = (deliveries.get(), runs.get());
        let o = Experiment::new(1, ProtocolKind::Flood).run();
        assert!(runs.get() > r0);
        assert!(deliveries.get() >= d0 + o.stats.deliveries);
    }

    #[test]
    fn wrong_value_false_also_works() {
        let o = Experiment::new(1, ProtocolKind::IndirectFull)
            .with_value(false)
            .run();
        assert!(o.all_honest_correct());
    }
}
