//! CPA on arbitrary graphs — the Pelc–Peleg setting of §III.
//!
//! The related-work discussion contrasts the paper's grid model with
//! Pelc & Peleg's study of locally bounded faults on *arbitrary* graphs,
//! where the Certified Propagation Algorithm (CPA) is defined
//! graph-theoretically: commit on hearing the source directly, or on
//! `t+1` committed neighbors. This module provides:
//!
//! * [`Graph`] — a minimal undirected graph with a constructor from a
//!   radio torus (so the generic executor can be cross-validated against
//!   the radio simulator — two independent implementations of the same
//!   protocol);
//! * [`local_fault_bound`] — the graph version of the locally bounded
//!   audit (max faults in any closed neighborhood `N[v]`);
//! * [`run_cpa`] — a synchronous executor returning each node's commit
//!   round;
//! * example graphs exhibiting topology effects the grid cannot (a cut
//!   vertex stalling CPA at `t = 1`).

use rbcast_grid::{Metric, NeighborTable, Torus};
use std::collections::HashSet;

/// A simple undirected graph over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops are not allowed");
            if !adj[u].contains(&v) {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        Graph { adj }
    }

    /// The radio network's connectivity graph: nodes of `torus`, an edge
    /// whenever two nodes are within transmission radius `r` under
    /// `metric`.
    #[must_use]
    pub fn from_torus(torus: &Torus, r: u32, metric: Metric) -> Self {
        let table = NeighborTable::build(torus, r, metric);
        let adj = torus
            .node_ids()
            .map(|id| table.neighbors(id).iter().map(|n| n.index()).collect())
            .collect();
        Graph { adj }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `v`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }
}

/// Maximum number of faulty nodes in any closed neighborhood `N[v]` —
/// the graph form of the paper's locally bounded constraint.
#[must_use]
pub fn local_fault_bound(graph: &Graph, faulty: &[usize]) -> usize {
    let fault_set: HashSet<usize> = faulty.iter().copied().collect();
    (0..graph.len())
        .map(|v| {
            usize::from(fault_set.contains(&v))
                + graph
                    .neighbors(v)
                    .iter()
                    .filter(|n| fault_set.contains(n))
                    .count()
        })
        .max()
        .unwrap_or(0)
}

/// Result of a generic-graph CPA run: for each node, the round in which
/// it committed (`None` = never; the source commits in round 0).
#[must_use]
pub fn run_cpa(graph: &Graph, source: usize, t: usize, faulty: &[usize]) -> Vec<Option<u32>> {
    let fault_set: HashSet<usize> = faulty.iter().copied().collect();
    let n = graph.len();
    let mut committed_at: Vec<Option<u32>> = vec![None; n];
    if fault_set.contains(&source) {
        return committed_at; // a faulty source broadcasts nothing useful
    }
    committed_at[source] = Some(0);

    let mut round = 0u32;
    loop {
        round += 1;
        let mut changed = false;
        let mut next = committed_at.clone();
        for v in 0..n {
            if committed_at[v].is_some() || fault_set.contains(&v) {
                continue;
            }
            // direct source neighbor?
            let hears_source = graph.neighbors(v).contains(&source);
            // committed honest neighbors as of the previous round
            let votes = graph
                .neighbors(v)
                .iter()
                .filter(|&&u| !fault_set.contains(&u) && committed_at[u].is_some())
                .count();
            if hears_source || votes > t {
                next[v] = Some(round);
                changed = true;
            }
        }
        committed_at = next;
        if !changed {
            return committed_at;
        }
    }
}

/// A graph where CPA stalls at `t = 1` despite full reachability: two
/// cliques joined by a two-vertex bridge — every bridge-crossing node has
/// at most one committed neighbor at the frontier, never the `t+1 = 2`
/// CPA demands. (The topology effect Pelc & Peleg study; impossible on
/// the grid where neighborhoods are fat.)
#[must_use]
pub fn bottleneck_graph() -> (Graph, usize) {
    // clique {0,1,2,3} with source 0; bridge 3—4; 4—5; clique {5,6,7,8}
    let mut edges = Vec::new();
    for u in 0..4 {
        for v in (u + 1)..4 {
            edges.push((u, v));
        }
    }
    edges.push((3, 4));
    edges.push((4, 5));
    for u in 5..9 {
        for v in (u + 1)..9 {
            edges.push((u, v));
        }
    }
    (Graph::from_edges(9, &edges), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::Coord;

    #[test]
    fn from_edges_dedups_and_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let _ = Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn torus_graph_has_radio_degrees() {
        let torus = Torus::new(12, 12);
        let g = Graph::from_torus(&torus, 2, Metric::Linf);
        assert_eq!(g.len(), 144);
        assert!((0..g.len()).all(|v| g.neighbors(v).len() == 24));
    }

    #[test]
    fn graph_audit_matches_radio_audit() {
        use rbcast_adversary::Placement;
        let torus = Torus::new(20, 20);
        let g = Graph::from_torus(&torus, 2, Metric::Linf);
        for placement in [Placement::DoubleStrip, Placement::CheckerStrips] {
            let faults = placement.place(&torus, 2, Metric::Linf);
            let graph_faults: Vec<usize> = faults.iter().map(|f| f.index()).collect();
            assert_eq!(
                local_fault_bound(&g, &graph_faults),
                rbcast_adversary::local_fault_bound(&torus, 2, Metric::Linf, &faults),
                "{}",
                placement.name()
            );
        }
    }

    #[test]
    fn generic_cpa_cross_validates_the_radio_simulator() {
        // Two independent implementations of CPA must agree on WHO
        // commits under silent faults (rounds may differ by scheduling).
        use crate::{Experiment, FaultKind, ProtocolKind};
        use rbcast_adversary::Placement;

        let r = 2u32;
        let t = 2usize;
        let torus = Torus::for_radius(r);
        let faults = Placement::FrontierCluster { t }.place(&torus, r, Metric::Linf);

        // radio simulator
        let outcome = Experiment::new(r, ProtocolKind::Cpa)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(FaultKind::Silent)
            .run();

        // generic executor
        let g = Graph::from_torus(&torus, r, Metric::Linf);
        let graph_faults: Vec<usize> = faults.iter().map(|f| f.index()).collect();
        let commits = run_cpa(&g, torus.id(Coord::ORIGIN).index(), t, &graph_faults);
        let committed = commits
            .iter()
            .enumerate()
            .filter(|&(v, c)| c.is_some() && !graph_faults.contains(&v))
            .count();
        assert_eq!(committed, outcome.committed_correct);
    }

    #[test]
    fn fault_free_cpa_reaches_everyone_on_a_clique() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, &edges);
        let commits = run_cpa(&g, 0, 2, &[]);
        assert!(commits.iter().all(Option::is_some));
        // all non-source nodes hear the source directly: round 1
        assert!(commits[1..].iter().all(|&c| c == Some(1)));
    }

    #[test]
    fn bottleneck_stalls_cpa_at_t1_but_not_t0() {
        let (g, source) = bottleneck_graph();
        // t = 0: plain flooding semantics, everyone commits
        let flood = run_cpa(&g, source, 0, &[]);
        assert!(flood.iter().all(Option::is_some));
        // t = 1, fault-free: the bridge node 4 has only one committed
        // neighbor (3), never 2 — the far clique starves
        let stalled = run_cpa(&g, source, 1, &[]);
        assert!(stalled[..4].iter().all(Option::is_some));
        assert!(stalled[4..].iter().all(Option::is_none));
    }

    #[test]
    fn faulty_source_produces_nothing() {
        let (g, source) = bottleneck_graph();
        let commits = run_cpa(&g, source, 0, &[source]);
        assert!(commits.iter().all(Option::is_none));
    }

    #[test]
    fn grid_richness_vs_sparse_topology() {
        // The same t that stalls the bottleneck graph is harmless on the
        // grid graph — the topology dependence Pelc & Peleg highlight.
        let torus = Torus::new(12, 12);
        let g = Graph::from_torus(&torus, 1, Metric::Linf);
        let commits = run_cpa(&g, 0, 1, &[]);
        assert!(commits.iter().all(Option::is_some));
    }
}
