//! Reliable broadcast in a grid radio network under locally bounded
//! Byzantine and crash-stop faults.
//!
//! This crate is the public face of the `rbcast` workspace, a
//! reproduction of Bhandari & Vaidya, *On Reliable Broadcast in a Radio
//! Network* (PODC 2005). It ties the substrates together:
//!
//! * [`thresholds`] — the paper's fault-tolerance thresholds as
//!   functions of the transmission radius `r`;
//! * [`Experiment`] — a builder that assembles a torus, a protocol, a
//!   fault placement and a Byzantine behaviour, runs the broadcast, and
//!   reports a summarised [`Outcome`];
//! * [`percolation`] — the §XI random-failure extension (independent
//!   node faults, connecting crash-stop broadcast to site percolation);
//! * [`engine`] — the deterministic parallel sweep executor (results
//!   collected by input index, so output is byte-identical for every
//!   thread count);
//! * [`obs`] — the deterministic observability layer: structured trace
//!   events, a metrics registry, and the workspace's only sanctioned
//!   wall-clock timing.
//!
//! # Quickstart
//!
//! ```
//! use rbcast_core::{Experiment, FaultKind, ProtocolKind};
//! use rbcast_adversary::Placement;
//!
//! // r = 1, Byzantine threshold t < ½·r(2r+1) = 1.5 ⇒ t = 1 tolerable.
//! let outcome = Experiment::new(1, ProtocolKind::IndirectFull)
//!     .with_t(1)
//!     .with_placement(Placement::FrontierCluster { t: 1 })
//!     .with_fault_kind(FaultKind::Liar)
//!     .run();
//! assert!(outcome.all_honest_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena_cache;
pub mod attack;
pub mod complexity;
pub mod config;
pub mod engine;
mod experiment;
pub mod graphs;
pub mod obs;
pub mod percolation;
pub mod render;
pub mod supervisor;
pub mod thresholds;

pub use experiment::{Experiment, FaultKind, Outcome, ProtocolKind};
pub use rbcast_sim::EngineKind;
