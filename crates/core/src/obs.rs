//! Deterministic observability: structured trace events, a process-wide
//! metrics registry, and scoped wall-clock timing.
//!
//! Three strictly separated pieces:
//!
//! 1. **Event traces** — re-exported from [`rbcast_sim::trace`]: the
//!    typed stream a [`rbcast_sim::Network`] emits (round boundaries,
//!    transmissions, deliveries, jams, losses, decisions, protocol
//!    notes). Event payloads are pure functions of simulation state, so
//!    serialized streams are byte-identical across worker-thread counts,
//!    and the legacy FNV delivery-trace hash is derived from the stream
//!    by construction ([`replay_hash`] re-derives it).
//! 2. **Metrics** — named monotonic [`Counter`]s ([`counter`]),
//!    snapshotted by [`metrics_snapshot`]. Counters aggregate across
//!    threads with commutative atomics, so totals are deterministic for
//!    a fixed workload even though increment order is not.
//! 3. **Timing** — scoped wall-clock spans ([`span`]) and stopwatches
//!    ([`Stopwatch`]), aggregated by [`timings_snapshot`]. This is the
//!    *only* module in the workspace allowed to read the wall clock
//!    (`cargo xtask audit` rule `obs-wallclock`); timing never feeds
//!    anything hashed, journaled, or compared for determinism.

pub use rbcast_sim::trace::{
    fold_words, replay_hash, replay_hash_events, JsonlSink, MemorySink, TraceEvent, TraceSink,
    FNV_OFFSET, FNV_PRIME,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// A registered monotonic counter. Cheap to copy; increments are
/// relaxed atomics, safe from any thread.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

static COUNTERS: Mutex<BTreeMap<&'static str, &'static AtomicU64>> = Mutex::new(BTreeMap::new());

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Registry state is a bag of atomics / plain sums — never left
    // inconsistent by a panicking holder, so poisoning is ignorable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Returns the counter registered under `name`, creating it (at zero)
/// on first use. Call sites should cache the returned handle (e.g. in a
/// `OnceLock`) so the registry lock is not taken per increment.
pub fn counter(name: &'static str) -> Counter {
    let mut map = lock_ignoring_poison(&COUNTERS);
    let slot = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter(slot)
}

/// A point-in-time reading of every registered counter, sorted by name,
/// plus the bridged counters of crates below the observability layer
/// (currently `flow/augmentations` and `flow/min-cuts` from
/// [`rbcast_flow::stats`]).
#[must_use]
pub fn metrics_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = lock_ignoring_poison(&COUNTERS)
        .iter()
        .map(|(name, v)| ((*name).to_string(), v.load(Ordering::Relaxed)))
        .collect();
    let bridged = [
        (
            "flow/augmentations",
            rbcast_flow::stats::augmentations_total(),
        ),
        ("flow/min-cuts", rbcast_flow::stats::min_cuts_total()),
    ];
    for (key, value) in bridged {
        match out.binary_search_by(|(n, _)| n.as_str().cmp(key)) {
            Ok(i) => out[i].1 += value,
            Err(i) => out.insert(i, (key.to_string(), value)),
        }
    }
    out
}

/// Aggregated wall-clock statistics of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Total elapsed nanoseconds across them.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total elapsed milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1_000_000.0
    }

    /// Mean elapsed milliseconds per span (0 when no spans completed).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms() / self.count as f64
        }
    }
}

static TIMINGS: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

/// A scoped wall-clock timer: measures from [`span`] until drop, then
/// folds the elapsed time into the per-name aggregate.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        let elapsed = u64::try_from(elapsed).unwrap_or(u64::MAX);
        let mut map = lock_ignoring_poison(&TIMINGS);
        let stat = map.entry(self.name).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed);
    }
}

/// Opens a scoped timer under `name` (convention: `"area/operation"`,
/// e.g. `"flow/dinic"`, `"sweep/task"`). The measurement ends when the
/// returned guard drops.
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: Instant::now(), // audit:allow(wall-clock) obs is the sanctioned timing module
    }
}

/// A point-in-time reading of every span aggregate, sorted by name.
#[must_use]
pub fn timings_snapshot() -> Vec<(String, SpanStat)> {
    lock_ignoring_poison(&TIMINGS)
        .iter()
        .map(|(name, stat)| ((*name).to_string(), *stat))
        .collect()
}

/// A free-standing wall-clock stopwatch for callers that need the
/// elapsed value itself (e.g. the bench harness's sweep timings) rather
/// than a named aggregate. Keeps `Instant` confined to this module.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now()) // audit:allow(wall-clock) obs is the sanctioned timing module
    }

    /// Elapsed milliseconds since start.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1_000.0
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name_and_monotonic() {
        let a = counter("test/obs_counter_shared");
        let b = counter("test/obs_counter_shared");
        let before = a.get();
        a.add(2);
        b.incr();
        assert_eq!(a.get(), before + 3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered_names() {
        counter("test/obs_snapshot_a").incr();
        counter("test/obs_snapshot_b").incr();
        let snap = metrics_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert!(names.contains(&"test/obs_snapshot_a"));
        assert!(names.contains(&"test/obs_snapshot_b"));
        assert!(names.contains(&"flow/augmentations"));
    }

    #[test]
    fn spans_aggregate_per_name() {
        {
            let _s = span("test/obs_span");
        }
        {
            let _s = span("test/obs_span");
        }
        let snap = timings_snapshot();
        let stat = snap
            .iter()
            .find(|(n, _)| n == "test/obs_span")
            .map(|(_, s)| *s)
            .expect("span recorded");
        assert!(stat.count >= 2);
        assert!(stat.mean_ms() >= 0.0);
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        let first = sw.elapsed_ms();
        assert!(first >= 0.0);
        assert!(sw.elapsed_ms() >= first);
    }
}
