//! The §XI random-failure extension: independent node crashes and site
//! percolation.
//!
//! The paper's conclusion observes that under random crash-stop failures
//! (each node failing independently with probability `p_f`) the broadcast
//! reachability question "is similar to the problem of site
//! percolation". This module runs that experiment: flooding over a torus
//! with Bernoulli faults, sweeping `p_f`, reporting the fraction of
//! honest nodes reached — exhibiting the percolation-style sharp
//! transition.

use crate::{Experiment, FaultKind, Outcome, ProtocolKind};
use rbcast_adversary::Placement;
use rbcast_grid::Torus;

/// One sample of the percolation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PercolationSample {
    /// Per-node fault probability.
    pub p: f64,
    /// Fraction of honest nodes that received the broadcast.
    pub reached_fraction: f64,
    /// Whether every honest node was reached.
    pub full_coverage: bool,
    /// The underlying outcome.
    pub outcome: Outcome,
}

/// Runs flooding with Bernoulli(`p`) crash faults on `torus` and reports
/// the coverage.
#[must_use]
pub fn sample(r: u32, torus: &Torus, p: f64, seed: u64) -> PercolationSample {
    let outcome = Experiment::new(r, ProtocolKind::Flood)
        .with_torus(torus.clone())
        .with_t(0) // t is irrelevant to flooding; audit is skipped anyway
        .with_placement(Placement::Bernoulli { p, seed })
        .with_fault_kind(FaultKind::CrashStop)
        .run();
    let reached_fraction = if outcome.honest == 0 {
        0.0
    } else {
        outcome.committed_correct as f64 / outcome.honest as f64
    };
    PercolationSample {
        p,
        reached_fraction,
        full_coverage: outcome.all_honest_correct(),
        outcome,
    }
}

/// One row of the percolation sweep: mean coverage over `trials` seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Per-node fault probability.
    pub p: f64,
    /// Mean fraction of honest nodes reached.
    pub mean_reached: f64,
    /// Fraction of trials with full coverage.
    pub full_coverage_rate: f64,
}

/// Sweeps fault probabilities, averaging over `trials` independent
/// placements per probability.
///
/// Equivalent to [`sweep_threaded`] at the default thread count.
#[must_use]
pub fn sweep(r: u32, torus: &Torus, ps: &[f64], trials: u64) -> Vec<SweepRow> {
    sweep_threaded(r, torus, ps, trials, crate::engine::thread_count(None))
}

/// [`sweep`] on an explicit number of worker threads. Every
/// `(probability, seed)` sample is an independent task with its seed
/// fixed up front, fanned out through [`crate::engine::run_indexed`] and
/// aggregated in input order — rows are byte-identical for every thread
/// count.
#[must_use]
pub fn sweep_threaded(
    r: u32,
    torus: &Torus,
    ps: &[f64],
    trials: u64,
    threads: usize,
) -> Vec<SweepRow> {
    let tasks: Vec<(f64, u64)> = ps
        .iter()
        .flat_map(|&p| (0..trials).map(move |seed| (p, 0xACE0_0000 + seed)))
        .collect();
    let samples =
        crate::engine::run_indexed(&tasks, threads, |_, &(p, seed)| sample(r, torus, p, seed));
    samples
        .chunks(trials.max(1) as usize)
        .zip(ps)
        .map(|(chunk, &p)| {
            let reached: f64 = chunk.iter().map(|s| s.reached_fraction).sum();
            let full: u64 = chunk.iter().map(|s| u64::from(s.full_coverage)).sum();
            SweepRow {
                p,
                mean_reached: reached / trials as f64,
                full_coverage_rate: full as f64 / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // reaching every node is exactly fraction 1.0
    fn zero_probability_reaches_everyone() {
        let torus = Torus::for_radius(2);
        let s = sample(2, &torus, 0.0, 1);
        assert!(s.full_coverage);
        assert_eq!(s.reached_fraction, 1.0);
    }

    #[test]
    fn extreme_probability_strands_most() {
        let torus = Torus::for_radius(2);
        let s = sample(2, &torus, 0.95, 1);
        assert!(!s.full_coverage);
        assert!(s.reached_fraction < 0.5, "{}", s.reached_fraction);
    }

    #[test]
    fn coverage_degrades_monotonically_in_expectation() {
        let torus = Torus::for_radius(1);
        let rows = sweep(1, &torus, &[0.0, 0.3, 0.9], 5);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].mean_reached >= rows[1].mean_reached);
        assert!(rows[1].mean_reached > rows[2].mean_reached);
    }

    #[test]
    fn low_probability_usually_covers_r2() {
        // r = 2 neighborhoods have 24 nodes; p = 0.05 faults rarely block
        let torus = Torus::for_radius(2);
        let rows = sweep(2, &torus, &[0.05], 5);
        assert!(rows[0].mean_reached > 0.9, "{}", rows[0].mean_reached);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let torus = Torus::for_radius(1);
        let a = sample(1, &torus, 0.4, 77);
        let b = sample(1, &torus, 0.4, 77);
        assert_eq!(a, b);
    }
}
