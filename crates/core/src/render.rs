//! ASCII rendering of broadcast outcomes — the wavefront maps used by
//! the examples and handy for debugging experiments.

use rbcast_grid::{Coord, NodeId, Torus};
use rbcast_sim::{Round, Value};
use std::collections::HashSet;

/// Renders a torus as a character map: `S` for the source, `X` for
/// faulty nodes, `!` for wrong commits, `.` for undecided honest nodes,
/// and the commit round as a hex digit (capped at `f`) otherwise.
///
/// `decision(id)` supplies each node's decision; `expected` is the
/// source's value.
///
/// # Example
///
/// ```
/// use rbcast_core::render::commit_map;
/// use rbcast_grid::{Coord, Torus};
///
/// let torus = Torus::new(12, 12);
/// let source = torus.id(Coord::ORIGIN);
/// let map = commit_map(&torus, source, &[], true, |_| Some((true, 3)));
/// assert!(map.starts_with("S 3"));
/// ```
pub fn commit_map<F>(
    torus: &Torus,
    source: NodeId,
    faulty: &[NodeId],
    expected: Value,
    decision: F,
) -> String
where
    F: Fn(NodeId) -> Option<(Value, Round)>,
{
    let fault_set: HashSet<NodeId> = faulty.iter().copied().collect();
    let mut out = String::with_capacity(torus.len() * 2 + torus.height() as usize);
    for y in 0..torus.height() {
        for x in 0..torus.width() {
            let id = torus.id(Coord::new(i64::from(x), i64::from(y)));
            let ch = if id == source {
                'S'
            } else if fault_set.contains(&id) {
                'X'
            } else {
                match decision(id) {
                    Some((v, round)) if v == expected => {
                        char::from_digit(u32::min(round, 15), 16).unwrap_or('?')
                    }
                    Some(_) => '!',
                    None => '.',
                }
            };
            out.push(ch);
            if x + 1 < torus.width() {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// A horizontal bar of `width` cells filled proportionally to
/// `fraction ∈ [0, 1]` — used by the percolation sweeps.
#[must_use]
pub fn bar(fraction: f64, width: usize) -> String {
    let cells = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(cells), " ".repeat(width - cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_marks_all_roles() {
        let torus = Torus::new(12, 12);
        let source = torus.id(Coord::ORIGIN);
        let fault = torus.id(Coord::new(1, 0));
        let wrong = torus.id(Coord::new(2, 0));
        let undecided = torus.id(Coord::new(3, 0));
        let map = commit_map(&torus, source, &[fault], true, |id| {
            if id == wrong {
                Some((false, 2))
            } else if id == undecided {
                None
            } else {
                Some((true, 11))
            }
        });
        let first_line: &str = map.lines().next().unwrap();
        assert!(first_line.starts_with("S X ! ."));
        // round 11 renders as hex 'b'
        assert!(first_line.contains('b'));
    }

    #[test]
    fn rounds_cap_at_hex_f() {
        let torus = Torus::new(12, 12);
        let source = torus.id(Coord::ORIGIN);
        let map = commit_map(&torus, source, &[], true, |_| Some((true, 250)));
        assert!(map.contains('f'));
        assert!(!map.contains('?'));
    }

    #[test]
    fn map_dimensions_match_torus() {
        let torus = Torus::new(9, 5);
        let map = commit_map(&torus, torus.id(Coord::ORIGIN), &[], true, |_| None);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines
            .iter()
            .all(|l| l.chars().filter(|c| !c.is_whitespace()).count() == 9));
    }

    #[test]
    fn bar_extremes() {
        assert_eq!(bar(0.0, 10), " ".repeat(10));
        assert_eq!(bar(1.0, 10), "█".repeat(10));
        assert_eq!(bar(2.5, 4), "████"); // clamped
        assert_eq!(bar(0.5, 4).chars().filter(|&c| c == '█').count(), 2);
    }
}
