//! Fault-tolerant sweep execution: panic isolation, deadlines, retry,
//! checkpoint/resume, and deterministic chaos injection.
//!
//! The [`crate::engine`] is deliberately dumb: it fans tasks out and, in
//! its legacy entry point, re-raises the first worker panic — one bad
//! `(t, r, seed, adversary)` cell kills a whole frontier sweep and
//! discards every finished result. This module wraps the engine in a
//! supervisor that **degrades gracefully instead of failing
//! atomically**:
//!
//! * **Panic isolation** — each task attempt runs under
//!   `std::panic::catch_unwind` (the `catch-unwind` audit rule confines
//!   that construct to this module); a panicking task becomes a
//!   structured [`TaskError::Panicked`], not process death. A panic hook
//!   shim keeps supervised panics off stderr without hiding anyone
//!   else's.
//! * **Cooperative deadlines** — a per-task round budget is threaded
//!   through [`Experiment::with_round_budget`] into the simulator's run
//!   loop; a runaway run stops at the budget with
//!   [`rbcast_sim::StopReason::DeadlineExceeded`] and surfaces as
//!   [`TaskError::DeadlineExceeded`]. No threads are killed — the
//!   watchdog is a loop bound, so determinism is untouched.
//! * **Bounded deterministic retry** — failed attempts are retried up to
//!   [`SupervisorConfig::max_attempts`] times. Retry seeds are
//!   [`retry_seed`]`(index, attempt)`, a pure function, so a sweep's
//!   output stays byte-identical at any thread count no matter which
//!   worker retries what.
//! * **Checkpoint journal** — completed tasks append one JSONL line
//!   (index, status, attempts, outcome digest + summary) to a
//!   [`Journal`]; a killed sweep resumes via
//!   [`SupervisorConfig::resume_from`], re-running only failed/missing
//!   tasks and converging to the uninterrupted output.
//! * **Graceful degradation** — [`run_experiments_supervised`] always
//!   returns every healthy result in input order together with a
//!   quarantine report; it never trades completed work for an error.
//! * **Chaos injection** — `RBCAST_CHAOS=panic:0.05,stall:0.02,seed=N`
//!   (test-only) deterministically injects synthetic panics/stalls so CI
//!   can exercise every supervisor path; draws are a pure function of
//!   `(chaos seed, task index, attempt)`, so they too are
//!   thread-count-invariant, and a retry of a chaos-panicked task rolls
//!   a fresh draw and usually succeeds.

use crate::engine::{self, payload_message};
use crate::{Experiment, Outcome};
use rbcast_sim::StopReason;
use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// Environment variable holding the chaos-injection spec
/// (`panic:0.05,stall:0.02,seed=7`; `:` and `=` are interchangeable).
pub const CHAOS_ENV: &str = "RBCAST_CHAOS";

/// Environment variable overriding the supervisor's attempt bound.
pub const RETRIES_ENV: &str = "RBCAST_RETRIES";

/// Environment variable arming a default per-task round budget.
pub const ROUND_BUDGET_ENV: &str = "RBCAST_ROUND_BUDGET";

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

/// Why a supervised task failed — the structured replacement for a
/// propagated panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked; the payload is captured verbatim.
    Panicked {
        /// Stringified panic payload.
        message: String,
    },
    /// The cooperative watchdog tripped: the run was still live when its
    /// round budget ran out.
    DeadlineExceeded {
        /// The budget that was exhausted.
        round_budget: u32,
    },
    /// The experiment's own `max_rounds` cap was reached and the
    /// supervisor was configured to treat that as a failure
    /// ([`SupervisorConfig::fail_on_round_cap`]; off by default, since
    /// partitioned runs legitimately idle at the cap).
    RoundCapHit {
        /// Rounds executed when the cap was hit.
        rounds: u32,
    },
    /// An executor invariant broke (e.g. the work queue never produced a
    /// result for this index) — a harness bug, not a model outcome.
    Invariant {
        /// What broke.
        message: String,
    },
    /// Every attempt failed; wraps the last failure.
    Retried {
        /// Total attempts made (= the configured bound).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<TaskError>,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { message } => write!(f, "panicked: {message}"),
            TaskError::DeadlineExceeded { round_budget } => {
                write!(f, "deadline exceeded (round budget {round_budget})")
            }
            TaskError::RoundCapHit { rounds } => {
                write!(f, "round cap hit after {rounds} rounds")
            }
            TaskError::Invariant { message } => write!(f, "invariant violated: {message}"),
            TaskError::Retried { attempts, last } => {
                write!(f, "failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for TaskError {}

impl From<engine::EngineError> for TaskError {
    fn from(e: engine::EngineError) -> Self {
        match e {
            engine::EngineError::WorkerPanicked { message } => TaskError::Panicked { message },
            engine::EngineError::QueueInvariant { .. } => TaskError::Invariant {
                message: e.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic seeds and chaos
// ---------------------------------------------------------------------

/// splitmix64 finalizer — the workspace's standard bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Mixes a base seed with a task index and attempt number into one
/// well-distributed u64.
fn mix(base: u64, index: usize, attempt: u32) -> u64 {
    let i = u64::try_from(index).unwrap_or(u64::MAX);
    splitmix(
        base ^ i
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt).wrapping_mul(0xFF51_AFD7_ED55_8CCD)),
    )
}

/// The derived seed for attempt `attempt` of task `index` — a pure
/// function of its arguments, so retries are identical no matter which
/// worker thread performs them or in what order. Attempt 0 is the
/// original run; each retry gets a fresh but reproducible seed.
#[must_use]
pub fn retry_seed(index: usize, attempt: u32) -> u64 {
    mix(0xA076_1D64_78BD_642F, index, attempt)
}

/// What the chaos layer injects into one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// A genuine `panic!` raised inside the supervised region.
    Panic,
    /// A synthetic stall, surfaced as [`TaskError::DeadlineExceeded`]
    /// without burning wall-clock time.
    Stall,
}

/// Deterministic fault injection (test-only; armed via [`CHAOS_ENV`]).
///
/// Probabilities are stored in parts-per-million so drawing never
/// compares floats; a draw is a pure function of
/// `(seed, task index, attempt)`, which keeps chaos runs byte-identical
/// at every thread count and lets retries of a chaos-hit task succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosConfig {
    panic_ppm: u32,
    stall_ppm: u32,
    seed: u64,
}

impl ChaosConfig {
    /// Builds a config from probabilities in `[0, 1]` (handy in tests).
    ///
    /// # Errors
    ///
    /// If either probability is outside `[0, 1]` or they sum past 1.
    pub fn new(panic_p: f64, stall_p: f64, seed: u64) -> Result<ChaosConfig, String> {
        let cfg = ChaosConfig {
            panic_ppm: probability_ppm(panic_p)?,
            stall_ppm: probability_ppm(stall_p)?,
            seed,
        };
        if cfg.panic_ppm + cfg.stall_ppm > 1_000_000 {
            return Err("chaos probabilities sum past 1".to_string());
        }
        Ok(cfg)
    }

    /// Parses a spec like `panic:0.05,stall:0.02,seed=7`. Keys are
    /// `panic`, `stall` (probabilities in `[0, 1]`) and `seed` (u64);
    /// `:` and `=` both separate key from value; unknown keys are
    /// errors — a typo must not silently disarm a CI chaos gate.
    ///
    /// # Errors
    ///
    /// On any malformed field, unknown key, or out-of-range probability.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once([':', '='])
                .ok_or_else(|| format!("chaos field {field:?} is not key:value"))?;
            let value = value.trim();
            match key.trim() {
                "panic" => cfg.panic_ppm = parse_probability(value)?,
                "stall" => cfg.stall_ppm = parse_probability(value)?,
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|e| format!("chaos seed {value:?}: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown chaos field {other:?} (expected panic, stall, or seed)"
                    ))
                }
            }
        }
        if cfg.panic_ppm + cfg.stall_ppm > 1_000_000 {
            return Err("chaos probabilities sum past 1".to_string());
        }
        Ok(cfg)
    }

    /// Reads and parses [`CHAOS_ENV`]. `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// If the variable is set but malformed (strict: a broken spec must
    /// fail loudly, not silently run without chaos).
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match crate::config::env_var(CHAOS_ENV) {
            Some(raw) if !raw.trim().is_empty() => ChaosConfig::parse(&raw)
                .map(Some)
                .map_err(|e| format!("{CHAOS_ENV}: {e}")),
            _ => Ok(None),
        }
    }

    /// The deterministic draw for one attempt of one task.
    #[must_use]
    pub fn draw(&self, index: usize, attempt: u32) -> Option<ChaosEvent> {
        if self.panic_ppm == 0 && self.stall_ppm == 0 {
            return None;
        }
        let roll =
            u32::try_from(mix(self.seed ^ 0x517C_C1B7_2722_0A95, index, attempt) % 1_000_000)
                .expect("value mod 1e6 fits in u32");
        if roll < self.panic_ppm {
            Some(ChaosEvent::Panic)
        } else if roll < self.panic_ppm + self.stall_ppm {
            Some(ChaosEvent::Stall)
        } else {
            None
        }
    }
}

/// Parses a probability literal into parts-per-million.
fn parse_probability(value: &str) -> Result<u32, String> {
    let p: f64 = value
        .parse()
        .map_err(|e| format!("probability {value:?}: {e}"))?;
    probability_ppm(p)
}

/// Converts a probability in `[0, 1]` to parts-per-million.
fn probability_ppm(p: f64) -> Result<u32, String> {
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    // In-range by the check above; truncation cannot occur.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok((p * 1_000_000.0).round() as u32)
}

// ---------------------------------------------------------------------
// Panic capture
// ---------------------------------------------------------------------

thread_local! {
    /// True while this thread is inside a supervised `catch_unwind`
    /// region — the panic hook stays silent for exactly those panics.
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` under `catch_unwind`, suppressing the default panic banner
/// for panics raised inside it (they are captured and reported
/// structurally, so printing them would spam a chaos sweep's stderr).
/// The hook is installed once and chains to whatever hook was active, so
/// unsupervised panics keep their normal output.
fn quiet_catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.with(Cell::get) {
                previous(info);
            }
        }));
    });
    SUPERVISED.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPERVISED.with(|s| s.set(false));
    result
}

// ---------------------------------------------------------------------
// Checkpoint journal
// ---------------------------------------------------------------------

/// The outcome digest a journal stores for a completed task: enough to
/// reprint a sweep row and to cross-check convergence, without replaying
/// the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeSummary {
    /// Honest nodes that committed the correct value.
    pub correct: usize,
    /// Honest nodes that committed a wrong value.
    pub wrong: usize,
    /// Honest nodes that never decided.
    pub undecided: usize,
    /// Total local broadcasts in the run.
    pub messages: u64,
}

impl OutcomeSummary {
    /// The summary of a computed outcome.
    #[must_use]
    pub fn of(outcome: &Outcome) -> OutcomeSummary {
        OutcomeSummary {
            correct: outcome.committed_correct,
            wrong: outcome.committed_wrong,
            undecided: outcome.undecided,
            messages: outcome.stats.messages_sent,
        }
    }
}

/// Per-task simulator metrics journaled alongside the outcome summary —
/// the per-task slice of the process-wide metrics registry
/// (`crate::obs`), durable so a resumed sweep can still aggregate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMetrics {
    /// Rounds the run executed.
    pub rounds: u32,
    /// Message deliveries.
    pub deliveries: u64,
    /// Deliveries destroyed by jamming.
    pub jammed: u64,
    /// Deliveries destroyed by channel loss.
    pub lost: u64,
}

impl TaskMetrics {
    /// The metrics of a computed outcome.
    #[must_use]
    pub fn of(outcome: &Outcome) -> TaskMetrics {
        TaskMetrics {
            rounds: outcome.stats.rounds,
            deliveries: outcome.stats.deliveries,
            jammed: outcome.stats.jammed_deliveries,
            lost: outcome.stats.lost_deliveries,
        }
    }
}

/// One journal line: the durable record of one task's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Task index within the sweep (input order).
    pub task: usize,
    /// Whether the task completed.
    pub ok: bool,
    /// Attempts spent.
    pub attempts: u32,
    /// Delivery-trace hash of the completed run (determinism witness).
    pub digest: Option<u64>,
    /// Outcome summary of the completed run.
    pub summary: Option<OutcomeSummary>,
    /// Per-task simulator metrics (absent in pre-metrics journals).
    pub metrics: Option<TaskMetrics>,
    /// Error display for a failed task.
    pub error: Option<String>,
}

impl JournalEntry {
    /// Serialises to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "{{\"task\":{},\"status\":\"{}\",\"attempts\":{}",
            self.task,
            if self.ok { "ok" } else { "failed" },
            self.attempts
        );
        if let Some(d) = self.digest {
            line.push_str(&format!(",\"digest\":\"{d:#018x}\""));
        }
        if let Some(s) = &self.summary {
            line.push_str(&format!(
                ",\"correct\":{},\"wrong\":{},\"undecided\":{},\"messages\":{}",
                s.correct, s.wrong, s.undecided, s.messages
            ));
        }
        if let Some(m) = &self.metrics {
            line.push_str(&format!(
                ",\"rounds\":{},\"deliveries\":{},\"jammed\":{},\"lost\":{}",
                m.rounds, m.deliveries, m.jammed, m.lost
            ));
        }
        if let Some(e) = &self.error {
            line.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
        }
        line.push('}');
        line
    }

    /// Parses one JSONL line (strict: the journal is a recovery record,
    /// so a corrupt line is an error, not a shrug).
    ///
    /// # Errors
    ///
    /// On malformed JSON, missing required fields, or bad field types.
    pub fn from_line(line: &str) -> Result<JournalEntry, String> {
        let fields = parse_flat_json(line)?;
        let get_num = |key: &str| -> Result<u64, String> {
            match fields.get(key) {
                Some(JsonValue::Number(n)) => Ok(*n),
                Some(JsonValue::String(_)) => Err(format!("field {key:?} must be a number")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let task = usize::try_from(get_num("task")?).map_err(|e| format!("task: {e}"))?;
        let attempts = u32::try_from(get_num("attempts")?).map_err(|e| format!("attempts: {e}"))?;
        let ok = match fields.get("status") {
            Some(JsonValue::String(s)) if s == "ok" => true,
            Some(JsonValue::String(s)) if s == "failed" => false,
            Some(JsonValue::String(s)) => return Err(format!("unknown status {s:?}")),
            _ => return Err("missing field \"status\"".to_string()),
        };
        let digest = match fields.get("digest") {
            Some(JsonValue::String(s)) => {
                let hex = s
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("digest {s:?} is not 0x-prefixed hex"))?;
                Some(u64::from_str_radix(hex, 16).map_err(|e| format!("digest {s:?}: {e}"))?)
            }
            Some(JsonValue::Number(_)) => return Err("digest must be a hex string".to_string()),
            None => None,
        };
        let summary = if fields.contains_key("correct") {
            Some(OutcomeSummary {
                correct: usize::try_from(get_num("correct")?)
                    .map_err(|e| format!("correct: {e}"))?,
                wrong: usize::try_from(get_num("wrong")?).map_err(|e| format!("wrong: {e}"))?,
                undecided: usize::try_from(get_num("undecided")?)
                    .map_err(|e| format!("undecided: {e}"))?,
                messages: get_num("messages")?,
            })
        } else {
            None
        };
        let metrics = if fields.contains_key("rounds") {
            Some(TaskMetrics {
                rounds: u32::try_from(get_num("rounds")?).map_err(|e| format!("rounds: {e}"))?,
                deliveries: get_num("deliveries")?,
                jammed: get_num("jammed")?,
                lost: get_num("lost")?,
            })
        } else {
            None
        };
        let error = match fields.get("error") {
            Some(JsonValue::String(s)) => Some(s.clone()),
            Some(JsonValue::Number(_)) => return Err("error must be a string".to_string()),
            None => None,
        };
        if ok && summary.is_none() {
            return Err("ok entry lacks an outcome summary".to_string());
        }
        Ok(JournalEntry {
            task,
            ok,
            attempts,
            digest,
            summary,
            metrics,
            error,
        })
    }
}

/// The journal's header line: a fingerprint of the sweep specification,
/// written when the journal is created so a resume against the journal
/// of a *different* sweep is refused instead of silently splicing
/// incompatible checkpoints (the task indices would alias unrelated
/// experiments). Legacy journals have no header and skip the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`sweep_fingerprint`] of the experiment list.
    pub fingerprint: u64,
    /// Number of tasks in the sweep.
    pub tasks: usize,
}

impl JournalHeader {
    /// Serialises to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{{\"fingerprint\":\"{:#018x}\",\"tasks\":{}}}",
            self.fingerprint, self.tasks
        )
    }

    /// Parses a header line.
    ///
    /// # Errors
    ///
    /// On malformed JSON or missing/mistyped fields.
    pub fn from_line(line: &str) -> Result<JournalHeader, String> {
        let fields = parse_flat_json(line)?;
        let fingerprint = match fields.get("fingerprint") {
            Some(JsonValue::String(s)) => {
                let hex = s
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("fingerprint {s:?} is not 0x-prefixed hex"))?;
                u64::from_str_radix(hex, 16).map_err(|e| format!("fingerprint {s:?}: {e}"))?
            }
            Some(JsonValue::Number(_)) => {
                return Err("fingerprint must be a hex string".to_string())
            }
            None => return Err("missing field \"fingerprint\"".to_string()),
        };
        let tasks = match fields.get("tasks") {
            Some(JsonValue::Number(n)) => usize::try_from(*n).map_err(|e| format!("tasks: {e}"))?,
            Some(JsonValue::String(_)) => return Err("tasks must be a number".to_string()),
            None => return Err("missing field \"tasks\"".to_string()),
        };
        Ok(JournalHeader { fingerprint, tasks })
    }
}

/// FNV-1a fingerprint of a sweep specification: folds every experiment's
/// full configuration (its `Debug` rendering — dims, radius, metric,
/// protocol, `t`, placement, fault kind, channel, budgets) plus the task
/// count. Two sweeps fingerprint equal iff their experiment lists are
/// configured identically, which is exactly when their journals are
/// interchangeable.
#[must_use]
pub fn sweep_fingerprint(experiments: &[Experiment]) -> u64 {
    let mut hash = crate::obs::FNV_OFFSET;
    let mut fold = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(crate::obs::FNV_PRIME);
    };
    for e in experiments {
        for b in format!("{e:?}").bytes() {
            fold(b);
        }
        // Record separator: "AB","C" must not collide with "A","BC".
        fold(0xff);
    }
    hash
}

/// Append-only JSONL checkpoint journal. Each completed task appends
/// (and flushes) one [`JournalEntry`] line as it finishes, so a killed
/// sweep loses at most the in-flight tasks. Line *order* is
/// scheduling-dependent; the determinism contract lives in the entries
/// themselves (pure functions of the task), which is why
/// [`Journal::load`] folds last-entry-wins into an index-keyed map.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Creates (truncating) a journal at `path`, making parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// On any I/O failure.
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(File::create(path)?),
        })
    }

    /// [`Journal::create`], then writes `header` as the first line, so
    /// later resumes can verify they are resuming the same sweep.
    ///
    /// # Errors
    ///
    /// On any I/O failure.
    pub fn create_with_header(path: &Path, header: &JournalHeader) -> std::io::Result<Journal> {
        let journal = Journal::create(path)?;
        {
            let mut file = journal
                .file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            writeln!(file, "{}", header.to_line())?;
            file.flush()?;
        }
        Ok(journal)
    }

    /// Reads the header of the journal at `path`, if it has one.
    /// `Ok(None)` for headerless (pre-fingerprint) journals — those
    /// resume without the cross-check.
    ///
    /// # Errors
    ///
    /// On I/O failure opening or reading the file.
    pub fn read_header(path: &Path) -> std::io::Result<Option<JournalHeader>> {
        let reader = BufReader::new(File::open(path)?);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            return Ok(JournalHeader::from_line(&line).ok());
        }
        Ok(None)
    }

    /// Opens a journal for appending (creating it if absent) — the
    /// resume path, where prior entries must survive.
    ///
    /// # Errors
    ///
    /// On any I/O failure.
    pub fn append_to(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }

    /// Where this journal lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry and flushes it to disk.
    ///
    /// # Errors
    ///
    /// On any I/O failure.
    pub fn record(&self, entry: &JournalEntry) -> std::io::Result<()> {
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{}", entry.to_line())?;
        file.flush()
    }

    /// Loads a journal into an index-keyed map, last entry per task
    /// winning (a resumed sweep may re-record a task it re-ran).
    ///
    /// # Errors
    ///
    /// On I/O failure or any malformed line (reported with its line
    /// number).
    pub fn load(path: &Path) -> std::io::Result<BTreeMap<usize, JournalEntry>> {
        let reader = BufReader::new(File::open(path)?);
        let mut entries = BTreeMap::new();
        for (n, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // Header lines are not task entries; the fingerprint
            // cross-check reads them via [`Journal::read_header`].
            if n == 0 && JournalHeader::from_line(&line).is_ok() {
                continue;
            }
            let entry = JournalEntry::from_line(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), n + 1),
                )
            })?;
            entries.insert(entry.task, entry);
        }
        Ok(entries)
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The value shapes the journal format uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JsonValue {
    /// An unsigned integer.
    Number(u64),
    /// A string literal.
    String(String),
}

/// Parses one flat JSON object (string/unsigned-number values only — the
/// exact shape the journal writes; this is not a general JSON parser,
/// and stays std-only because the container has no registry access).
pub(crate) fn parse_flat_json(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut fields = BTreeMap::new();
    let mut chars = body.chars().peekable();
    loop {
        skip_ws(&mut chars);
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::String(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    digits.push(chars.next().expect("peeked digit"));
                }
                JsonValue::Number(
                    digits
                        .parse()
                        .map_err(|e| format!("number for {key:?}: {e}"))?,
                )
            }
            other => return Err(format!("unsupported value start {other:?} for key {key:?}")),
        };
        if fields.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            None => break,
            Some(c) => return Err(format!("expected ',' between fields, found {c:?}")),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses a JSON string literal (cursor at the opening quote).
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("\\u escape {hex:?}: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------
// The supervisor proper
// ---------------------------------------------------------------------

/// Per-attempt context handed to a supervised task body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// Task index within the sweep (input order).
    pub index: usize,
    /// Attempt number, 0-based (0 is the original run).
    pub attempt: u32,
    /// [`retry_seed`]`(index, attempt)` — deterministic per-attempt
    /// entropy for task bodies that want it.
    pub seed: u64,
}

/// Supervisor policy: retries, deadlines, chaos, and checkpointing.
#[derive(Debug, Default)]
pub struct SupervisorConfig {
    /// Maximum attempts per task (at least 1; [`SupervisorConfig::new`]
    /// defaults to 2 — one retry).
    pub max_attempts: u32,
    /// Default round budget threaded into experiments that did not set
    /// their own (`None` disarms the watchdog).
    pub round_budget: Option<u32>,
    /// Treat [`rbcast_sim::StopReason::RoundCap`] as a failure. Off by
    /// default: impossibility experiments legitimately idle at the cap.
    pub fail_on_round_cap: bool,
    /// Chaos injection (test-only; `None` in production).
    pub chaos: Option<ChaosConfig>,
    /// Checkpoint journal to append completed tasks to.
    pub journal: Option<Journal>,
    /// Prior journal state: tasks with an `ok` entry are skipped and
    /// their stored summaries returned as [`TaskReport::Resumed`].
    pub resume: BTreeMap<usize, JournalEntry>,
}

impl SupervisorConfig {
    /// The default policy: 2 attempts, no watchdog, no chaos, no
    /// journal.
    #[must_use]
    pub fn new() -> SupervisorConfig {
        SupervisorConfig {
            max_attempts: 2,
            ..SupervisorConfig::default()
        }
    }

    /// [`SupervisorConfig::new`] with [`CHAOS_ENV`], [`RETRIES_ENV`] and
    /// [`ROUND_BUDGET_ENV`] applied — the bench binaries' entry point.
    ///
    /// # Errors
    ///
    /// If any of the variables is set but malformed.
    pub fn from_env() -> Result<SupervisorConfig, String> {
        let mut cfg = SupervisorConfig::new();
        cfg.chaos = ChaosConfig::from_env()?;
        if let Some(raw) = crate::config::env_var(RETRIES_ENV) {
            cfg.max_attempts = raw
                .trim()
                .parse::<u32>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{RETRIES_ENV}={raw:?} is not a positive integer"))?;
        }
        if let Some(raw) = crate::config::env_var(ROUND_BUDGET_ENV) {
            cfg.round_budget = Some(
                raw.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("{ROUND_BUDGET_ENV}={raw:?} is not a positive integer")
                    })?,
            );
        }
        Ok(cfg)
    }

    /// Sets the attempt bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the default round budget.
    #[must_use]
    pub fn with_round_budget(mut self, budget: Option<u32>) -> Self {
        self.round_budget = budget;
        self
    }

    /// Sets whether a round-cap stop quarantines the task.
    #[must_use]
    pub fn with_fail_on_round_cap(mut self, fail: bool) -> Self {
        self.fail_on_round_cap = fail;
        self
    }

    /// Arms chaos injection.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<ChaosConfig>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Attaches a checkpoint journal.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Loads prior journal state for resumption.
    #[must_use]
    pub fn resume_from(mut self, entries: BTreeMap<usize, JournalEntry>) -> Self {
        self.resume = entries;
        self
    }

    fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Outcome of one supervised generic task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Supervised<R> {
    /// The task completed (possibly after retries).
    Done {
        /// Its result.
        value: R,
        /// Attempts spent (1 = first try).
        attempts: u32,
    },
    /// Every attempt failed; the task is quarantined.
    Failed {
        /// The terminal error ([`TaskError::Retried`] when more than
        /// one attempt was made).
        error: TaskError,
        /// Attempts spent.
        attempts: u32,
    },
}

impl<R> Supervised<R> {
    /// The completed value, if any.
    pub fn value(&self) -> Option<&R> {
        match self {
            Supervised::Done { value, .. } => Some(value),
            Supervised::Failed { .. } => None,
        }
    }
}

/// Runs one task under the full supervision ladder: chaos draw →
/// `catch_unwind` → structured error → bounded retry.
fn run_one<T, R, F>(config: &SupervisorConfig, index: usize, task: &T, body: &F) -> Supervised<R>
where
    F: Fn(&TaskCtx, &T) -> Result<R, TaskError>,
{
    let bound = config.attempts();
    let mut last: Option<TaskError> = None;
    for attempt in 0..bound {
        let chaos_event = config.chaos.and_then(|c| c.draw(index, attempt));
        if matches!(chaos_event, Some(ChaosEvent::Stall)) {
            // A synthetic stall: what the watchdog would report, without
            // burning rounds to prove it.
            last = Some(TaskError::DeadlineExceeded {
                round_budget: config.round_budget.unwrap_or(0),
            });
            continue;
        }
        let ctx = TaskCtx {
            index,
            attempt,
            seed: retry_seed(index, attempt),
        };
        let caught = quiet_catch_unwind(|| {
            if matches!(chaos_event, Some(ChaosEvent::Panic)) {
                // Chaos mode exercises the real unwind path, not a
                // simulated one — this panic is the whole point.
                // audit:allow(panic): deliberate chaos-injected panic
                panic!("chaos: injected panic (task {index}, attempt {attempt})");
            }
            body(&ctx, task)
        });
        match caught {
            Ok(Ok(value)) => {
                return Supervised::Done {
                    value,
                    attempts: attempt + 1,
                }
            }
            Ok(Err(e)) => last = Some(e),
            Err(payload) => {
                last = Some(TaskError::Panicked {
                    message: payload_message(payload.as_ref()),
                });
            }
        }
    }
    let last = last.unwrap_or(TaskError::Invariant {
        message: "zero attempts configured".to_string(),
    });
    let error = if bound > 1 {
        TaskError::Retried {
            attempts: bound,
            last: Box::new(last),
        }
    } else {
        last
    };
    Supervised::Failed {
        error,
        attempts: bound,
    }
}

/// Supervises an arbitrary task list on the deterministic engine: each
/// task body runs under panic isolation with bounded deterministic
/// retry, and the result vector is in input order with one
/// [`Supervised`] cell per task — never fewer. Journalling and resume
/// are experiment-shaped concerns and live in
/// [`run_experiments_supervised`]; this entry point applies
/// `max_attempts` and `chaos` only.
pub fn supervise<T, R, F>(
    tasks: &[T],
    threads: usize,
    config: &SupervisorConfig,
    body: F,
) -> Vec<Supervised<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&TaskCtx, &T) -> Result<R, TaskError> + Sync,
{
    let slots = engine::run_indexed_partial(tasks, threads, |i, t| run_one(config, i, t, &body));
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or(Supervised::Failed {
                error: TaskError::Invariant {
                    message: "engine produced no result for this task \
                              (worker lost before hand-off)"
                        .to_string(),
                },
                attempts: 0,
            })
        })
        .collect()
}

/// One task's slot in a supervised sweep report.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskReport {
    /// Computed this run.
    Done {
        /// The experiment's outcome.
        outcome: Outcome,
        /// Delivery-trace hash (the determinism witness and journal
        /// digest).
        digest: u64,
        /// Attempts spent.
        attempts: u32,
    },
    /// Skipped: the resume journal already holds a completed record.
    Resumed {
        /// The stored summary (sweep rows reprint from this).
        summary: OutcomeSummary,
        /// The stored digest.
        digest: Option<u64>,
    },
    /// Quarantined after exhausting its attempts.
    Failed {
        /// The terminal error.
        error: TaskError,
        /// Attempts spent.
        attempts: u32,
    },
}

impl TaskReport {
    /// The computed outcome, if this task ran to completion this run.
    #[must_use]
    pub fn outcome(&self) -> Option<&Outcome> {
        match self {
            TaskReport::Done { outcome, .. } => Some(outcome),
            _ => None,
        }
    }

    /// The row summary, whether computed or resumed.
    #[must_use]
    pub fn summary(&self) -> Option<OutcomeSummary> {
        match self {
            TaskReport::Done { outcome, .. } => Some(OutcomeSummary::of(outcome)),
            TaskReport::Resumed { summary, .. } => Some(*summary),
            TaskReport::Failed { .. } => None,
        }
    }

    /// The digest, whether computed or resumed.
    #[must_use]
    pub fn digest(&self) -> Option<u64> {
        match self {
            TaskReport::Done { digest, .. } => Some(*digest),
            TaskReport::Resumed { digest, .. } => *digest,
            TaskReport::Failed { .. } => None,
        }
    }
}

/// A supervised sweep's full report: one [`TaskReport`] per experiment,
/// in input order — completed results are never withheld because other
/// tasks failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-task reports, indexed like the input experiments.
    pub tasks: Vec<TaskReport>,
}

impl SweepReport {
    /// The quarantined tasks: `(input index, error)` pairs.
    #[must_use]
    pub fn quarantined(&self) -> Vec<(usize, &TaskError)> {
        self.tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                TaskReport::Failed { error, .. } => Some((i, error)),
                _ => None,
            })
            .collect()
    }

    /// True when every task completed (computed or resumed).
    #[must_use]
    pub fn fully_healthy(&self) -> bool {
        self.quarantined().is_empty()
    }

    /// Healthy outcomes in input order, `None` for quarantined or
    /// resumed-without-recompute slots — the shape the bench harness
    /// consumes.
    #[must_use]
    pub fn outcomes(&self) -> Vec<Option<&Outcome>> {
        self.tasks.iter().map(TaskReport::outcome).collect()
    }
}

/// The supervised counterpart of [`engine::run_experiments`]: runs every
/// experiment under panic isolation, the configured watchdog budget, and
/// bounded retry; journals completions as they happen; honours a resume
/// map; and always returns a full-length, input-ordered report.
///
/// Healthy slots are byte-identical to what the unsupervised engine
/// produces for the same experiments — supervision only adds an
/// envelope, never perturbs a run.
#[must_use]
pub fn run_experiments_supervised(
    experiments: &[Experiment],
    threads: usize,
    config: &SupervisorConfig,
) -> SweepReport {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<[crate::obs::Counter; 4]> = OnceLock::new();
    let [done_c, retries_c, quarantined_c, resumed_c] = COUNTERS.get_or_init(|| {
        [
            crate::obs::counter("supervisor/tasks"),
            crate::obs::counter("supervisor/retries"),
            crate::obs::counter("supervisor/quarantined"),
            crate::obs::counter("supervisor/resumed"),
        ]
    });
    let _span = crate::obs::span("sweep/supervised");

    // Thread the default round budget into experiments lacking one.
    let prepared: Vec<Experiment> = experiments
        .iter()
        .map(|e| {
            if e.round_budget().is_none() && config.round_budget.is_some() {
                e.clone().with_round_budget(config.round_budget)
            } else {
                e.clone()
            }
        })
        .collect();
    let _arenas = engine::prewarm_arenas(&prepared);

    let journal_sick = AtomicBool::new(false);
    let record = |entry: &JournalEntry| {
        if let Some(journal) = &config.journal {
            if let Err(e) = journal.record(entry) {
                // Journalling is a convenience, not a correctness
                // dependency: warn once, keep sweeping.
                // audit:allow(atomic-ordering): once-flag for a warning, guards no data
                if !journal_sick.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: checkpoint journal {} unwritable: {e}",
                        journal.path().display()
                    );
                }
            }
        }
    };

    let body = |_ctx: &TaskCtx, e: &Experiment| -> Result<(Outcome, u64), TaskError> {
        let (outcome, digest) = e.run_traced();
        match outcome.stats.stop_reason {
            StopReason::DeadlineExceeded => Err(TaskError::DeadlineExceeded {
                round_budget: e.round_budget().unwrap_or(outcome.stats.rounds),
            }),
            StopReason::RoundCap if config.fail_on_round_cap => Err(TaskError::RoundCapHit {
                rounds: outcome.stats.rounds,
            }),
            _ => Ok((outcome, digest)),
        }
    };

    let slots = engine::run_indexed_partial(&prepared, threads, |i, e| {
        if let Some(entry) = config.resume.get(&i) {
            if entry.ok {
                if let Some(summary) = entry.summary {
                    resumed_c.incr();
                    return TaskReport::Resumed {
                        summary,
                        digest: entry.digest,
                    };
                }
            }
        }
        let report = match run_one(config, i, e, &body) {
            Supervised::Done {
                value: (outcome, digest),
                attempts,
            } => TaskReport::Done {
                outcome,
                digest,
                attempts,
            },
            Supervised::Failed { error, attempts } => TaskReport::Failed { error, attempts },
        };
        match &report {
            TaskReport::Done {
                outcome,
                digest,
                attempts,
            } => {
                done_c.incr();
                retries_c.add(u64::from(attempts.saturating_sub(1)));
                record(&JournalEntry {
                    task: i,
                    ok: true,
                    attempts: *attempts,
                    digest: Some(*digest),
                    summary: Some(OutcomeSummary::of(outcome)),
                    metrics: Some(TaskMetrics::of(outcome)),
                    error: None,
                });
            }
            TaskReport::Failed { error, attempts } => {
                quarantined_c.incr();
                retries_c.add(u64::from(attempts.saturating_sub(1)));
                record(&JournalEntry {
                    task: i,
                    ok: false,
                    attempts: *attempts,
                    digest: None,
                    summary: None,
                    metrics: None,
                    error: Some(error.to_string()),
                });
            }
            TaskReport::Resumed { .. } => {}
        }
        report
    });

    SweepReport {
        tasks: slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or(TaskReport::Failed {
                    error: TaskError::Invariant {
                        message: "engine produced no result for this task \
                                  (worker lost before hand-off)"
                            .to_string(),
                    },
                    attempts: 0,
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;

    #[test]
    fn retry_seed_is_pure_and_attempt_sensitive() {
        assert_eq!(retry_seed(7, 0), retry_seed(7, 0));
        assert_ne!(retry_seed(7, 0), retry_seed(7, 1));
        assert_ne!(retry_seed(7, 0), retry_seed(8, 0));
    }

    #[test]
    fn chaos_parse_accepts_both_separators() {
        let a = ChaosConfig::parse("panic:0.05,stall:0.02,seed=9").expect("valid spec");
        let b = ChaosConfig::parse("panic=0.05, stall=0.02, seed:9").expect("valid spec");
        assert_eq!(a, b);
        assert_eq!(a.panic_ppm, 50_000);
        assert_eq!(a.stall_ppm, 20_000);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn chaos_parse_rejects_garbage() {
        assert!(ChaosConfig::parse("panic:1.5").is_err());
        assert!(ChaosConfig::parse("panic:-0.1").is_err());
        assert!(ChaosConfig::parse("panics:0.1").is_err());
        assert!(ChaosConfig::parse("panic").is_err());
        assert!(ChaosConfig::parse("seed:abc").is_err());
        assert!(ChaosConfig::parse("panic:0.7,stall:0.7").is_err());
    }

    #[test]
    fn chaos_draw_is_deterministic_and_roughly_calibrated() {
        let chaos = ChaosConfig::new(0.05, 0.02, 42).expect("valid probabilities");
        let hits: Vec<_> = (0..10_000).map(|i| chaos.draw(i, 0)).collect();
        assert_eq!(
            hits,
            (0..10_000).map(|i| chaos.draw(i, 0)).collect::<Vec<_>>()
        );
        let panics = hits
            .iter()
            .filter(|h| **h == Some(ChaosEvent::Panic))
            .count();
        let stalls = hits
            .iter()
            .filter(|h| **h == Some(ChaosEvent::Stall))
            .count();
        assert!((300..=700).contains(&panics), "panics: {panics}");
        assert!((100..=350).contains(&stalls), "stalls: {stalls}");
        // A different attempt re-rolls (retries can escape chaos).
        assert!((0..10_000).any(|i| chaos.draw(i, 0) != chaos.draw(i, 1)));
    }

    #[test]
    fn disarmed_chaos_never_fires() {
        let chaos = ChaosConfig::default();
        assert!((0..1_000).all(|i| chaos.draw(i, 0).is_none()));
    }

    #[test]
    fn supervise_isolates_panics_and_returns_the_rest() {
        let tasks: Vec<u32> = (0..20).collect();
        let config = SupervisorConfig::new().with_max_attempts(1);
        for threads in [1, 2, 8] {
            let out = supervise(&tasks, threads, &config, |_, &t| {
                assert!(t != 13, "unlucky task");
                Ok(t * 2)
            });
            assert_eq!(out.len(), tasks.len());
            for (i, s) in out.iter().enumerate() {
                if i == 13 {
                    match s {
                        Supervised::Failed {
                            error: TaskError::Panicked { message },
                            attempts: 1,
                        } => assert!(message.contains("unlucky"), "{message}"),
                        other => panic!("expected panic quarantine, got {other:?}"),
                    }
                } else {
                    assert_eq!(s.value(), Some(&(u32::try_from(i).expect("small") * 2)));
                }
            }
        }
    }

    #[test]
    fn retries_wrap_the_last_error() {
        let out = supervise(
            &[0u32],
            1,
            &SupervisorConfig::new().with_max_attempts(3),
            |ctx, _| -> Result<u32, TaskError> {
                Err(TaskError::Invariant {
                    message: format!("attempt {}", ctx.attempt),
                })
            },
        );
        match &out[0] {
            Supervised::Failed {
                error: TaskError::Retried { attempts: 3, last },
                attempts: 3,
            } => {
                assert_eq!(
                    **last,
                    TaskError::Invariant {
                        message: "attempt 2".to_string()
                    }
                );
            }
            other => panic!("expected retried failure, got {other:?}"),
        }
    }

    #[test]
    fn a_flaky_task_succeeds_on_retry() {
        let out = supervise(
            &[0u32],
            1,
            &SupervisorConfig::new().with_max_attempts(2),
            |ctx, _| {
                assert!(ctx.attempt != 0, "first attempt always dies");
                Ok(ctx.seed)
            },
        );
        match &out[0] {
            Supervised::Done { value, attempts: 2 } => assert_eq!(*value, retry_seed(0, 1)),
            other => panic!("expected second-attempt success, got {other:?}"),
        }
    }

    #[test]
    fn journal_roundtrips_both_entry_shapes() {
        let ok = JournalEntry {
            task: 4,
            ok: true,
            attempts: 2,
            digest: Some(0x0123_4567_89ab_cdef),
            summary: Some(OutcomeSummary {
                correct: 140,
                wrong: 0,
                undecided: 4,
                messages: 512,
            }),
            metrics: Some(TaskMetrics {
                rounds: 17,
                deliveries: 480,
                jammed: 3,
                lost: 1,
            }),
            error: None,
        };
        let failed = JournalEntry {
            task: 5,
            ok: false,
            attempts: 2,
            digest: None,
            summary: None,
            metrics: None,
            error: Some("panicked: chaos \"quoted\"\nline2 \\ backslash".to_string()),
        };
        for entry in [&ok, &failed] {
            let line = entry.to_line();
            assert_eq!(&JournalEntry::from_line(&line).expect("roundtrip"), entry);
        }
    }

    #[test]
    fn journal_parsing_is_strict() {
        assert!(JournalEntry::from_line("not json").is_err());
        assert!(JournalEntry::from_line("{\"task\":1}").is_err());
        assert!(
            JournalEntry::from_line("{\"task\":1,\"status\":\"maybe\",\"attempts\":1}").is_err()
        );
        // ok entries must carry a summary (resume reprints rows from it)
        assert!(JournalEntry::from_line("{\"task\":1,\"status\":\"ok\",\"attempts\":1}").is_err());
    }

    #[test]
    fn journal_records_and_reloads() {
        let dir = std::env::temp_dir().join("rbcast-supervisor-test");
        let path = dir.join("journal-roundtrip.jsonl");
        let journal = Journal::create(&path).expect("create journal");
        for task in 0..3usize {
            journal
                .record(&JournalEntry {
                    task,
                    ok: task != 1,
                    attempts: 1,
                    digest: (task != 1).then_some(7),
                    summary: (task != 1).then_some(OutcomeSummary {
                        correct: 1,
                        wrong: 0,
                        undecided: 0,
                        messages: 9,
                    }),
                    metrics: None,
                    error: (task == 1).then(|| "boom".to_string()),
                })
                .expect("record");
        }
        // Task 1 re-recorded ok: last entry wins on load.
        journal
            .record(&JournalEntry {
                task: 1,
                ok: true,
                attempts: 2,
                digest: Some(8),
                summary: Some(OutcomeSummary {
                    correct: 1,
                    wrong: 0,
                    undecided: 0,
                    messages: 9,
                }),
                metrics: None,
                error: None,
            })
            .expect("record");
        let loaded = Journal::load(&path).expect("load");
        assert_eq!(loaded.len(), 3);
        assert!(loaded[&1].ok);
        assert_eq!(loaded[&1].attempts, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_fingerprint_is_spec_sensitive() {
        let a = vec![Experiment::new(1, ProtocolKind::Flood)];
        let b = vec![Experiment::new(2, ProtocolKind::Flood)];
        let c = vec![Experiment::new(1, ProtocolKind::Cpa)];
        let aa = vec![
            Experiment::new(1, ProtocolKind::Flood),
            Experiment::new(1, ProtocolKind::Flood),
        ];
        assert_eq!(sweep_fingerprint(&a), sweep_fingerprint(&a));
        assert_ne!(sweep_fingerprint(&a), sweep_fingerprint(&b), "radius");
        assert_ne!(sweep_fingerprint(&a), sweep_fingerprint(&c), "protocol");
        assert_ne!(sweep_fingerprint(&a), sweep_fingerprint(&aa), "task count");
        assert_ne!(
            sweep_fingerprint(&a),
            sweep_fingerprint(&[a[0].clone().with_t(1)]),
            "fault budget"
        );
    }

    #[test]
    fn journal_header_roundtrips_and_load_skips_it() {
        let header = JournalHeader {
            fingerprint: 0x0123_4567_89ab_cdef,
            tasks: 3,
        };
        assert_eq!(
            JournalHeader::from_line(&header.to_line()).expect("roundtrip"),
            header
        );
        assert!(JournalHeader::from_line("{\"tasks\":3}").is_err());
        assert!(JournalHeader::from_line("{\"fingerprint\":\"0xzz\",\"tasks\":3}").is_err());

        let dir = std::env::temp_dir().join("rbcast-supervisor-test");
        let path = dir.join("journal-header.jsonl");
        let journal = Journal::create_with_header(&path, &header).expect("create");
        let entry = JournalEntry {
            task: 0,
            ok: false,
            attempts: 1,
            digest: None,
            summary: None,
            metrics: None,
            error: Some("boom".to_string()),
        };
        journal.record(&entry).expect("record");
        assert_eq!(Journal::read_header(&path).expect("read"), Some(header));
        let loaded = Journal::load(&path).expect("load");
        assert_eq!(loaded.len(), 1, "the header line is not a task entry");
        assert_eq!(loaded[&0], entry);

        // Headerless (legacy) journals read back `None` and still load.
        let legacy = dir.join("journal-legacy.jsonl");
        let j = Journal::create(&legacy).expect("create");
        j.record(&entry).expect("record");
        assert_eq!(Journal::read_header(&legacy).expect("read"), None);
        assert_eq!(Journal::load(&legacy).expect("load").len(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&legacy).ok();
    }

    #[test]
    fn supervised_experiments_match_the_plain_engine() {
        let experiments: Vec<Experiment> = (0..4u64)
            .map(|seed| {
                Experiment::new(1, ProtocolKind::Flood)
                    .with_t(2)
                    .with_placement(rbcast_adversary::Placement::RandomLocal {
                        t: 2,
                        seed,
                        attempts: 40,
                    })
            })
            .collect();
        let plain = engine::run_experiments_traced(&experiments, 2);
        let report = run_experiments_supervised(&experiments, 2, &SupervisorConfig::new());
        assert!(report.fully_healthy());
        for (task, (outcome, hash)) in report.tasks.iter().zip(&plain) {
            assert_eq!(task.outcome(), Some(outcome));
            assert_eq!(task.digest(), Some(*hash));
        }
    }

    #[test]
    fn deadline_exceeded_tasks_are_quarantined_not_fatal() {
        let experiments: Vec<Experiment> = vec![
            Experiment::new(1, ProtocolKind::Flood),
            // Budget 1 cannot finish a flood on the default torus.
            Experiment::new(1, ProtocolKind::Flood).with_round_budget(Some(1)),
            Experiment::new(1, ProtocolKind::Flood),
        ];
        let config = SupervisorConfig::new().with_max_attempts(1);
        let report = run_experiments_supervised(&experiments, 2, &config);
        assert_eq!(report.quarantined().len(), 1);
        let (index, error) = report.quarantined()[0];
        assert_eq!(index, 1);
        assert_eq!(*error, TaskError::DeadlineExceeded { round_budget: 1 });
        // The healthy neighbours are untouched.
        assert!(report.tasks[0]
            .outcome()
            .is_some_and(Outcome::all_honest_correct));
        assert!(report.tasks[2]
            .outcome()
            .is_some_and(Outcome::all_honest_correct));
    }

    #[test]
    fn resume_skips_completed_tasks_and_reruns_failures() {
        let experiments: Vec<Experiment> = (0..3)
            .map(|_| Experiment::new(1, ProtocolKind::Flood))
            .collect();
        // A journal claiming task 0 finished and task 1 failed.
        let mut resume = BTreeMap::new();
        resume.insert(
            0,
            JournalEntry {
                task: 0,
                ok: true,
                attempts: 1,
                digest: Some(0xdead),
                summary: Some(OutcomeSummary {
                    correct: 999,
                    wrong: 0,
                    undecided: 0,
                    messages: 1,
                }),
                metrics: None,
                error: None,
            },
        );
        resume.insert(
            1,
            JournalEntry {
                task: 1,
                ok: false,
                attempts: 2,
                digest: None,
                summary: None,
                metrics: None,
                error: Some("panicked: chaos".to_string()),
            },
        );
        let config = SupervisorConfig::new().resume_from(resume);
        let report = run_experiments_supervised(&experiments, 2, &config);
        // Task 0: reprinted from the journal verbatim (even the bogus
        // summary — resume trusts its checkpoint).
        match &report.tasks[0] {
            TaskReport::Resumed { summary, digest } => {
                assert_eq!(summary.correct, 999);
                assert_eq!(*digest, Some(0xdead));
            }
            other => panic!("expected resumed task, got {other:?}"),
        }
        // Tasks 1 (failed) and 2 (missing) were recomputed.
        assert!(report.tasks[1].outcome().is_some());
        assert!(report.tasks[2].outcome().is_some());
    }

    #[test]
    fn chaos_run_quarantines_deterministically_and_healthy_rows_match() {
        let experiments: Vec<Experiment> = (0..24u64)
            .map(|seed| {
                Experiment::new(1, ProtocolKind::Flood)
                    .with_t(2)
                    .with_placement(rbcast_adversary::Placement::RandomLocal {
                        t: 2,
                        seed,
                        attempts: 40,
                    })
            })
            .collect();
        // High rates + no retry so quarantines certainly appear.
        let chaos = ChaosConfig::new(0.25, 0.15, 1).expect("valid probabilities");
        let config = SupervisorConfig::new()
            .with_max_attempts(1)
            .with_chaos(Some(chaos));
        let baseline = engine::run_experiments_traced(&experiments, 1);
        let reports: Vec<SweepReport> = [1usize, 2, 8]
            .iter()
            .map(|&threads| run_experiments_supervised(&experiments, threads, &config))
            .collect();
        assert!(
            !reports[0].fully_healthy(),
            "chaos at 25%/15% over 24 tasks must quarantine something"
        );
        for report in &reports {
            // Identical quarantine set at every thread count…
            assert_eq!(
                report
                    .quarantined()
                    .iter()
                    .map(|(i, _)| *i)
                    .collect::<Vec<_>>(),
                reports[0]
                    .quarantined()
                    .iter()
                    .map(|(i, _)| *i)
                    .collect::<Vec<_>>()
            );
            // …and healthy slots byte-identical to the fault-free run.
            for (i, task) in report.tasks.iter().enumerate() {
                if let TaskReport::Done {
                    outcome, digest, ..
                } = task
                {
                    assert_eq!((outcome, *digest), (&baseline[i].0, baseline[i].1));
                }
            }
        }
        // With a retry allowed, strictly fewer (usually zero) quarantines.
        let retrying = SupervisorConfig::new()
            .with_max_attempts(2)
            .with_chaos(Some(chaos));
        let retried = run_experiments_supervised(&experiments, 2, &retrying);
        assert!(retried.quarantined().len() < reports[0].quarantined().len());
    }
}
