//! The paper's fault-tolerance thresholds, as executable formulas.
//!
//! | Result | Threshold | Function |
//! |--------|-----------|----------|
//! | Theorem 1 (Byzantine, L∞, exact) | possible iff `t < ½·r(2r+1)` | [`byzantine_max_t`] |
//! | Theorems 4–5 (crash-stop, L∞, exact) | possible iff `t < r(2r+1)` | [`crash_max_t`] |
//! | Theorem 6 (CPA, L∞) | possible for `t ≤ ⌊⅔·r²⌋` | [`cpa_guaranteed_t`] |
//! | Koo's CPA bound (superseded) | `t < ½(r(r+√(r/2)+1))` | [`koo_cpa_bound`] |
//! | §VIII (Byzantine, L2, approximate) | `t ≲ 0.23·πr²` | [`l2_byzantine_estimate`] |
//! | §VIII (crash-stop, L2, approximate) | `t ≲ 0.46·πr²` | [`l2_crash_estimate`] |

/// `r(2r+1)` — the pivotal quantity of the L∞ analysis.
#[must_use]
pub fn r_2r_plus_1(r: u32) -> u64 {
    let r = u64::from(r);
    r * (2 * r + 1)
}

/// Largest `t` for which Byzantine reliable broadcast is achievable in
/// L∞ (Theorem 1): the greatest integer strictly below `½·r(2r+1)`.
///
/// ```
/// use rbcast_core::thresholds::byzantine_max_t;
/// assert_eq!(byzantine_max_t(1), 1);  // t < 1.5
/// assert_eq!(byzantine_max_t(2), 4);  // t < 5
/// assert_eq!(byzantine_max_t(3), 10); // t < 10.5
/// ```
#[must_use]
pub fn byzantine_max_t(r: u32) -> u64 {
    (r_2r_plus_1(r) - 1) / 2
}

/// Smallest `t` rendering Byzantine broadcast impossible (Koo's bound,
/// matched exactly by Theorem 1): `⌈½·r(2r+1)⌉`.
#[must_use]
pub fn byzantine_impossible_t(r: u32) -> u64 {
    r_2r_plus_1(r).div_ceil(2)
}

/// Largest tolerable `t` for crash-stop faults in L∞ (Theorem 5):
/// `r(2r+1) − 1`.
#[must_use]
pub fn crash_max_t(r: u32) -> u64 {
    r_2r_plus_1(r) - 1
}

/// Smallest `t` rendering crash-stop broadcast impossible (Theorem 4):
/// `r(2r+1)`.
#[must_use]
pub fn crash_impossible_t(r: u32) -> u64 {
    r_2r_plus_1(r)
}

/// Largest `t` Theorem 6 guarantees the simple protocol (CPA) tolerates:
/// `⌊⅔·r²⌋`.
///
/// This is the *single* definition of the bound — call sites must not
/// inline the formula. The product is formed in `u128` so the division
/// by 3 happens before any narrowing: exact for every `u32` radius.
///
/// # Panics
///
/// Never panics: `2·r² / 3` for `r ≤ u32::MAX` always fits in `u64`.
#[must_use]
pub fn cpa_guaranteed_t(r: u32) -> u64 {
    let twice_r_squared = 2u128 * u128::from(r) * u128::from(r);
    u64::try_from(twice_r_squared / 3).expect("2r²/3 fits in u64 for all u32 radii")
}

/// Koo's earlier CPA achievability bound, `½(r(r+√(r/2)+1))`, which
/// Theorem 6 dominates for all sufficiently large `r`.
#[must_use]
pub fn koo_cpa_bound(r: u32) -> f64 {
    let r = f64::from(r);
    0.5 * (r * (r + (r / 2.0).sqrt() + 1.0))
}

/// §VIII estimate of the Byzantine threshold in the Euclidean metric:
/// `0.23·πr²` (achievability side; impossibility `≈ 0.3·πr²`).
#[must_use]
pub fn l2_byzantine_estimate(r: u32) -> f64 {
    0.23 * std::f64::consts::PI * f64::from(r) * f64::from(r)
}

/// §VIII estimate of the crash-stop threshold in the Euclidean metric:
/// `0.46·πr²` (impossibility `≈ 0.6·πr²`).
#[must_use]
pub fn l2_crash_estimate(r: u32) -> f64 {
    0.46 * std::f64::consts::PI * f64::from(r) * f64::from(r)
}

/// Fraction of a closed L∞ neighborhood (`(2r+1)²` nodes) the Byzantine
/// threshold represents — approaches ¼ ("slightly less than one-fourth").
#[must_use]
pub fn byzantine_fraction(r: u32) -> f64 {
    byzantine_max_t(r) as f64 / ((2 * u64::from(r) + 1).pow(2)) as f64
}

/// Fraction for crash-stop — approaches ½ ("slightly less than half").
#[must_use]
pub fn crash_fraction(r: u32) -> f64 {
    crash_max_t(r) as f64 / ((2 * u64::from(r) + 1).pow(2)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byzantine_thresholds_table() {
        // (r, t_max, first impossible)
        let rows = [(1, 1, 2), (2, 4, 5), (3, 10, 11), (4, 17, 18), (5, 27, 28)];
        for (r, t_max, imp) in rows {
            assert_eq!(byzantine_max_t(r), t_max, "r={r}");
            assert_eq!(byzantine_impossible_t(r), imp, "r={r}");
            assert_eq!(byzantine_max_t(r) + 1, byzantine_impossible_t(r));
        }
    }

    #[test]
    fn exactness_no_gap() {
        // Theorem 1 matches Koo's impossibility bound exactly: the
        // achievable and impossible regions tile the integers.
        for r in 1..=50 {
            assert_eq!(byzantine_max_t(r) + 1, byzantine_impossible_t(r), "r={r}");
            assert_eq!(crash_max_t(r) + 1, crash_impossible_t(r), "r={r}");
        }
    }

    #[test]
    fn crash_threshold_is_about_twice_byzantine() {
        for r in 1..=20 {
            let ratio = crash_max_t(r) as f64 / byzantine_max_t(r) as f64;
            assert!((1.8..=2.3).contains(&ratio), "r={r} ratio={ratio}");
        }
    }

    #[test]
    fn cpa_guarantee_below_exact_threshold() {
        // CPA's ⅔r² sits strictly below the indirect protocol's
        // ½r(2r+1) = r² + r/2 for every r ≥ 1.
        for r in 1..=100 {
            assert!(cpa_guaranteed_t(r) <= byzantine_max_t(r), "r={r}");
        }
    }

    #[test]
    fn cpa_guarantee_survives_extreme_radii() {
        // The naive u64 product 2·r² overflows for r ≥ 2³¹·√2; the u128
        // intermediate keeps the floor exact all the way to u32::MAX.
        assert_eq!(cpa_guaranteed_t(1), 0);
        assert_eq!(cpa_guaranteed_t(2), 2);
        assert_eq!(cpa_guaranteed_t(3), 6);
        assert_eq!(
            cpa_guaranteed_t(u32::MAX),
            ((2u128 * u128::from(u32::MAX) * u128::from(u32::MAX)) / 3) as u64
        );
        // Monotonic in r around the overflow frontier.
        let big = 3_037_000_499; // ⌊√(u64::MAX/2)⌋ — last r safe for u64 math
        assert!(cpa_guaranteed_t(big) < cpa_guaranteed_t(big + 1));
    }

    #[test]
    fn theorem6_dominates_koo_asymptotically() {
        let mut dominated_from = None;
        for r in 2..=200u32 {
            if cpa_guaranteed_t(r) as f64 > koo_cpa_bound(r) {
                dominated_from.get_or_insert(r);
            } else {
                dominated_from = None;
            }
        }
        let from = dominated_from.expect("Theorem 6 never dominates");
        assert!(from <= 20, "domination starts at r={from}");
    }

    #[test]
    fn fractions_approach_quarter_and_half() {
        assert!((byzantine_fraction(1000) - 0.25).abs() < 0.001);
        assert!((crash_fraction(1000) - 0.5).abs() < 0.001);
        // and from below
        assert!(byzantine_fraction(1000) < 0.25);
        assert!(crash_fraction(1000) < 0.5);
    }

    #[test]
    fn l2_estimates_ordering() {
        for r in 2..=30 {
            assert!(l2_byzantine_estimate(r) < l2_crash_estimate(r));
            // L2 thresholds are below the L∞ ones (smaller neighborhoods)
            assert!(l2_byzantine_estimate(r) < byzantine_max_t(r) as f64 + 1.0);
        }
    }
}
