//! Cross-thread-count determinism of the parallel sweep engine.
//!
//! The engine's contract is that a sweep's output is **byte-identical**
//! for every worker-thread count, including 1 (the serial baseline).
//! These tests pin that contract on a mixed experiment grid: ordered
//! outcomes AND per-run delivery-trace hashes must agree at 1, 2, and 8
//! threads. Under `--features debug-invariants` each run additionally
//! replays itself on a second thread and asserts the same trace hash, so
//! this test doubles as the engine-level replay gate in CI.

use rbcast_adversary::Placement;
use rbcast_core::{engine, percolation, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Torus;

/// A representative sweep: three protocol families, adversarial and
/// randomized placements, seeds fixed at construction time.
fn sweep_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for seed in 0..4u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Flood)
                .with_t(2)
                .with_placement(Placement::RandomLocal {
                    t: 2,
                    seed,
                    attempts: 40,
                })
                .with_fault_kind(FaultKind::CrashStop),
        );
    }
    for seed in 0..2u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Cpa)
                .with_t(0)
                .with_placement(Placement::Bernoulli { p: 0.1, seed })
                .with_fault_kind(FaultKind::Silent),
        );
    }
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Liar),
    );
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Forger),
    );
    grid
}

#[test]
fn sweep_outcomes_and_trace_hashes_identical_at_1_2_8_threads() {
    let experiments = sweep_grid();
    let baseline = engine::run_experiments_traced(&experiments, 1);
    assert_eq!(baseline.len(), experiments.len());
    for threads in [2usize, 8] {
        let other = engine::run_experiments_traced(&experiments, threads);
        assert_eq!(
            baseline, other,
            "sweep output diverged between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn percolation_rows_identical_across_thread_counts() {
    let torus = Torus::for_radius(1);
    let ps = [0.0, 0.2, 0.4];
    let baseline = percolation::sweep_threaded(1, &torus, &ps, 4, 1);
    for threads in [2usize, 8] {
        let other = percolation::sweep_threaded(1, &torus, &ps, 4, threads);
        assert_eq!(
            baseline, other,
            "percolation rows diverged between 1 and {threads} worker threads"
        );
    }
}
