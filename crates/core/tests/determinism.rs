//! Cross-thread-count determinism of the parallel sweep engine.
//!
//! The engine's contract is that a sweep's output is **byte-identical**
//! for every worker-thread count, including 1 (the serial baseline).
//! These tests pin that contract on a mixed experiment grid: ordered
//! outcomes AND per-run delivery-trace hashes must agree at 1, 2, and 8
//! threads. Under `--features debug-invariants` each run additionally
//! replays itself on a second thread and asserts the same trace hash, so
//! this test doubles as the engine-level replay gate in CI.

use rbcast_adversary::Placement;
use rbcast_core::{engine, percolation, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Torus;

/// A representative sweep: three protocol families, adversarial and
/// randomized placements, seeds fixed at construction time.
fn sweep_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for seed in 0..4u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Flood)
                .with_t(2)
                .with_placement(Placement::RandomLocal {
                    t: 2,
                    seed,
                    attempts: 40,
                })
                .with_fault_kind(FaultKind::CrashStop),
        );
    }
    for seed in 0..2u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Cpa)
                .with_t(0)
                .with_placement(Placement::Bernoulli { p: 0.1, seed })
                .with_fault_kind(FaultKind::Silent),
        );
    }
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Liar),
    );
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Forger),
    );
    grid
}

#[test]
fn sweep_outcomes_and_trace_hashes_identical_at_1_2_8_threads() {
    let experiments = sweep_grid();
    let baseline = engine::run_experiments_traced(&experiments, 1);
    assert_eq!(baseline.len(), experiments.len());
    for threads in [2usize, 8] {
        let other = engine::run_experiments_traced(&experiments, threads);
        assert_eq!(
            baseline, other,
            "sweep output diverged between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn shared_arena_does_not_change_outcomes_or_hashes() {
    // A NeighborTable is immutable and fully determined by
    // (torus, r, metric), so drawing it from the process-wide cache and
    // building it privately per run must be indistinguishable — full
    // outcome AND trace-hash equality, at every thread count.
    let shared = sweep_grid();
    let private: Vec<Experiment> = sweep_grid()
        .into_iter()
        .map(|e| e.with_shared_arena(false))
        .collect();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            engine::run_experiments_traced(&shared, threads),
            engine::run_experiments_traced(&private, threads),
            "shared vs private arena diverged at {threads} worker threads"
        );
    }
}

#[test]
fn early_termination_freezes_the_same_hash() {
    // The trace hash freezes the round every honest node has decided in
    // BOTH modes, so stopping there must not change any hash or any
    // decision — only the statistics of the post-decision tail.
    let stopping = sweep_grid();
    let idling: Vec<Experiment> = sweep_grid()
        .into_iter()
        .map(|e| e.with_early_termination(false))
        .collect();
    for threads in [1usize, 2, 8] {
        let a = engine::run_experiments_traced(&stopping, threads);
        let b = engine::run_experiments_traced(&idling, threads);
        for (i, ((oa, ha), (ob, hb))) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                ha, hb,
                "early termination changed run {i}'s trace hash at {threads} threads"
            );
            assert_eq!(
                (oa.committed_correct, oa.committed_wrong, oa.undecided),
                (ob.committed_correct, ob.committed_wrong, ob.undecided),
                "early termination changed run {i}'s decisions at {threads} threads"
            );
            assert!(
                oa.stats.rounds <= ob.stats.rounds,
                "early termination must never lengthen run {i}"
            );
        }
    }
}

#[test]
fn percolation_rows_identical_across_thread_counts() {
    let torus = Torus::for_radius(1);
    let ps = [0.0, 0.2, 0.4];
    let baseline = percolation::sweep_threaded(1, &torus, &ps, 4, 1);
    for threads in [2usize, 8] {
        let other = percolation::sweep_threaded(1, &torus, &ps, 4, threads);
        assert_eq!(
            baseline, other,
            "percolation rows diverged between 1 and {threads} worker threads"
        );
    }
}
