//! Cross-thread-count determinism of the parallel sweep engine.
//!
//! The engine's contract is that a sweep's output is **byte-identical**
//! for every worker-thread count, including 1 (the serial baseline).
//! These tests pin that contract on a mixed experiment grid: ordered
//! outcomes AND per-run delivery-trace hashes must agree at 1, 2, and 8
//! threads. Under `--features debug-invariants` each run additionally
//! replays itself on a second thread and asserts the same trace hash, so
//! this test doubles as the engine-level replay gate in CI.

use rbcast_adversary::Placement;
use rbcast_core::supervisor::{self, ChaosConfig, Journal, SupervisorConfig, TaskReport};
use rbcast_core::{engine, percolation, EngineKind, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Torus;

/// A representative sweep: three protocol families, adversarial and
/// randomized placements, seeds fixed at construction time.
fn sweep_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for seed in 0..4u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Flood)
                .with_t(2)
                .with_placement(Placement::RandomLocal {
                    t: 2,
                    seed,
                    attempts: 40,
                })
                .with_fault_kind(FaultKind::CrashStop),
        );
    }
    for seed in 0..2u64 {
        grid.push(
            Experiment::new(1, ProtocolKind::Cpa)
                .with_t(0)
                .with_placement(Placement::Bernoulli { p: 0.1, seed })
                .with_fault_kind(FaultKind::Silent),
        );
    }
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Liar),
    );
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Forger),
    );
    // The full protocol exercises the multi-relay chain and two-level
    // evidence paths, which the simplified rows above never touch.
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectFull)
            .with_t(1)
            .with_placement(Placement::FrontierCluster { t: 1 })
            .with_fault_kind(FaultKind::Forger),
    );
    grid.push(
        Experiment::new(1, ProtocolKind::IndirectFull)
            .with_t(1)
            .with_placement(Placement::RandomLocal {
                t: 1,
                seed: 11,
                attempts: 30,
            })
            .with_fault_kind(FaultKind::Liar),
    );
    grid
}

#[test]
fn sweep_outcomes_and_trace_hashes_identical_at_1_2_8_threads() {
    let experiments = sweep_grid();
    let baseline = engine::run_experiments_traced(&experiments, 1);
    assert_eq!(baseline.len(), experiments.len());
    for threads in [2usize, 8] {
        let other = engine::run_experiments_traced(&experiments, threads);
        assert_eq!(
            baseline, other,
            "sweep output diverged between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn shared_arena_does_not_change_outcomes_or_hashes() {
    // A NeighborTable is immutable and fully determined by
    // (torus, r, metric), so drawing it from the process-wide cache and
    // building it privately per run must be indistinguishable — full
    // outcome AND trace-hash equality, at every thread count.
    let shared = sweep_grid();
    let private: Vec<Experiment> = sweep_grid()
        .into_iter()
        .map(|e| e.with_shared_arena(false))
        .collect();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            engine::run_experiments_traced(&shared, threads),
            engine::run_experiments_traced(&private, threads),
            "shared vs private arena diverged at {threads} worker threads"
        );
    }
}

#[test]
fn early_termination_freezes_the_same_hash() {
    // The trace hash freezes the round every honest node has decided in
    // BOTH modes, so stopping there must not change any hash or any
    // decision — only the statistics of the post-decision tail.
    let stopping = sweep_grid();
    let idling: Vec<Experiment> = sweep_grid()
        .into_iter()
        .map(|e| e.with_early_termination(false))
        .collect();
    for threads in [1usize, 2, 8] {
        let a = engine::run_experiments_traced(&stopping, threads);
        let b = engine::run_experiments_traced(&idling, threads);
        for (i, ((oa, ha), (ob, hb))) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                ha, hb,
                "early termination changed run {i}'s trace hash at {threads} threads"
            );
            assert_eq!(
                (oa.committed_correct, oa.committed_wrong, oa.undecided),
                (ob.committed_correct, ob.committed_wrong, ob.undecided),
                "early termination changed run {i}'s decisions at {threads} threads"
            );
            assert!(
                oa.stats.rounds <= ob.stats.rounds,
                "early termination must never lengthen run {i}"
            );
        }
    }
}

#[test]
fn supervised_sweep_is_byte_identical_to_the_plain_engine_at_1_2_8_threads() {
    // With chaos disabled, supervision is a pure envelope: every task
    // completes on the first attempt and both the outcomes and the
    // journal digests must equal the unsupervised engine's traced run —
    // at every thread count.
    let experiments = sweep_grid();
    let baseline = engine::run_experiments_traced(&experiments, 1);
    let config = SupervisorConfig::new();
    for threads in [1usize, 2, 8] {
        let report = supervisor::run_experiments_supervised(&experiments, threads, &config);
        assert!(report.fully_healthy());
        for (i, (task, (outcome, hash))) in report.tasks.iter().zip(&baseline).enumerate() {
            let TaskReport::Done {
                outcome: got,
                digest,
                attempts,
            } = task
            else {
                panic!("task {i} did not complete at {threads} threads");
            };
            assert_eq!(got, outcome, "outcome {i} diverged at {threads} threads");
            assert_eq!(digest, hash, "digest {i} diverged at {threads} threads");
            assert_eq!(*attempts, 1, "task {i} needed retries without chaos");
        }
    }
}

#[test]
fn killed_and_resumed_sweep_converges_on_the_straight_through_rows() {
    // Simulate a sweep killed partway: a journal holding only a prefix
    // of the completed tasks. Resuming must re-run exactly the missing
    // tasks and end with every row's summary and digest equal to the
    // uninterrupted run's — at every thread count.
    let experiments = sweep_grid();
    let dir = std::env::temp_dir().join("rbcast_determinism_resume");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");

    let full = supervisor::run_experiments_supervised(&experiments, 1, &SupervisorConfig::new());
    assert!(full.fully_healthy());
    let want: Vec<_> = full
        .tasks
        .iter()
        .map(|t| (t.summary(), t.digest()))
        .collect();

    for threads in [1usize, 2, 8] {
        let path = dir.join(format!("killed_t{threads}.jsonl"));

        // The "killed" journal: only the even-index tasks made it.
        {
            let journal = Journal::create(&path).expect("journal is creatable");
            let partial = SupervisorConfig::new().with_journal(journal);
            let survivors: Vec<Experiment> = experiments.iter().step_by(2).cloned().collect();
            let _ = supervisor::run_experiments_supervised(&survivors, threads, &partial);
        }
        // Re-key the surviving entries to their original indices, as a
        // kill at a chunk boundary would have left them.
        let survived = Journal::load(&path).expect("journal is readable");
        let remapped: std::collections::BTreeMap<usize, _> = survived
            .into_iter()
            .map(|(i, mut e)| {
                e.task = i * 2;
                (i * 2, e)
            })
            .collect();

        let resumed = supervisor::run_experiments_supervised(
            &experiments,
            threads,
            &SupervisorConfig::new().resume_from(remapped),
        );
        assert!(resumed.fully_healthy());
        let mut recomputed = 0;
        for (i, task) in resumed.tasks.iter().enumerate() {
            assert_eq!(
                (task.summary(), task.digest()),
                want[i],
                "row {i} diverged after resume at {threads} threads"
            );
            match task {
                TaskReport::Resumed { .. } => assert_eq!(i % 2, 0, "odd row {i} was resumed"),
                TaskReport::Done { .. } => recomputed += 1,
                TaskReport::Failed { .. } => panic!("row {i} failed"),
            }
        }
        assert_eq!(
            recomputed,
            experiments.len() / 2,
            "resume must re-run exactly the missing tasks at {threads} threads"
        );
        std::fs::remove_file(&path).expect("journal is removable");
    }
}

#[test]
fn trace_jsonl_byte_identical_across_thread_counts_and_supervision() {
    // The observability contract: the serialized event stream is a pure
    // function of the simulation, so per-task JSONL traces must be
    // byte-identical at every worker-thread count AND under the
    // supervisor envelope — and each stream must re-derive the engine's
    // FNV delivery-trace hash.
    let dir = std::env::temp_dir().join("rbcast_determinism_traces");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let traced = |tag: &str| -> Vec<Experiment> {
        sweep_grid()
            .into_iter()
            .enumerate()
            .map(|(i, e)| e.with_trace_path(dir.join(format!("{tag}-task{i}.jsonl"))))
            .collect()
    };
    let read = |tag: &str, i: usize| -> String {
        std::fs::read_to_string(dir.join(format!("{tag}-task{i}.jsonl"))).expect("trace written")
    };

    let experiments = traced("t1");
    let hashed = engine::run_experiments_traced(&experiments, 1);
    let baseline: Vec<String> = (0..experiments.len()).map(|i| read("t1", i)).collect();
    for (i, ((_, hash), text)) in hashed.iter().zip(&baseline).enumerate() {
        assert_eq!(
            rbcast_core::obs::replay_hash(text),
            Ok(*hash),
            "task {i}: trace replay diverged from the engine's own hash"
        );
    }

    for threads in [2usize, 8] {
        let tag = format!("t{threads}");
        let _ = engine::run_experiments_traced(&traced(&tag), threads);
        for (i, want) in baseline.iter().enumerate() {
            assert_eq!(
                *want,
                read(&tag, i),
                "task {i} trace diverged at {threads} threads"
            );
        }
    }

    let report =
        supervisor::run_experiments_supervised(&traced("sup"), 2, &SupervisorConfig::new());
    assert!(report.fully_healthy());
    for (i, want) in baseline.iter().enumerate() {
        assert_eq!(
            *want,
            read("sup", i),
            "task {i} trace diverged under supervision"
        );
    }
    std::fs::remove_dir_all(&dir).expect("trace dir is removable");
}

/// The sweep grid with every experiment forced onto the dense oracle.
fn dense_grid() -> Vec<Experiment> {
    sweep_grid()
        .into_iter()
        .map(|e| e.with_engine(EngineKind::Dense))
        .collect()
}

#[test]
fn sparse_and_dense_engines_byte_identical_at_1_2_8_threads() {
    // The sparse wavefront engine vs the dense oracle, full matrix:
    // ordered outcomes (RunStats, decisions, message kinds) AND per-run
    // delivery-trace hashes must agree at every worker-thread count.
    let sparse = sweep_grid();
    let dense = dense_grid();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            engine::run_experiments_traced(&sparse, threads),
            engine::run_experiments_traced(&dense, threads),
            "sparse vs dense engines diverged at {threads} worker threads"
        );
    }
}

#[test]
fn sparse_and_dense_engines_agree_with_early_termination_off() {
    // Both engines, both termination modes: all four combinations must
    // freeze the same per-run hash, and within a termination mode the
    // engines must agree on everything.
    let idle = |grid: Vec<Experiment>| -> Vec<Experiment> {
        grid.into_iter()
            .map(|e| e.with_early_termination(false))
            .collect()
    };
    let sparse_stop = engine::run_experiments_traced(&sweep_grid(), 2);
    let dense_idle = engine::run_experiments_traced(&idle(dense_grid()), 2);
    let sparse_idle = engine::run_experiments_traced(&idle(sweep_grid()), 2);
    assert_eq!(
        sparse_idle, dense_idle,
        "engines diverged with early termination off"
    );
    for (i, ((os, hs), (oi, hi))) in sparse_stop.iter().zip(&dense_idle).enumerate() {
        assert_eq!(
            hs, hi,
            "run {i}: sparse+early-stop hash differs from dense+idle hash"
        );
        assert_eq!(
            (os.committed_correct, os.committed_wrong, os.undecided),
            (oi.committed_correct, oi.committed_wrong, oi.undecided),
            "run {i}: decisions diverged across the engine × termination matrix"
        );
    }
}

#[test]
fn sparse_and_dense_traces_byte_identical_and_supervision_chaos_agree() {
    // Event-stream parity: per-task JSONL traces from the two engines
    // must be byte-for-byte equal. Then the supervisor envelope with
    // chaos armed (panics/stalls injected and retried) must reproduce
    // the same digests for whichever engine runs underneath.
    let dir = std::env::temp_dir().join("rbcast_determinism_engines");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let traced = |tag: &str, grid: Vec<Experiment>| -> Vec<Experiment> {
        grid.into_iter()
            .enumerate()
            .map(|(i, e)| e.with_trace_path(dir.join(format!("{tag}-task{i}.jsonl"))))
            .collect()
    };
    let read = |tag: &str, i: usize| -> String {
        std::fs::read_to_string(dir.join(format!("{tag}-task{i}.jsonl"))).expect("trace written")
    };

    let n = sweep_grid().len();
    let sparse = engine::run_experiments_traced(&traced("sparse", sweep_grid()), 2);
    let dense = engine::run_experiments_traced(&traced("dense", dense_grid()), 2);
    assert_eq!(sparse, dense);
    for i in 0..n {
        assert_eq!(
            read("sparse", i),
            read("dense", i),
            "task {i}: sparse and dense event streams are not byte-identical"
        );
    }

    // Chaos supervision: injected failures are retried, and the retry
    // reproduces the same digest the plain engine computed — for both
    // engines, which must also agree with each other.
    let chaos = ChaosConfig::new(0.3, 0.0, 11).expect("valid chaos spec");
    let config = SupervisorConfig::new()
        .with_max_attempts(10)
        .with_chaos(Some(chaos));
    let sparse_report = supervisor::run_experiments_supervised(&sweep_grid(), 2, &config);
    let dense_report = supervisor::run_experiments_supervised(&dense_grid(), 2, &config);
    assert!(sparse_report.fully_healthy(), "chaos defeated the retries");
    for (i, (st, dt)) in sparse_report
        .tasks
        .iter()
        .zip(&dense_report.tasks)
        .enumerate()
    {
        assert_eq!(
            st.digest(),
            dt.digest(),
            "task {i}: engines diverged under chaos supervision"
        );
        assert_eq!(
            st.digest(),
            Some(sparse[i].1),
            "task {i}: chaos retry changed the digest"
        );
    }
    std::fs::remove_dir_all(&dir).expect("trace dir is removable");
}

#[test]
fn percolation_rows_identical_across_thread_counts() {
    let torus = Torus::for_radius(1);
    let ps = [0.0, 0.2, 0.4];
    let baseline = percolation::sweep_threaded(1, &torus, &ps, 4, 1);
    for threads in [2usize, 8] {
        let other = percolation::sweep_threaded(1, &torus, &ps, 4, threads);
        assert_eq!(
            baseline, other,
            "percolation rows diverged between 1 and {threads} worker threads"
        );
    }
}
