//! Golden differential matrix for the indirect-report protocols.
//!
//! The constants below were captured from the pre-packing
//! implementation (heap-allocated relay chains, `BTreeMap`-keyed
//! evidence) immediately before the compact-chain rewrite landed, and
//! the packed implementation must reproduce them **bit-for-bit**: the
//! FNV trace hash folds every delivery's `(round, index, receiver,
//! claimed)` tuple plus each round's decided count, so hash equality
//! pins per-node, per-round behavior — not just aggregate counts. Any
//! future change to chain representation, evidence indexing, caching,
//! or forwarding order that alters protocol behavior in any observable
//! way fails this test; a pure performance change passes untouched.
//!
//! The matrix spans both §VI variants (full, 3 relays, two-level
//! commit; simplified, 1 relay, one-level) plus a custom 2-relay
//! configuration, all three fault behaviors (crash-stop, value-liar,
//! chain-forger), clustered / random-local / Bernoulli placements, and
//! square and non-square tori. Row 8 deliberately over-seeds faults
//! past the tolerance bound, pinning behavior on the wrong-commit path
//! too.

use rbcast_adversary::Placement;
use rbcast_core::{engine, Experiment, FaultKind, ProtocolKind};
use rbcast_grid::Torus;
use rbcast_protocols::{CommitRule, IndirectConfig};

/// One pinned row: experiment constructor paired with the captured
/// baseline `(hash, correct, wrong, undecided, rounds, deliveries,
/// messages)`.
struct Golden {
    make: fn() -> Experiment,
    hash: u64,
    correct: usize,
    wrong: usize,
    undecided: usize,
    rounds: u32,
    deliveries: u64,
    messages: u64,
}

fn custom_two_relay() -> ProtocolKind {
    ProtocolKind::IndirectCustom(IndirectConfig {
        max_relays: 2,
        rule: CommitRule::TwoLevel,
    })
}

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectSimplified)
                    .with_t(1)
                    .with_placement(Placement::FrontierCluster { t: 1 })
                    .with_fault_kind(FaultKind::Liar)
            },
            hash: 0x0e92_611d_d161_da05,
            correct: 143,
            wrong: 0,
            undecided: 0,
            rounds: 8,
            deliveries: 10232,
            messages: 1344,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectSimplified)
                    .with_t(1)
                    .with_placement(Placement::FrontierCluster { t: 1 })
                    .with_fault_kind(FaultKind::Forger)
            },
            hash: 0xfd80_5df4_cc45_b905,
            correct: 143,
            wrong: 0,
            undecided: 0,
            rounds: 8,
            deliveries: 10296,
            messages: 1352,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectSimplified)
                    .with_t(1)
                    .with_placement(Placement::RandomLocal {
                        t: 1,
                        seed: 7,
                        attempts: 30,
                    })
                    .with_fault_kind(FaultKind::CrashStop)
            },
            hash: 0xc99e_d384_37f2_eedd,
            correct: 135,
            wrong: 0,
            undecided: 0,
            rounds: 8,
            deliveries: 7930,
            messages: 1136,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectFull)
                    .with_t(1)
                    .with_placement(Placement::RandomLocal {
                        t: 1,
                        seed: 99,
                        attempts: 30,
                    })
                    .with_fault_kind(FaultKind::Forger)
            },
            hash: 0x9311_baf2_849d_1c52,
            correct: 134,
            wrong: 0,
            undecided: 0,
            rounds: 7,
            deliveries: 56800,
            messages: 9435,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectFull)
                    .with_t(1)
                    .with_placement(Placement::FrontierCluster { t: 1 })
                    .with_fault_kind(FaultKind::Liar)
            },
            hash: 0x6be6_a200_5f22_b93d,
            correct: 143,
            wrong: 0,
            undecided: 0,
            rounds: 7,
            deliveries: 38064,
            messages: 6845,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectFull)
                    .with_t(1)
                    .with_placement(Placement::RandomLocal {
                        t: 1,
                        seed: 3,
                        attempts: 30,
                    })
                    .with_fault_kind(FaultKind::CrashStop)
            },
            hash: 0x1c23_a921_c22a_0b80,
            correct: 136,
            wrong: 0,
            undecided: 0,
            rounds: 7,
            deliveries: 27774,
            messages: 5288,
        },
        Golden {
            make: || {
                Experiment::new(1, custom_two_relay())
                    .with_t(1)
                    .with_placement(Placement::FrontierCluster { t: 1 })
                    .with_fault_kind(FaultKind::Forger)
            },
            hash: 0x5fa3_d4cc_0390_7a61,
            correct: 143,
            wrong: 0,
            undecided: 0,
            rounds: 7,
            deliveries: 29488,
            messages: 4997,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectSimplified)
                    .with_torus(Torus::new(24, 9))
                    .with_t(1)
                    .with_placement(Placement::FrontierCluster { t: 1 })
                    .with_fault_kind(FaultKind::Liar)
            },
            hash: 0xd999_9207_24ca_a621,
            correct: 215,
            wrong: 0,
            undecided: 0,
            rounds: 12,
            deliveries: 14200,
            messages: 1928,
        },
        Golden {
            make: || {
                Experiment::new(1, ProtocolKind::IndirectFull)
                    .with_torus(Torus::new(18, 18))
                    .with_t(1)
                    .with_placement(Placement::Bernoulli { p: 0.05, seed: 2 })
                    .with_fault_kind(FaultKind::Forger)
            },
            hash: 0x0875_61db_345f_fa54,
            correct: 69,
            wrong: 240,
            undecided: 0,
            rounds: 6,
            deliveries: 115_688,
            messages: 20963,
        },
    ]
}

#[test]
fn packed_chains_reproduce_the_prechange_baseline_bit_for_bit() {
    let rows = goldens();
    let grid: Vec<Experiment> = rows.iter().map(|g| (g.make)()).collect();
    let results = engine::run_experiments_traced(&grid, 1);
    assert_eq!(results.len(), rows.len());
    for (i, (g, (o, h))) in rows.iter().zip(&results).enumerate() {
        assert_eq!(
            *h, g.hash,
            "row {i}: trace hash {h:#018x} diverged from the pre-packing \
             baseline {:#018x}",
            g.hash
        );
        let got = (
            o.committed_correct,
            o.committed_wrong,
            o.undecided,
            o.stats.rounds,
            o.stats.deliveries,
            o.stats.messages_sent,
        );
        let want = (
            g.correct,
            g.wrong,
            g.undecided,
            g.rounds,
            g.deliveries,
            g.messages,
        );
        assert_eq!(got, want, "row {i}: outcome diverged from baseline");
    }
}

#[test]
fn golden_matrix_is_thread_count_invariant() {
    let grid: Vec<Experiment> = goldens().iter().map(|g| (g.make)()).collect();
    let base = engine::run_experiments_traced(&grid, 1);
    for threads in [2usize, 8] {
        let other = engine::run_experiments_traced(&grid, threads);
        assert_eq!(base, other, "thread divergence at {threads}");
    }
}
