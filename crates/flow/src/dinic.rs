//! Dinic's maximum-flow algorithm.

/// Identifier of a directed edge added to a [`FlowNetwork`].
///
/// Returned by [`FlowNetwork::add_edge`] so callers can later query the
/// flow routed over that specific edge with [`FlowNetwork::flow_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u32,
    // index of the reverse edge in `edges`
    rev: usize,
}

/// A directed flow network solved with Dinic's algorithm.
///
/// Capacities are integral (`u32`); the implementation runs in
/// `O(V²·E)` in general and `O(E·√V)` on the unit-capacity networks the
/// disjoint-path reductions produce.
///
/// # Example
///
/// ```
/// use rbcast_flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 2);
/// net.add_edge(0, 2, 1);
/// net.add_edge(1, 3, 1);
/// net.add_edge(2, 3, 2);
/// assert_eq!(net.max_flow(0, 3), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<usize>>, // node -> indices into `edges`
    edges: Vec<Edge>,
    // scratch space for BFS levels / DFS iterator positions
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates an empty network with `n` nodes (numbered `0..n`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True iff the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with capacity `cap` and returns
    /// its id. A zero-capacity reverse edge is added automatically.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u32) -> EdgeId {
        assert!(
            from < self.len() && to < self.len(),
            "edge endpoint out of range"
        );
        let fwd = self.edges.len();
        let rev = fwd + 1;
        self.edges.push(Edge { to, cap, rev });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
        });
        self.graph[from].push(fwd);
        self.graph[to].push(rev);
        EdgeId(fwd)
    }

    /// Drains all routed flow, restoring every edge to its original
    /// capacity, so the same network can be solved again (for a
    /// different terminal pair, or to cross-check a previous answer)
    /// without rebuilding it edge by edge.
    ///
    /// Edges are stored as forward/reverse pairs: the reverse edge's
    /// capacity is exactly the flow pushed over the forward edge, so
    /// returning it undoes the routing.
    pub fn reset(&mut self) {
        for pair in self.edges.chunks_exact_mut(2) {
            pair[0].cap += pair[1].cap;
            pair[1].cap = 0;
        }
    }

    /// Flow currently routed over edge `e` (meaningful after
    /// [`FlowNetwork::max_flow`]).
    #[must_use]
    pub fn flow_on(&self, e: EdgeId) -> u32 {
        // flow = capacity of the reverse edge
        let rev = self.edges[e.0].rev;
        self.edges[rev].cap
    }

    /// Vertices reachable from `from` in the residual graph of the last
    /// flow — the source side of a minimum cut (max-flow/min-cut).
    #[must_use]
    pub fn residual_reachable(&self, from: usize) -> Vec<bool> {
        let mut reach = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        reach[from] = true;
        while let Some(v) = queue.pop_front() {
            for &ei in &self.graph[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && !reach[e.to] {
                    reach[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        reach
    }

    /// Computes the maximum `s → t` flow.
    ///
    /// Equivalent to `max_flow_capped(s, t, u32::MAX)`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u32 {
        self.max_flow_capped(s, t, u32::MAX)
    }

    /// Computes the `s → t` max flow, stopping early once `target` units
    /// have been routed (useful when the caller only needs to know whether
    /// `t + 1` disjoint paths exist).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow_capped(&mut self, s: usize, t: usize, target: u32) -> u32 {
        assert!(s < self.len() && t < self.len(), "terminal out of range");
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0;
        while flow < target {
            if !self.bfs(s, t) {
                break;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, target - flow);
                if f == 0 {
                    break;
                }
                flow += f;
                crate::stats::count_augmentation();
                if flow >= target {
                    break;
                }
            }
        }
        flow
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &ei in &self.graph[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, limit: u32) -> u32 {
        if v == t {
            return limit;
        }
        while self.iter[v] < self.graph[v].len() {
            let ei = self.graph[v][self.iter[v]];
            let (to, cap) = {
                let e = &self.edges[ei];
                (e.to, e.cap)
            };
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, limit.min(cap));
                if d > 0 {
                    self.edges[ei].cap -= d;
                    let rev = self.edges[ei].rev;
                    self.edges[rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn no_path_means_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        // node 2 disconnected
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn augmenting_path_required() {
        // The textbook example where a greedy routing must be undone via
        // the residual (reverse) edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn capped_flow_stops_early() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 100);
        assert_eq!(net.max_flow_capped(0, 1, 3), 3);
    }

    #[test]
    fn flow_on_reports_per_edge_flow() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 4);
        let b = net.add_edge(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
        assert_eq!(net.flow_on(a), 2);
        assert_eq!(net.flow_on(b), 2);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 3);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3x3 bipartite graph, perfect matching exists.
        // s=0, left={1,2,3}, right={4,5,6}, t=7
        let mut net = FlowNetwork::new(8);
        for l in 1..=3 {
            net.add_edge(0, l, 1);
        }
        for r in 4..=6 {
            net.add_edge(r, 7, 1);
        }
        net.add_edge(1, 4, 1);
        net.add_edge(1, 5, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(3, 5, 1);
        net.add_edge(3, 6, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }

    #[test]
    fn flow_conservation_holds() {
        // random-ish fixed network; verify conservation at internal nodes
        let mut net = FlowNetwork::new(6);
        let mut ids = Vec::new();
        let edges = [
            (0usize, 1usize, 3u32),
            (0, 2, 4),
            (1, 3, 2),
            (2, 3, 3),
            (1, 4, 2),
            (2, 4, 1),
            (3, 5, 4),
            (4, 5, 3),
        ];
        for &(u, v, c) in &edges {
            ids.push((u, v, net.add_edge(u, v, c)));
        }
        let total = net.max_flow(0, 5);
        assert_eq!(total, 7);
        for node in 1..=4usize {
            let inflow: u32 = ids
                .iter()
                .filter(|&&(_, v, _)| v == node)
                .map(|&(_, _, id)| net.flow_on(id))
                .sum();
            let outflow: u32 = ids
                .iter()
                .filter(|&&(u, _, _)| u == node)
                .map(|&(_, _, id)| net.flow_on(id))
                .sum();
            assert_eq!(inflow, outflow, "conservation at node {node}");
        }
    }

    #[test]
    fn reset_restores_capacities_exactly() {
        let mut net = FlowNetwork::new(4);
        let a = net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
        net.reset();
        assert_eq!(net.flow_on(a), 0, "reset must drain routed flow");
        // The drained network solves identically, repeatedly.
        assert_eq!(net.max_flow(0, 3), 2);
        net.reset();
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn reset_allows_a_different_terminal_pair() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 2, 2);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 2), 2);
        net.reset();
        assert_eq!(net.max_flow(1, 3), 1);
        net.reset();
        assert_eq!(net.max_flow(0, 3), 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_terminals_panic() {
        let mut net = FlowNetwork::new(2);
        net.max_flow(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 2, 1);
    }
}
