//! Internally-vertex-disjoint paths in undirected graphs (Menger).

use std::fmt;

use crate::FlowNetwork;

/// Precondition violations of the disjoint-path API.
///
/// Every variant names the invariant the caller broke, so a failure
/// surfaced through [`Result`] (or an `expect` on one) identifies the
/// offending input rather than a bare index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjointError {
    /// `s` or `t` is not a vertex of the graph (`terminal >= n`).
    TerminalOutOfRange {
        /// The offending terminal index.
        terminal: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// `s == t`: internal disjointness is undefined for a single vertex.
    IdenticalTerminals {
        /// The coincident terminal index.
        terminal: usize,
    },
    /// An adjacency list references a vertex outside the graph.
    AdjacencyOutOfRange {
        /// Vertex whose adjacency list is malformed.
        from: usize,
        /// The out-of-range entry.
        entry: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
}

impl fmt::Display for DisjointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DisjointError::TerminalOutOfRange { terminal, n } => {
                write!(f, "terminal {terminal} out of range for {n}-vertex graph")
            }
            DisjointError::IdenticalTerminals { terminal } => {
                write!(f, "source and sink are both vertex {terminal}")
            }
            DisjointError::AdjacencyOutOfRange { from, entry, n } => write!(
                f,
                "adjacency list of vertex {from} references {entry}, out of range \
                 for {n}-vertex graph"
            ),
        }
    }
}

impl std::error::Error for DisjointError {}

/// Validates the shared preconditions of the disjoint-path API.
fn validate(adj: &[Vec<usize>], s: usize, t: usize) -> Result<(), DisjointError> {
    let n = adj.len();
    for terminal in [s, t] {
        if terminal >= n {
            return Err(DisjointError::TerminalOutOfRange { terminal, n });
        }
    }
    if s == t {
        return Err(DisjointError::IdenticalTerminals { terminal: s });
    }
    for (from, nbrs) in adj.iter().enumerate() {
        if let Some(&entry) = nbrs.iter().find(|&&v| v >= n) {
            return Err(DisjointError::AdjacencyOutOfRange { from, entry, n });
        }
    }
    Ok(())
}

/// Maximum number of internally-vertex-disjoint paths between `s` and `t`
/// in an undirected graph given as an adjacency list.
///
/// Uses the node-splitting reduction: every vertex other than `s`/`t`
/// becomes an `in → out` arc of capacity 1, so each unit of flow occupies
/// a distinct set of intermediate vertices. If `cap` is `Some(k)`, the
/// computation stops as soon as `k` paths are found (the return value is
/// then `min(k, true maximum)`).
///
/// # Panics
///
/// Panics if `s == t`, if either is out of range, or if an adjacency entry
/// is out of range. [`try_vertex_disjoint_count`] is the non-panicking
/// form.
///
/// # Example
///
/// ```
/// use rbcast_flow::vertex_disjoint_count;
///
/// // K4: three internally-disjoint paths between any two vertices
/// // (one direct edge + two length-2 paths).
/// let adj = vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]];
/// assert_eq!(vertex_disjoint_count(&adj, 0, 3, None), 3);
/// ```
#[must_use]
pub fn vertex_disjoint_count(adj: &[Vec<usize>], s: usize, t: usize, cap: Option<u32>) -> u32 {
    try_vertex_disjoint_count(adj, s, t, cap)
        .expect("caller guarantees distinct in-range terminals and a closed adjacency list")
}

/// Non-panicking form of [`vertex_disjoint_count`]: precondition
/// violations come back as a [`DisjointError`] naming the broken
/// invariant.
pub fn try_vertex_disjoint_count(
    adj: &[Vec<usize>],
    s: usize,
    t: usize,
    cap: Option<u32>,
) -> Result<u32, DisjointError> {
    validate(adj, s, t)?;
    let (mut net, s_out, t_in) = build_split_network(adj, s, t);
    Ok(net.max_flow_capped(s_out, t_in, cap.unwrap_or(u32::MAX)))
}

/// Computes a maximum set of internally-vertex-disjoint `s–t` paths and
/// returns them as vertex sequences `s, …, t`.
///
/// Same reduction as [`vertex_disjoint_count`], followed by a flow
/// decomposition. Direct `s–t` edges yield the 2-vertex path `[s, t]`.
///
/// # Panics
///
/// Same conditions as [`vertex_disjoint_count`];
/// [`try_vertex_disjoint_paths`] is the non-panicking form.
#[must_use]
pub fn vertex_disjoint_paths(
    adj: &[Vec<usize>],
    s: usize,
    t: usize,
    cap: Option<u32>,
) -> Vec<Vec<usize>> {
    try_vertex_disjoint_paths(adj, s, t, cap)
        .expect("caller guarantees distinct in-range terminals and a closed adjacency list")
}

/// Non-panicking form of [`vertex_disjoint_paths`].
pub fn try_vertex_disjoint_paths(
    adj: &[Vec<usize>],
    s: usize,
    t: usize,
    cap: Option<u32>,
) -> Result<Vec<Vec<usize>>, DisjointError> {
    validate(adj, s, t)?;
    let n = adj.len();
    // Build the split network once, recording edge ids so the routed
    // flow can be read back per vertex-to-vertex edge.
    let (mut net, s_out, t_in, edge_ids) = build_split_network_with_ids(adj, s, t);
    let flow = net.max_flow_capped(s_out, t_in, cap.unwrap_or(u32::MAX));

    // successors[u] = list of v with positive flow on u->v
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v, id) in &edge_ids {
        if net.flow_on(id) > 0 {
            successors[u].push(v);
        }
    }

    #[cfg(debug_assertions)]
    {
        // Cross-check: drain the routed flow and solve the restored
        // network again — the flow value must reproduce exactly.
        net.reset();
        let replay = net.max_flow_capped(s_out, t_in, cap.unwrap_or(u32::MAX));
        debug_assert_eq!(
            flow, replay,
            "FlowNetwork::reset failed to restore capacities"
        );
    }

    let mut paths = Vec::with_capacity(flow as usize);
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s;
        while cur != t {
            let next = successors[cur]
                .pop()
                .expect("flow decomposition: dead end before reaching sink");
            path.push(next);
            cur = next;
        }
        paths.push(path);
    }
    Ok(paths)
}

/// Extracts a *minimum vertex cut* separating `s` from `t`: a smallest
/// set of vertices (excluding the terminals) whose removal disconnects
/// them. By Menger's theorem its size equals
/// [`vertex_disjoint_count`]`(adj, s, t, None)` — the impossibility-side
/// witness dual to the disjoint-path families (a fault placement hitting
/// every path).
///
/// Returns `None` when `s` and `t` are adjacent (no vertex cut exists).
///
/// # Panics
///
/// Same conditions as [`vertex_disjoint_count`]; [`try_min_vertex_cut`]
/// is the non-panicking form.
#[must_use]
pub fn min_vertex_cut(adj: &[Vec<usize>], s: usize, t: usize) -> Option<Vec<usize>> {
    try_min_vertex_cut(adj, s, t)
        .expect("caller guarantees distinct in-range terminals and a closed adjacency list")
}

/// Non-panicking form of [`min_vertex_cut`]: the outer `Result` reports
/// precondition violations, the inner `Option` stays `None` for adjacent
/// terminals.
pub fn try_min_vertex_cut(
    adj: &[Vec<usize>],
    s: usize,
    t: usize,
) -> Result<Option<Vec<usize>>, DisjointError> {
    validate(adj, s, t)?;
    crate::stats::count_min_cut();
    if adj[s].contains(&t) {
        return Ok(None);
    }
    // Build the split network with *unbounded* adjacency arcs so the
    // minimum cut consists purely of node-internal arcs (the vertex
    // capacities). The counting variant uses unit adjacency arcs instead
    // (equivalent for the flow value, not for cut extraction).
    let n = adj.len();
    let mut net = FlowNetwork::new(2 * n);
    const INF: u32 = u32::MAX / 2;
    for v in 0..n {
        let cap = if v == s || v == t { INF } else { 1 };
        net.add_edge(2 * v, 2 * v + 1, cap);
    }
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            net.add_edge(2 * u + 1, 2 * v, INF);
        }
    }
    let (s_out, t_in) = (2 * s + 1, 2 * t);
    let _ = net.max_flow(s_out, t_in);
    // Min cut = vertices whose internal in→out arc crosses the residual
    // reachability boundary.
    let reach = net.residual_reachable(s_out);
    let mut cut = Vec::new();
    for v in 0..n {
        if v != s && v != t && reach[2 * v] && !reach[2 * v + 1] {
            cut.push(v);
        }
    }
    Ok(Some(cut))
}

/// Builds the node-split network. Returns `(network, source, sink)` where
/// `source` is `s`'s out-copy and `sink` is `t`'s in-copy.
fn build_split_network(adj: &[Vec<usize>], s: usize, t: usize) -> (FlowNetwork, usize, usize) {
    let (net, s_out, t_in, _) = build_split_network_with_ids(adj, s, t);
    (net, s_out, t_in)
}

fn build_split_network_with_ids(
    adj: &[Vec<usize>],
    s: usize,
    t: usize,
) -> (
    FlowNetwork,
    usize,
    usize,
    Vec<(usize, usize, crate::EdgeId)>,
) {
    // Preconditions hold here: every caller has gone through validate().
    let n = adj.len();

    // vertex v -> in-copy 2v, out-copy 2v+1
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n {
        // s and t have unbounded internal capacity; all other vertices 1.
        let cap = if v == s || v == t { u32::MAX } else { 1 };
        net.add_edge(2 * v, 2 * v + 1, cap);
    }
    let mut ids = Vec::new();
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            // one direction per listed arc; undirected graphs list both.
            let id = net.add_edge(2 * u + 1, 2 * v, 1);
            ids.push((u, v, id));
        }
    }
    (net, 2 * s + 1, 2 * t, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Convenience: build symmetric adjacency from an edge list.
    fn undirected(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }

    #[test]
    fn path_graph_has_one_disjoint_path() {
        let adj = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(vertex_disjoint_count(&adj, 0, 3, None), 1);
    }

    #[test]
    fn cycle_has_two() {
        let adj = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(vertex_disjoint_count(&adj, 0, 3, None), 2);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let adj = undirected(5, &edges);
        // direct edge + 3 two-hop paths
        assert_eq!(vertex_disjoint_count(&adj, 0, 4, None), 4);
    }

    #[test]
    fn cut_vertex_limits_count() {
        // bowtie: two triangles sharing vertex 2
        let adj = undirected(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        assert_eq!(vertex_disjoint_count(&adj, 0, 4, None), 1);
    }

    #[test]
    fn cap_limits_result() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let adj = undirected(6, &edges);
        assert_eq!(vertex_disjoint_count(&adj, 0, 5, Some(2)), 2);
    }

    #[test]
    fn paths_are_valid_and_disjoint() {
        let mut edges = Vec::new();
        for u in 0..7 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        let adj = undirected(7, &edges);
        let paths = vertex_disjoint_paths(&adj, 0, 6, None);
        assert_eq!(paths.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 6);
            // edges exist
            for w in p.windows(2) {
                assert!(adj[w[0]].contains(&w[1]), "missing edge {w:?}");
            }
            // internal disjointness
            for &v in &p[1..p.len() - 1] {
                assert!(seen.insert(v), "vertex {v} reused");
            }
        }
    }

    #[test]
    fn disconnected_graph_zero_paths() {
        let adj = undirected(4, &[(0, 1), (2, 3)]);
        assert_eq!(vertex_disjoint_count(&adj, 0, 3, None), 0);
        assert!(vertex_disjoint_paths(&adj, 0, 3, None).is_empty());
    }

    #[test]
    fn multiple_direct_edges_count_once_each() {
        // parallel edges in the adjacency list both usable
        let mut adj = vec![Vec::new(); 2];
        adj[0].push(1);
        adj[0].push(1);
        adj[1].push(0);
        adj[1].push(0);
        assert_eq!(vertex_disjoint_count(&adj, 0, 1, None), 2);
    }

    #[test]
    fn grid_neighborhood_menger_sanity() {
        // 3x3 grid graph (rook-adjacent), corner to corner: 2 disjoint paths.
        let idx = |x: usize, y: usize| y * 3 + x;
        let mut edges = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                if x + 1 < 3 {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < 3 {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let adj = undirected(9, &edges);
        assert_eq!(vertex_disjoint_count(&adj, idx(0, 0), idx(2, 2), None), 2);
    }

    #[test]
    fn try_variants_report_broken_preconditions() {
        let adj = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(
            try_vertex_disjoint_count(&adj, 0, 9, None),
            Err(DisjointError::TerminalOutOfRange { terminal: 9, n: 4 })
        );
        assert_eq!(
            try_vertex_disjoint_paths(&adj, 2, 2, None),
            Err(DisjointError::IdenticalTerminals { terminal: 2 })
        );
        let mut bad = adj.clone();
        bad[1].push(42);
        assert_eq!(
            try_min_vertex_cut(&bad, 0, 3),
            Err(DisjointError::AdjacencyOutOfRange {
                from: 1,
                entry: 42,
                n: 4
            })
        );
        // Errors render the invariant, not just a code.
        let msg = DisjointError::TerminalOutOfRange { terminal: 9, n: 4 }.to_string();
        assert!(msg.contains("terminal 9"), "{msg}");
    }

    #[test]
    fn try_variants_agree_with_panicking_forms() {
        let adj = undirected(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]);
        assert_eq!(
            try_vertex_disjoint_count(&adj, 0, 5, None),
            Ok(vertex_disjoint_count(&adj, 0, 5, None))
        );
        assert_eq!(
            try_vertex_disjoint_paths(&adj, 0, 5, None),
            Ok(vertex_disjoint_paths(&adj, 0, 5, None))
        );
        assert_eq!(
            try_min_vertex_cut(&adj, 0, 5),
            Ok(min_vertex_cut(&adj, 0, 5))
        );
    }

    #[test]
    fn min_cut_of_bowtie_is_the_shared_vertex() {
        let adj = undirected(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        assert_eq!(min_vertex_cut(&adj, 0, 4), Some(vec![2]));
    }

    #[test]
    fn min_cut_none_for_adjacent_terminals() {
        let adj = undirected(2, &[(0, 1)]);
        assert_eq!(min_vertex_cut(&adj, 0, 1), None);
    }

    #[test]
    fn min_cut_disconnects_and_matches_menger() {
        let adj = undirected(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5), (1, 4)]);
        let cut = min_vertex_cut(&adj, 0, 5).unwrap();
        assert_eq!(cut.len() as u32, vertex_disjoint_count(&adj, 0, 5, None));
        // removing the cut disconnects 0 from 5
        let mut reach = [false; 6];
        reach[0] = true;
        let mut queue = vec![0usize];
        while let Some(v) = queue.pop() {
            for &w in &adj[v] {
                if !cut.contains(&w) && !reach[w] {
                    reach[w] = true;
                    queue.push(w);
                }
            }
        }
        assert!(!reach[5], "cut {cut:?} failed to disconnect");
    }

    proptest! {
        /// Menger duality: on random graphs with non-adjacent terminals,
        /// the extracted cut has exactly the disjoint-path count and
        /// disconnects the terminals.
        #[test]
        fn min_cut_duality(seed_edges in proptest::collection::vec((0usize..9, 0usize..9), 0..30)) {
            let edges: Vec<(usize, usize)> = seed_edges
                .into_iter()
                .filter(|&(u, v)| u != v && !(u == 0 && v == 8) && !(u == 8 && v == 0))
                .collect();
            let adj = undirected(9, &edges);
            prop_assume!(!adj[0].contains(&8));
            let count = vertex_disjoint_count(&adj, 0, 8, None);
            let cut = min_vertex_cut(&adj, 0, 8).unwrap();
            prop_assert_eq!(cut.len() as u32, count);
            // removal disconnects
            let mut reach = [false; 9];
            reach[0] = true;
            let mut queue = vec![0usize];
            while let Some(v) = queue.pop() {
                for &w in &adj[v] {
                    if !cut.contains(&w) && !reach[w] {
                        reach[w] = true;
                        queue.push(w);
                    }
                }
            }
            prop_assert!(!reach[8]);
        }

        /// On a random graph, count from `vertex_disjoint_count` equals the
        /// number of paths extracted, and extracted paths verify.
        #[test]
        fn extraction_matches_count(seed_edges in proptest::collection::vec((0usize..10, 0usize..10), 0..40)) {
            let edges: Vec<(usize, usize)> =
                seed_edges.into_iter().filter(|&(u, v)| u != v).collect();
            let adj = undirected(10, &edges);
            let count = vertex_disjoint_count(&adj, 0, 9, None);
            let paths = vertex_disjoint_paths(&adj, 0, 9, None);
            prop_assert_eq!(count as usize, paths.len());
            let mut used = std::collections::HashSet::new();
            for p in &paths {
                for w in p.windows(2) {
                    prop_assert!(adj[w[0]].contains(&w[1]));
                }
                for &v in &p[1..p.len().saturating_sub(1)] {
                    prop_assert!(used.insert(v));
                }
            }
        }

        /// The cap parameter never changes feasibility, only truncates.
        #[test]
        fn cap_is_a_pure_truncation(seed_edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24)) {
            let edges: Vec<(usize, usize)> =
                seed_edges.into_iter().filter(|&(u, v)| u != v).collect();
            let adj = undirected(8, &edges);
            let full = vertex_disjoint_count(&adj, 0, 7, None);
            for cap in 0..=4u32 {
                let capped = vertex_disjoint_count(&adj, 0, 7, Some(cap));
                prop_assert_eq!(capped, full.min(cap));
            }
        }

        /// Menger: disjoint path count is at most min(deg(s), deg(t)) in
        /// simple graphs.
        #[test]
        fn bounded_by_terminal_degree(seed_edges in proptest::collection::vec((0usize..8, 0usize..8), 0..28)) {
            let mut set = std::collections::HashSet::new();
            for (u, v) in seed_edges {
                if u != v {
                    set.insert((u.min(v), u.max(v)));
                }
            }
            let edges: Vec<_> = set.into_iter().collect();
            let adj = undirected(8, &edges);
            let count = vertex_disjoint_count(&adj, 0, 7, None);
            prop_assert!(count as usize <= adj[0].len());
            prop_assert!(count as usize <= adj[7].len());
        }
    }
}
