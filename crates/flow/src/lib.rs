//! Max-flow machinery for disjoint-path evidence verification.
//!
//! The commit rules of Bhandari & Vaidya's reliable-broadcast protocols
//! hinge on *node-disjoint path* arguments (Menger-style): a node trusts a
//! report once it has arrived over `t + 1` node-disjoint paths that all
//! lie inside a single neighborhood, because at most `t` of those paths
//! can contain a faulty node. This crate provides:
//!
//! * [`FlowNetwork`] — a from-scratch Dinic max-flow implementation with
//!   early termination at a target flow value.
//! * [`vertex_disjoint_count`] / [`vertex_disjoint_paths`] — maximum sets
//!   of internally-vertex-disjoint paths in an undirected graph, via the
//!   standard node-splitting reduction.
//! * [`ChainPacker`] — maximum sets of pairwise node-disjoint *reported
//!   relay chains* (the `HEARD(...)` evidence of the paper's §VI
//!   protocol). Chains are packed over a prefix trie so that a unit of
//!   flow can only follow a genuinely reported chain — naive max-flow on
//!   the union of chains would allow unsound "mixed" paths splicing a
//!   prefix of one report onto the suffix of another.
//!
//! # Example
//!
//! ```
//! use rbcast_flow::vertex_disjoint_count;
//!
//! // A 4-cycle: two internally-disjoint paths between opposite corners.
//! let adj = vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![0, 2]];
//! assert_eq!(vertex_disjoint_count(&adj, 0, 2, None), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod disjoint;
mod packing;
pub mod stats;

pub use dinic::{EdgeId, FlowNetwork};
pub use disjoint::{
    min_vertex_cut, try_min_vertex_cut, try_vertex_disjoint_count, try_vertex_disjoint_paths,
    vertex_disjoint_count, vertex_disjoint_paths, DisjointError,
};
pub use packing::{Chain, ChainPacker, PackScratch, MAX_CHAIN_KEYS};
