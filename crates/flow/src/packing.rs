//! Maximum sets of pairwise node-disjoint reported relay chains.
//!
//! A node executing the §VI protocol "reliably determines" that committer
//! `i` committed value `v` once it holds `t + 1` reported relay chains
//! from `i`, *pairwise node-disjoint*, all lying within one neighborhood.
//! A chain is the relay sequence of a `HEARD(k_m, …, k_1, i, v)` message;
//! two chains are disjoint when their relay sets do not intersect (the
//! shared committer endpoint is allowed).
//!
//! Chain evidence is *nested attestation*: the receiver is only certain of
//! the outermost transmission; each deeper hop is vouched for by the next
//! relay's honesty. Consequently evidence units are whole chains — a
//! max-flow over the union of chain edges would accept spliced
//! prefix/suffix "paths" no honest node ever attested. Maximum disjoint
//! chain selection is therefore a set-packing (equivalently, a maximum
//! independent set over the chain conflict graph), which this module
//! solves exactly with a budgeted branch-and-bound plus greedy seeding.
//! Exceeding the budget only *under*-reports (delaying a commit, never
//! causing a wrong one), so protocol safety is unaffected.

/// Maximum keys one stored chain can carry. Report chains are bounded by
/// the protocol (≤ 3 relays in the full §VI protocol, plus a possible
/// committer prefix under the one-level rule); the slack above that keeps
/// the cap safely away from every in-repo producer. Longer sequences are
/// rejected by [`ChainPacker::insert`] — they can never arise from
/// bounded-hop reports, and rejecting only under-counts (never commits
/// wrongly).
pub const MAX_CHAIN_KEYS: usize = 8;

/// A reported relay chain: the ordered relays between a committer and the
/// observing node (committer and observer excluded). An empty chain is a
/// direct observation of the committer's `COMMITTED` broadcast.
///
/// Relays are stored inline (chains are bounded at [`MAX_CHAIN_KEYS`]),
/// so a `Chain` is `Copy` and a packer's chain list is one flat
/// allocation — no per-chain heap traffic on the simulator's delivery
/// path. Unused slots are zero-filled, which keeps the derived
/// `Eq`/`Hash`/`Ord` consistent with the logical relay sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Chain {
    len: u8,
    relays: [u64; MAX_CHAIN_KEYS],
}

impl Chain {
    /// Creates a chain from its relay sequence (committer side first).
    ///
    /// # Panics
    ///
    /// Panics if `relays` exceeds [`MAX_CHAIN_KEYS`]; use
    /// [`Chain::try_new`] for a fallible version.
    #[must_use]
    pub fn new(relays: &[u64]) -> Self {
        Chain::try_new(relays).expect("chain exceeds MAX_CHAIN_KEYS")
    }

    /// Creates a chain from its relay sequence, or `None` if it exceeds
    /// [`MAX_CHAIN_KEYS`].
    #[must_use]
    pub fn try_new(relays: &[u64]) -> Option<Self> {
        if relays.len() > MAX_CHAIN_KEYS {
            return None;
        }
        let mut inline = [0u64; MAX_CHAIN_KEYS];
        inline[..relays.len()].copy_from_slice(relays);
        Some(Chain {
            len: relays.len() as u8,
            relays: inline,
        })
    }

    /// The relay sequence.
    #[must_use]
    pub fn relays(&self) -> &[u64] {
        &self.relays[..self.len as usize]
    }

    /// True iff this chain is a direct observation (no relays).
    #[must_use]
    pub fn is_direct(&self) -> bool {
        self.len == 0
    }

    /// True iff the chain repeats a relay (degenerate; only a faulty relay
    /// fabricates these, and they are discarded on arrival).
    #[must_use]
    pub fn has_repeats(&self) -> bool {
        // relay chains are short (≤ 3 in the paper's protocol): quadratic
        // scan beats hashing
        let relays = self.relays();
        relays
            .iter()
            .enumerate()
            .any(|(i, r)| relays[i + 1..].contains(r))
    }

    /// True iff `self` *dominates* `other`: `self` is non-direct and
    /// every relay of `self` also appears in `other`. Any filter
    /// admitting `other` then admits `self`, and — because a non-empty
    /// subset always conflicts with its superset — any packing using
    /// `other` can swap in `self`, so `other` is redundant. The direct
    /// (empty) chain is deliberately excluded: it conflicts with nothing
    /// and can share a packing with its supersets.
    #[must_use]
    pub fn dominates(&self, other: &Chain) -> bool {
        !self.is_direct() && self.relays().iter().all(|r| other.relays().contains(r))
    }

    /// True iff the two chains share a relay.
    #[must_use]
    pub fn conflicts_with(&self, other: &Chain) -> bool {
        self.relays().iter().any(|r| other.relays().contains(r))
    }
}

/// Accumulates reported chains for one `(committer, value)` pair and
/// answers maximum-disjoint-subset queries.
///
/// # Example
///
/// ```
/// use rbcast_flow::ChainPacker;
///
/// let mut packer = ChainPacker::new();
/// packer.insert(&[1, 2]);   // i -> 1 -> 2 -> me
/// packer.insert(&[3]);      // i -> 3 -> me
/// packer.insert(&[2, 4]);   // conflicts with the first chain on relay 2
/// // Best disjoint set: {[1,2], [3]} or {[2,4], [3]} — size 2.
/// assert_eq!(packer.max_disjoint(|_| true, 5), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChainPacker {
    chains: Vec<Chain>,
    has_direct: bool,
}

/// Default branch-and-bound node budget used by
/// [`ChainPacker::max_disjoint`].
pub(crate) const DEFAULT_BB_BUDGET: u64 = 200_000;

/// Instances larger than this many (reduced) chains are truncated to the
/// shortest chains before packing; this only under-counts, never
/// over-counts.
const MAX_PACKING_INSTANCE: usize = 2_048;

impl ChainPacker {
    /// Creates an empty packer.
    #[must_use]
    pub fn new() -> Self {
        ChainPacker::default()
    }

    /// Records a reported chain. Returns `true` if the chain was new and
    /// undominated.
    ///
    /// Rejected outright: over-length chains (beyond [`MAX_CHAIN_KEYS`]),
    /// duplicates, degenerate (repeated-relay) chains, and chains
    /// *dominated* by an already-stored chain (one whose relay set is a
    /// subset of the new chain's) — the stored chain is at least as good
    /// under every admissibility filter, so the newcomer can never
    /// matter. Conversely, stored chains dominated by the newcomer are
    /// evicted. This keeps the packer an antichain, which is what bounds
    /// memory when report traffic is combinatorial.
    ///
    /// The antichain invariant doubles as the duplicate filter, so no
    /// seen-set is kept: a duplicate direct chain short-circuits on
    /// `has_direct`, and any non-direct repeat — stored, rejected, or
    /// since evicted — is dominated by a stored chain (dominance is
    /// transitive through evictions) and bounces off the same check.
    pub fn insert(&mut self, relays: &[u64]) -> bool {
        let Some(chain) = Chain::try_new(relays) else {
            return false;
        };
        if chain.has_repeats() {
            return false;
        }
        if chain.is_direct() {
            if self.has_direct {
                return false;
            }
            self.has_direct = true;
            self.chains.push(chain);
            return true;
        }
        if self.chains.iter().any(|c| c.dominates(&chain)) {
            return false;
        }
        self.chains.retain(|c| !chain.dominates(c));
        self.chains.push(chain);
        true
    }

    /// Number of distinct recorded chains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True iff no chains are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// True iff the committer was observed directly.
    #[must_use]
    pub fn has_direct(&self) -> bool {
        self.has_direct
    }

    /// Iterates over the recorded chains.
    pub fn iter(&self) -> impl Iterator<Item = &Chain> {
        self.chains.iter()
    }

    /// Size of the largest set of pairwise disjoint chains whose relays
    /// all satisfy `admit`, computed with the default search budget and
    /// stopping early once `target` chains are found.
    ///
    /// Returns `min(target, true maximum)` when the search completes
    /// within budget; may under-report on pathological instances (never
    /// over-reports).
    #[must_use]
    pub fn max_disjoint<F>(&self, admit: F, target: u32) -> u32
    where
        F: Fn(u64) -> bool,
    {
        self.max_disjoint_budgeted(admit, target, DEFAULT_BB_BUDGET)
    }

    /// [`ChainPacker::max_disjoint`] reusing caller-owned scratch
    /// buffers, with the default search budget.
    #[must_use]
    pub fn max_disjoint_reusing<F>(&self, scratch: &mut PackScratch, admit: F, target: u32) -> u32
    where
        F: Fn(u64) -> bool,
    {
        self.max_disjoint_scratch(scratch, admit, target, DEFAULT_BB_BUDGET)
    }

    /// [`ChainPacker::max_disjoint`] with an explicit branch-and-bound
    /// node budget.
    #[must_use]
    pub fn max_disjoint_budgeted<F>(&self, admit: F, target: u32, budget: u64) -> u32
    where
        F: Fn(u64) -> bool,
    {
        let mut scratch = PackScratch::default();
        self.max_disjoint_scratch(&mut scratch, admit, target, budget)
    }

    /// [`ChainPacker::max_disjoint`] reusing caller-owned scratch
    /// buffers. The packing query sits inside the commit-rule evaluation
    /// called every round per node, per candidate neighborhood center;
    /// threading one [`PackScratch`] through those calls removes every
    /// per-query allocation (chain filters, conflict bitsets, and the
    /// branch-and-bound candidate stacks are all reused).
    #[must_use]
    pub fn max_disjoint_scratch<F>(
        &self,
        scratch: &mut PackScratch,
        admit: F,
        target: u32,
        budget: u64,
    ) -> u32
    where
        F: Fn(u64) -> bool,
    {
        if target == 0 {
            return 0;
        }
        let PackScratch {
            kept,
            order,
            taken_relays,
            conflict,
            full,
            pool,
        } = scratch;

        // Admitted chains only (already an antichain by insert-time
        // dominance pruning, so no reduction pass is needed here).
        kept.clear();
        kept.extend(
            (0..self.chains.len()).filter(|&i| self.chains[i].relays().iter().all(|&r| admit(r))),
        );

        // A direct observation conflicts with nothing: count it separately.
        let direct_bonus = u32::from(kept.iter().any(|&i| self.chains[i].is_direct()));
        kept.retain(|&i| !self.chains[i].is_direct());

        // Bound instance size (shortest chains kept — they conflict least).
        if kept.len() > MAX_PACKING_INSTANCE {
            kept.sort_by_key(|&i| self.chains[i].relays().len());
            kept.truncate(MAX_PACKING_INSTANCE);
        }

        let need = target.saturating_sub(direct_bonus);
        if need == 0 {
            return target.min(direct_bonus);
        }

        let packed = max_disjoint_sets(
            &self.chains,
            kept,
            order,
            taken_relays,
            conflict,
            full,
            pool,
            need,
            budget,
        );
        (direct_bonus + packed).min(target)
    }
}

/// Reusable scratch buffers for [`ChainPacker::max_disjoint_scratch`].
///
/// One instance per evaluating node suffices; buffers grow to the
/// high-water mark of the queries they serve and are reused verbatim
/// afterwards. Holding scratch never changes a query's answer — it only
/// removes the per-query allocations.
#[derive(Debug, Default)]
pub struct PackScratch {
    /// Admitted chain indices (the packing instance).
    kept: Vec<usize>,
    /// Greedy processing order (indices into the packer's chains).
    order: Vec<usize>,
    /// Relays already used by the greedy packing.
    taken_relays: Vec<u64>,
    /// Flattened conflict bitsets (`n × words`).
    conflict: Vec<u64>,
    /// The all-candidates bitset.
    full: Vec<u64>,
    /// Per-depth candidate bitsets for the branch-and-bound include
    /// branch (the exclude branch mutates in place and needs none).
    pool: Vec<Vec<u64>>,
}

/// Maximum independent set over the chain conflict graph, early-exiting at
/// `target`, with a recursion-node `budget`. `kept` holds the instance's
/// chain indices; the remaining slices are reused scratch.
#[allow(clippy::too_many_arguments)] // internal: one call site, fed from PackScratch fields
fn max_disjoint_sets(
    chains: &[Chain],
    kept: &[usize],
    order: &mut Vec<usize>,
    taken_relays: &mut Vec<u64>,
    conflict: &mut Vec<u64>,
    full: &mut Vec<u64>,
    pool: &mut Vec<Vec<u64>>,
    target: u32,
    budget: u64,
) -> u32 {
    let n = kept.len();
    if n == 0 || target == 0 {
        return 0;
    }

    // Cheap greedy first: shortest chains first, take whenever disjoint
    // from everything taken. Chains are ≤ 3 relays, so the conflict test
    // against the taken set is a handful of comparisons. In benign runs
    // this finds `target` immediately and the exact search never builds.
    order.clear();
    order.extend_from_slice(kept);
    order.sort_by_key(|&i| chains[i].relays().len());
    taken_relays.clear();
    let mut greedy = 0u32;
    for &i in order.iter() {
        if chains[i].relays().iter().all(|r| !taken_relays.contains(r)) {
            taken_relays.extend_from_slice(chains[i].relays());
            greedy += 1;
            if greedy >= target {
                return target;
            }
        }
    }

    // Exact branch and bound on the conflict graph (bitsets), only when
    // the greedy answer leaves room for improvement.
    if greedy as usize >= n {
        return greedy;
    }
    let words = n.div_ceil(64);
    conflict.clear();
    conflict.resize(n * words, 0);
    for a in 0..n {
        for b in (a + 1)..n {
            if chains[kept[a]].conflicts_with(&chains[kept[b]]) {
                conflict[a * words + b / 64] |= 1 << (b % 64);
                conflict[b * words + a / 64] |= 1 << (a % 64);
            }
        }
    }
    let mut best = greedy;
    full.clear();
    full.extend((0..words).map(|w| {
        let hi = (n - w * 64).min(64);
        if hi == 64 {
            u64::MAX
        } else {
            (1u64 << hi) - 1
        }
    }));
    let mut nodes_left = budget;
    bb(
        conflict,
        words,
        pool,
        0,
        full,
        0,
        target,
        &mut best,
        &mut nodes_left,
    );
    best.min(target)
}

fn popcount(set: &[u64]) -> u32 {
    set.iter().map(|w| w.count_ones()).sum()
}

/// Branch and bound over the candidate bitset. The exclude branch
/// iterates in place (clearing one vertex per pass); the include branch
/// recurses onto a per-depth buffer borrowed from `pool`, so steady-state
/// search performs no allocation at all.
#[allow(clippy::too_many_arguments)] // recursive kernel sharing one mutable search state
fn bb(
    conflict: &[u64],
    words: usize,
    pool: &mut Vec<Vec<u64>>,
    depth: usize,
    candidates: &mut [u64],
    current: u32,
    target: u32,
    best: &mut u32,
    nodes_left: &mut u64,
) {
    loop {
        if *best >= target || *nodes_left == 0 {
            return;
        }
        *nodes_left -= 1;
        if current > *best {
            *best = current;
        }
        let remaining = popcount(candidates);
        if current + remaining <= *best {
            return; // cannot improve
        }
        // first alive vertex
        let Some(v) = candidates
            .iter()
            .enumerate()
            .find(|(_, &word)| word != 0)
            .map(|(w, &word)| w * 64 + word.trailing_zeros() as usize)
        else {
            return;
        };
        // Neither branch keeps v as a candidate.
        candidates[v / 64] &= !(1 << (v % 64));

        // Branch 1: include v (recurse on the pooled buffer).
        if depth >= pool.len() {
            pool.push(Vec::new());
        }
        let mut with_v = std::mem::take(&mut pool[depth]);
        with_v.clear();
        with_v.extend_from_slice(candidates);
        for w in 0..words {
            with_v[w] &= !conflict[v * words + w];
        }
        bb(
            conflict,
            words,
            pool,
            depth + 1,
            &mut with_v,
            current + 1,
            target,
            best,
            nodes_left,
        );
        pool[depth] = with_v;

        // Branch 2: exclude v — continue this loop on the same buffer.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn direct_chain_is_free() {
        let mut p = ChainPacker::new();
        p.insert(&[]);
        assert!(p.has_direct());
        assert_eq!(p.max_disjoint(|_| true, 3), 1);
    }

    #[test]
    fn duplicates_ignored() {
        let mut p = ChainPacker::new();
        assert!(p.insert(&[1, 2]));
        assert!(!p.insert(&[1, 2]));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn degenerate_chains_rejected() {
        let mut p = ChainPacker::new();
        assert!(!p.insert(&[1, 1]));
        assert!(p.is_empty());
    }

    #[test]
    fn disjoint_singletons_all_count() {
        let mut p = ChainPacker::new();
        for k in 0..5u64 {
            p.insert(&[k]);
        }
        assert_eq!(p.max_disjoint(|_| true, 10), 5);
        assert_eq!(p.max_disjoint(|_| true, 3), 3); // early exit at target
    }

    #[test]
    fn conflicting_singletons_count_once() {
        let mut p = ChainPacker::new();
        p.insert(&[7]);
        p.insert(&[7, 8]); // dominated by [7] anyway
        assert_eq!(p.max_disjoint(|_| true, 10), 1);
    }

    #[test]
    fn admit_filter_excludes_chains() {
        let mut p = ChainPacker::new();
        p.insert(&[1]);
        p.insert(&[2]);
        p.insert(&[3]);
        // only relays < 3 admitted (e.g. inside the neighborhood)
        assert_eq!(p.max_disjoint(|r| r < 3, 10), 2);
    }

    #[test]
    fn packing_requires_exact_search() {
        // Chains: {1,2}, {2,3}, {3,4}, {1,4}: a 4-cycle conflict graph;
        // max independent set = 2 ({1,2},{3,4}).
        let mut p = ChainPacker::new();
        p.insert(&[1, 2]);
        p.insert(&[2, 3]);
        p.insert(&[3, 4]);
        p.insert(&[1, 4]);
        assert_eq!(p.max_disjoint(|_| true, 10), 2);
    }

    #[test]
    fn greedy_trap_solved_exactly() {
        // A star chain conflicting with everything plus independent pairs:
        // exact answer must skip the star.
        let mut p = ChainPacker::new();
        p.insert(&[1, 2, 3]); // conflicts with all below
        p.insert(&[1, 10]);
        p.insert(&[2, 11]);
        p.insert(&[3, 12]);
        assert_eq!(p.max_disjoint(|_| true, 10), 3);
    }

    #[test]
    fn mixed_direct_and_relayed() {
        let mut p = ChainPacker::new();
        p.insert(&[]);
        p.insert(&[1]);
        p.insert(&[2, 3]);
        assert_eq!(p.max_disjoint(|_| true, 10), 3);
    }

    #[test]
    fn dominance_superset_dropped() {
        let mut p = ChainPacker::new();
        p.insert(&[5]);
        p.insert(&[5, 6]); // superset of {5}: dominated
        p.insert(&[6, 7]);
        // optimal: {5} + {6,7}
        assert_eq!(p.max_disjoint(|_| true, 10), 2);
    }

    #[test]
    fn duplicate_direct_chains_rejected_without_a_seen_set() {
        let mut p = ChainPacker::new();
        assert!(p.insert(&[]));
        assert!(!p.insert(&[]));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn evicted_chain_reoffered_still_rejected() {
        // [5,6] stored, then evicted by its dominator [5]; re-offering
        // [5,6] must still return false (dominance survives eviction).
        let mut p = ChainPacker::new();
        assert!(p.insert(&[5, 6]));
        assert!(p.insert(&[5]));
        assert_eq!(p.len(), 1);
        assert!(!p.insert(&[5, 6]));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn over_length_chains_rejected() {
        let mut p = ChainPacker::new();
        let long: Vec<u64> = (0..=MAX_CHAIN_KEYS as u64).collect();
        assert!(!p.insert(&long));
        assert!(p.is_empty());
        let max: Vec<u64> = (0..MAX_CHAIN_KEYS as u64).collect();
        assert!(p.insert(&max));
    }

    #[test]
    fn chains_are_copy_and_zero_padded_consistently() {
        // Equality/ordering must ignore the unused inline slots.
        let a = Chain::new(&[1, 2]);
        let b = Chain::new(&[1, 2]);
        assert_eq!(a, b);
        assert_eq!(a.relays(), &[1, 2]);
        let c = a; // Copy
        assert_eq!(c, b);
    }

    #[test]
    fn target_zero_is_zero() {
        let mut p = ChainPacker::new();
        p.insert(&[1]);
        assert_eq!(p.max_disjoint(|_| true, 0), 0);
    }

    #[test]
    fn paper_worst_case_shape() {
        // Simulate the r=2 construction: 10 disjoint chains of ≤3 relays
        // plus 4 adversarial chains overlapping each of the first 4.
        let mut p = ChainPacker::new();
        for k in 0..10u64 {
            p.insert(&[100 + 3 * k, 101 + 3 * k, 102 + 3 * k]);
        }
        for k in 0..4u64 {
            p.insert(&[100 + 3 * k, 900 + k]); // conflicts with chain k
        }
        assert_eq!(p.max_disjoint(|_| true, 10), 10);
    }

    proptest! {
        /// Exact result is at least as large as any greedy pick, and is a
        /// valid packing size (cross-checked by brute force on small
        /// instances).
        #[test]
        fn matches_brute_force(
            chains in proptest::collection::vec(
                proptest::collection::vec(0u64..8, 1..3), 1..9)
        ) {
            let mut p = ChainPacker::new();
            for c in &chains {
                p.insert(c);
            }
            let got = p.max_disjoint(|_| true, 32);

            // brute force over all subsets of distinct non-degenerate chains
            let distinct: Vec<Chain> = {
                let mut s = std::collections::BTreeSet::new();
                for c in &chains {
                    let ch = Chain::new(c);
                    if !ch.has_repeats() {
                        s.insert(ch);
                    }
                }
                s.into_iter().collect()
            };
            let n = distinct.len();
            let mut best = 0u32;
            for mask in 0u32..(1 << n) {
                let sel: Vec<&Chain> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| &distinct[i])
                    .collect();
                let ok = sel.iter().enumerate().all(|(a, ca)| {
                    sel.iter().skip(a + 1).all(|cb| !ca.conflicts_with(cb))
                });
                if ok {
                    best = best.max(sel.len() as u32);
                }
            }
            prop_assert_eq!(got, best);
        }
    }
}
