//! Process-wide instrumentation counters.
//!
//! The flow crate sits below the observability layer
//! (`rbcast-core::obs`), so it cannot register counters there directly;
//! instead it maintains its own monotonic atomics, which the registry
//! reads when taking a metrics snapshot. The counters are diagnostics
//! only — nothing deterministic (hashes, journals, outcomes) may read
//! them.

use std::sync::atomic::{AtomicU64, Ordering};

static AUGMENTATIONS: AtomicU64 = AtomicU64::new(0);
static MIN_CUTS: AtomicU64 = AtomicU64::new(0);

/// Records one augmenting path routed by Dinic's algorithm.
pub(crate) fn count_augmentation() {
    // audit:allow(atomic-ordering): monotone diagnostic counter, read only at snapshot
    AUGMENTATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total augmenting paths routed by [`crate::FlowNetwork`] since process
/// start, across all threads. Monotonic.
#[must_use]
pub fn augmentations_total() -> u64 {
    // audit:allow(atomic-ordering): monotone diagnostic counter, read only at snapshot
    AUGMENTATIONS.load(Ordering::Relaxed)
}

/// Records one minimum-vertex-cut extraction.
pub(crate) fn count_min_cut() {
    // audit:allow(atomic-ordering): monotone diagnostic counter, read only at snapshot
    MIN_CUTS.fetch_add(1, Ordering::Relaxed);
}

/// Total min-vertex-cut queries answered by
/// [`crate::try_min_vertex_cut`] since process start, across all
/// threads. Monotonic. The adversary search uses cut extraction as its
/// seeding primitive, so this counter tracks how hard a search leaned on
/// the flow machinery.
#[must_use]
pub fn min_cuts_total() -> u64 {
    // audit:allow(atomic-ordering): monotone diagnostic counter, read only at snapshot
    MIN_CUTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    #[test]
    fn augmentations_advance_with_flow() {
        let before = augmentations_total();
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 2);
        // Other tests run concurrently, so only a lower bound is stable.
        assert!(augmentations_total() >= before + 2);
    }

    #[test]
    fn min_cut_queries_advance_counter() {
        let before = min_cuts_total();
        // path 0-1-2: the cut is {1}
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let cut = crate::try_min_vertex_cut(&adj, 0, 2)
            .expect("valid terminals")
            .expect("non-adjacent terminals");
        assert_eq!(cut, vec![1]);
        assert!(min_cuts_total() > before);
    }
}
