//! Shared, immutable CSR neighbor tables — the topology arena.
//!
//! Every run of a sweep used to rebuild the same neighbor lists
//! (`Vec<Vec<NodeId>>`, one heap allocation per node) and re-derive the
//! same commit-rule geometry from scratch each round. A [`NeighborTable`]
//! precomputes both once, in compressed-sparse-row form:
//!
//! * a flat neighbor array (`offsets` + `targets`) whose per-node slices
//!   reproduce [`Torus::neighborhood`] exactly — same members, in the
//!   same order — so swapping the table in changes no observable
//!   behavior, only where the bytes live;
//! * closed-ball offset tables for every distance `d ≤ r + 1`: the
//!   candidate-center scans of the §VI commit rules enumerate "all grid
//!   points within `d` of here", and on a torus large enough to host the
//!   radius ([`Torus::supports_radius`]) that set is a fixed
//!   position-independent offset stencil.
//!
//! The table is immutable after construction, so one instance can be
//! shared across worker threads behind an `Arc` and across every run of
//! a sweep, keyed by `(torus dims, r, metric)`.

use crate::{Coord, Metric, NodeId, Torus};
use std::fmt;

/// Precomputed radius-`r` topology of a [`Torus`] under one [`Metric`]:
/// CSR neighbor lists plus the closed-ball offset stencils used by the
/// commit-rule center scans.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, NeighborTable, Torus};
///
/// let torus = Torus::new(20, 20);
/// let table = NeighborTable::build(&torus, 2, Metric::Linf);
/// let center = torus.id(Coord::new(5, 5));
/// assert_eq!(table.neighbors(center).len(), 24); // (2r+1)² − 1
/// ```
pub struct NeighborTable {
    torus: Torus,
    radius: u32,
    metric: Metric,
    /// CSR row starts: `offsets[i]..offsets[i + 1]` indexes node `i`'s
    /// neighbors inside `targets`. Length `n + 1`.
    offsets: Vec<u32>,
    /// All neighbor lists, flattened into one allocation.
    targets: Vec<NodeId>,
    /// `balls[d]` holds every offset within metric distance `d` of the
    /// origin, *including* the origin, for `d ∈ 0..=radius + 1`, in the
    /// row-major scan order the commit-rule center scans rely on.
    balls: Vec<Vec<Coord>>,
}

impl NeighborTable {
    /// Builds the table for `torus` at transmission radius `radius`
    /// under `metric`.
    ///
    /// # Panics
    ///
    /// Panics if the torus is too small to emulate the infinite grid at
    /// this radius (see [`Torus::supports_radius`]) — undersized tori
    /// would alias neighborhoods through the wrap-around.
    #[must_use]
    pub fn build(torus: &Torus, radius: u32, metric: Metric) -> Self {
        assert!(
            torus.supports_radius(radius),
            "{torus} cannot faithfully host radius {radius} (needs side > {})",
            2 * (2 * radius + 1),
        );
        let offs = crate::metric_offsets(radius, metric);
        let n = torus.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(n * offs.len());
        offsets.push(0u32);
        for id in torus.node_ids() {
            let c = torus.coord(id);
            targets.extend(offs.iter().map(|&off| torus.id(c + off)));
            offsets.push(targets.len() as u32);
        }
        let balls = (0..=radius + 1).map(|d| ball_stencil(d, metric)).collect();
        NeighborTable {
            torus: torus.clone(),
            radius,
            metric,
            offsets,
            targets,
            balls,
        }
    }

    /// Builds the table for tori too small to faithfully emulate the
    /// infinite grid at `radius` (where [`NeighborTable::build`] would
    /// panic): the metric stencil wraps, so offsets that alias through
    /// the torus collapse to one neighbor entry (first occurrence kept)
    /// and the node itself is dropped.
    ///
    /// On a torus that *does* support the radius this is exactly
    /// [`NeighborTable::build`]. The networked cluster harness uses the
    /// relaxed form for small deployments (e.g. a 3×3 torus at `r = 1`,
    /// where every node simply hears every other node); the faithful
    /// constructor remains the required path for paper experiments.
    #[must_use]
    pub fn build_wrapping(torus: &Torus, radius: u32, metric: Metric) -> Self {
        if torus.supports_radius(radius) {
            return NeighborTable::build(torus, radius, metric);
        }
        let offs = crate::metric_offsets(radius, metric);
        let n = torus.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<NodeId> = Vec::with_capacity(n * offs.len());
        offsets.push(0u32);
        for id in torus.node_ids() {
            let c = torus.coord(id);
            let row_start = targets.len();
            for &off in &offs {
                let nb = torus.id(c + off);
                if nb != id && !targets[row_start..].contains(&nb) {
                    targets.push(nb);
                }
            }
            offsets.push(targets.len() as u32);
        }
        let balls = (0..=radius + 1).map(|d| ball_stencil(d, metric)).collect();
        NeighborTable {
            torus: torus.clone(),
            radius,
            metric,
            offsets,
            targets,
            balls,
        }
    }

    /// The torus this table was built for.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The transmission radius.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The distance metric.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.torus.len()
    }

    /// True iff the torus has no nodes (never, by construction — kept
    /// for `len`/`is_empty` API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.torus.is_empty()
    }

    /// The radius-`radius` neighborhood of `id` (excluding `id` itself):
    /// the same ids, in the same order, as [`Torus::neighborhood`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the torus.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All offsets within metric distance `d` of the origin, including
    /// the origin itself — the closed-ball stencil the commit rules scan
    /// for candidate neighborhood centers. Position-independent: the
    /// ball around `c` is `{canonical(c + off)}` over these offsets.
    ///
    /// # Panics
    ///
    /// Panics if `d > radius + 1` (the rules never look further than the
    /// frontier distance `r + 1`).
    #[must_use]
    pub fn ball_offsets(&self, d: u32) -> &[Coord] {
        &self.balls[d as usize]
    }

    /// A [`LocalFrame`] centered on `me` spanning L∞ displacement
    /// `span` per axis — the dense small-integer index space the
    /// evidence store uses for ball-local committer slots.
    #[must_use]
    pub fn local_frame(&self, me: Coord, span: u32) -> LocalFrame {
        LocalFrame {
            torus: self.torus.clone(),
            me,
            span: i64::from(span),
            side: 2 * i64::from(span) + 1,
        }
    }
}

/// Ball-local coordinate frame around one node: maps every torus
/// coordinate whose minimal wrap displacement from the center fits in
/// the `(2·span + 1)²` box to a dense slot index in `0..slots()`.
///
/// [`Torus::displacement`] assigns each canonical coordinate a unique
/// minimal displacement, so the mapping is injective over all nodes it
/// accepts — even when the box is larger than the torus itself (slots
/// simply go unused). Coordinates outside the box map to `None`.
#[derive(Debug, Clone)]
pub struct LocalFrame {
    torus: Torus,
    me: Coord,
    span: i64,
    side: i64,
}

impl LocalFrame {
    /// The center coordinate the frame was built around.
    #[must_use]
    pub fn center(&self) -> Coord {
        self.me
    }

    /// Number of slots in the frame: `(2·span + 1)²`.
    #[must_use]
    pub fn slots(&self) -> usize {
        (self.side * self.side) as usize
    }

    /// Dense slot of node `id` (see [`LocalFrame::slot_of`]).
    #[must_use]
    pub fn slot_of_id(&self, id: NodeId) -> Option<usize> {
        self.slot_of(self.torus.coord(id))
    }

    /// Dense slot of `c`, or `None` if its minimal displacement from
    /// the center exceeds the span on either axis.
    #[must_use]
    pub fn slot_of(&self, c: Coord) -> Option<usize> {
        let d = self.torus.displacement(self.me, c);
        if d.x.abs() > self.span || d.y.abs() > self.span {
            return None;
        }
        Some(((d.y + self.span) * self.side + (d.x + self.span)) as usize)
    }
}

/// Every offset with metric distance ≤ `d` from the origin (origin
/// included), in row-major (`dy` outer, `dx` inner) scan order.
fn ball_stencil(d: u32, metric: Metric) -> Vec<Coord> {
    let di = i64::from(d);
    let mut v = Vec::new();
    for dy in -di..=di {
        for dx in -di..=di {
            let off = Coord::new(dx, dy);
            if metric.within(Coord::ORIGIN, off, d) {
                v.push(off);
            }
        }
    }
    v
}

impl fmt::Debug for NeighborTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NeighborTable")
            .field("torus", &self.torus)
            .field("radius", &self.radius)
            .field("metric", &self.metric)
            .field("edges", &self.targets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tori every cross-check runs on: the canonical experiment
    /// torus for `r` and the smallest torus that still supports `r`.
    fn tori_for(r: u32) -> [Torus; 2] {
        let min_side = 2 * (2 * r + 1) + 1;
        [Torus::for_radius(r), Torus::new(min_side, min_side)]
    }

    #[test]
    fn csr_matches_naive_neighborhood_exhaustively() {
        // The tentpole's correctness anchor: for r ∈ {1, 2, 3}, both
        // metrics, every node of both a roomy and a minimal torus, the
        // CSR slice must equal the naive enumeration *element for
        // element* (same members, same order).
        for r in 1..=3u32 {
            for metric in [Metric::Linf, Metric::L2] {
                for torus in tori_for(r) {
                    let table = NeighborTable::build(&torus, r, metric);
                    for id in torus.node_ids() {
                        let naive: Vec<NodeId> = torus.neighborhood(id, r, metric).collect();
                        assert_eq!(
                            table.neighbors(id),
                            naive.as_slice(),
                            "node {id} on {torus} r={r} {metric}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degrees_are_uniform_and_match_the_metric() {
        for r in 1..=3u32 {
            for metric in [Metric::Linf, Metric::L2] {
                let torus = Torus::for_radius(r);
                let table = NeighborTable::build(&torus, r, metric);
                for id in torus.node_ids() {
                    assert_eq!(table.neighbors(id).len(), metric.neighborhood_size(r));
                }
            }
        }
    }

    #[test]
    fn wraparound_neighbors_are_distinct_and_within_range() {
        // On the *minimal* supported torus every corner neighborhood
        // wraps; members must still be distinct and at toroidal distance
        // ≤ r.
        for r in 1..=3u32 {
            for metric in [Metric::Linf, Metric::L2] {
                let [_, torus] = tori_for(r);
                let table = NeighborTable::build(&torus, r, metric);
                for id in torus.node_ids() {
                    let nbrs = table.neighbors(id);
                    let set: std::collections::BTreeSet<NodeId> = nbrs.iter().copied().collect();
                    assert_eq!(set.len(), nbrs.len(), "duplicate neighbor of {id}");
                    for &nb in nbrs {
                        assert!(nb != id);
                        assert!(torus.within(torus.coord(id), torus.coord(nb), r, metric));
                    }
                }
            }
        }
    }

    #[test]
    fn ball_offsets_match_brute_force_torus_scan() {
        // ball_offsets(d) translated to any center must equal the set of
        // torus nodes within d of that center — the exact contract the
        // commit-rule center scans need.
        for r in 1..=3u32 {
            for metric in [Metric::Linf, Metric::L2] {
                let [_, torus] = tori_for(r);
                let table = NeighborTable::build(&torus, r, metric);
                for d in 0..=r + 1 {
                    for around in [Coord::ORIGIN, Coord::new(1, i64::from(torus.height()) - 1)] {
                        let via_table: std::collections::BTreeSet<Coord> = table
                            .ball_offsets(d)
                            .iter()
                            .map(|&off| torus.canonical(around + off))
                            .collect();
                        let brute: std::collections::BTreeSet<Coord> = torus
                            .coords()
                            .filter(|&c| torus.within(around, c, d, metric))
                            .collect();
                        assert_eq!(via_table, brute, "d={d} around={around} {metric}");
                    }
                }
            }
        }
    }

    #[test]
    fn ball_offsets_are_center_inclusive_and_ordered() {
        let table = NeighborTable::build(&Torus::for_radius(2), 2, Metric::Linf);
        assert_eq!(table.ball_offsets(0), &[Coord::ORIGIN]);
        // row-major scan order: dy outer, dx inner
        let d1 = table.ball_offsets(1);
        assert_eq!(d1.len(), 9);
        assert_eq!(d1[0], Coord::new(-1, -1));
        assert_eq!(d1[4], Coord::ORIGIN);
        assert_eq!(d1[8], Coord::new(1, 1));
    }

    #[test]
    fn local_frame_is_injective_and_center_inclusive() {
        for torus in [Torus::for_radius(2), Torus::new(11, 11)] {
            let table = NeighborTable::build(&torus, 2, Metric::Linf);
            let me = Coord::new(3, 7);
            let frame = table.local_frame(me, 6); // span 3r for r = 2
            assert_eq!(frame.center(), me);
            assert_eq!(frame.slots(), 13 * 13);
            let center_slot = frame.slot_of(me).unwrap();
            assert_eq!(center_slot, (6 * 13 + 6) as usize);
            // Injective over every accepted node, even when the box is
            // larger than the torus (the 11×11 case).
            let mut seen = std::collections::BTreeMap::new();
            for c in torus.coords() {
                if let Some(slot) = frame.slot_of(c) {
                    assert!(slot < frame.slots());
                    if let Some(prev) = seen.insert(slot, c) {
                        panic!("slot {slot} aliases {prev} and {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn local_frame_rejects_out_of_span_coords() {
        let torus = Torus::new(40, 40);
        let table = NeighborTable::build(&torus, 2, Metric::Linf);
        let frame = table.local_frame(Coord::new(2, 2), 6);
        assert!(frame.slot_of(Coord::new(2, 2)).is_some());
        assert!(frame.slot_of(Coord::new(8, 2)).is_some());
        assert!(frame.slot_of(Coord::new(9, 2)).is_none());
        assert!(frame.slot_of(Coord::new(2, 9)).is_none());
        // Wraparound: (39, 2) has minimal displacement (-3, 0), well
        // inside the span even though the raw difference is 37.
        assert!(frame.slot_of(Coord::new(39, 2)).is_some());
        assert!(frame.slot_of(Coord::new(35, 2)).is_none());
    }

    #[test]
    #[should_panic(expected = "cannot faithfully host")]
    fn rejects_undersized_torus() {
        let _ = NeighborTable::build(&Torus::new(8, 8), 2, Metric::Linf);
    }

    #[test]
    fn build_wrapping_matches_build_on_supported_tori() {
        for r in 1..=2u32 {
            for metric in [Metric::Linf, Metric::L2] {
                let torus = Torus::for_radius(r);
                let strict = NeighborTable::build(&torus, r, metric);
                let relaxed = NeighborTable::build_wrapping(&torus, r, metric);
                for id in torus.node_ids() {
                    assert_eq!(strict.neighbors(id), relaxed.neighbors(id), "node {id}");
                }
            }
        }
    }

    #[test]
    fn build_wrapping_hosts_a_3x3_torus_at_r1() {
        // The cluster smoke topology: 9 nodes, everyone hears everyone.
        let torus = Torus::new(3, 3);
        let table = NeighborTable::build_wrapping(&torus, 1, Metric::Linf);
        for id in torus.node_ids() {
            let nbrs = table.neighbors(id);
            assert_eq!(nbrs.len(), 8, "node {id} must hear all 8 others");
            let set: std::collections::BTreeSet<NodeId> = nbrs.iter().copied().collect();
            assert_eq!(set.len(), 8, "duplicate neighbor of {id}");
            assert!(!nbrs.contains(&id), "node {id} must not hear itself");
        }
    }

    #[test]
    fn build_wrapping_collapses_aliased_offsets() {
        // On a 2×2 torus at r = 1 the eight Moore offsets alias down to
        // the three other nodes; the relaxed table must dedup them.
        let torus = Torus::new(2, 2);
        let table = NeighborTable::build_wrapping(&torus, 1, Metric::Linf);
        for id in torus.node_ids() {
            let nbrs = table.neighbors(id);
            assert_eq!(nbrs.len(), 3, "node {id}: {nbrs:?}");
        }
    }

    #[test]
    fn debug_is_compact() {
        let table = NeighborTable::build(&Torus::for_radius(1), 1, Metric::Linf);
        let s = format!("{table:?}");
        assert!(s.contains("NeighborTable"));
        assert!(s.len() < 200, "debug output dumps the arrays: {s}");
    }
}
