//! Fixed-capacity bitset over `u64` words.
//!
//! The sparse wavefront engine keeps its per-round node state — delivered
//! set, wake set, decided set, completion mask — as bit-packed arrays so
//! that a 10⁶-node torus's round bookkeeping stays cache-resident
//! (125 KB per set instead of 1 MB+ of `Vec<bool>` / `Vec<Option<_>>`).
//! Membership updates are O(1), population counts are hardware popcounts,
//! and frontier gathering walks words (O(n/64)) instead of nodes (O(n)).

/// A fixed-capacity set of `usize` indices, bit-packed into `u64` words.
///
/// Capacity is fixed at construction; indices at or past `len()` panic in
/// debug builds and must never be used (the high bits of the last word
/// are kept zero so `count_ones` and word-level iteration stay exact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for indices `0..len`.
    #[must_use]
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (the exclusive upper bound on indices).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `idx`. Returns `true` iff the bit was newly set.
    ///
    /// # Panics
    ///
    /// If `idx >= len()`.
    pub fn set(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `idx`. Returns `true` iff the bit was previously set.
    ///
    /// # Panics
    ///
    /// If `idx >= len()`.
    pub fn clear(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// If `idx >= len()`.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Removes every element, keeping capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements (hardware popcount per word).
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Number of elements present in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// If the capacities differ.
    #[must_use]
    pub fn intersection_count(&self, other: &BitSet) -> u64 {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// Calls `f` with every index present in `self`, ascending.
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                f(u32::try_from(w).expect("word index fits u32") * 64 + b);
            }
        }
    }

    /// Calls `f` with every index present in `self | other`, ascending.
    /// Word-level OR iteration: O(n/64) plus one call per element.
    ///
    /// # Panics
    ///
    /// If the capacities differ.
    pub fn for_each_union(&self, other: &BitSet, mut f: impl FnMut(u32)) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (w, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut bits = a | b;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                f(u32::try_from(w).expect("word index fits u32") * 64 + bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut s = BitSet::new(130);
        assert!(!s.get(0));
        assert!(s.set(0));
        assert!(!s.set(0), "second insert reports not-fresh");
        assert!(s.set(129));
        assert!(s.get(0) && s.get(129) && !s.get(64));
        assert_eq!(s.count_ones(), 2);
        assert!(s.clear(0));
        assert!(!s.clear(0), "second removal reports absent");
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_all_keeps_capacity() {
        let mut s = BitSet::new(100);
        for i in (0..100).step_by(3) {
            s.set(i);
        }
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.len(), 100);
        assert!(s.set(99));
    }

    #[test]
    fn intersection_count_matches_naive() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(2) {
            a.set(i);
        }
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        let naive = (0..200).filter(|&i| a.get(i) && b.get(i)).count() as u64;
        assert_eq!(a.intersection_count(&b), naive);
        assert_eq!(naive, 34); // multiples of 6 in 0..200, inclusive of 0
    }

    #[test]
    fn for_each_union_is_sorted_and_complete() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 65, 128, 299] {
            a.set(i);
        }
        for i in [5usize, 64, 130, 298] {
            b.set(i);
        }
        let mut got = Vec::new();
        a.for_each_union(&b, |i| got.push(i));
        assert_eq!(got, vec![0, 5, 63, 64, 65, 128, 130, 298, 299]);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn for_each_visits_every_member() {
        let mut s = BitSet::new(97);
        for i in (0..97).step_by(7) {
            s.set(i);
        }
        let mut got = Vec::new();
        s.for_each(|i| got.push(i as usize));
        assert_eq!(got, (0..97).step_by(7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut s = BitSet::new(64);
        s.set(64);
    }
}
