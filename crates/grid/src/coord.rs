//! Signed grid coordinates.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A point of the (conceptually infinite) unit square grid.
///
/// Nodes in the paper are uniquely identified by their grid location
/// `(x, y)`; the designated source sits at the origin. Coordinates are
/// signed so that the constructive proofs (which reason about regions on
/// the infinite grid relative to an arbitrary center `(a, b)`) can be
/// expressed directly.
///
/// # Example
///
/// ```
/// use rbcast_grid::Coord;
///
/// let p = Coord::new(3, -1);
/// let q = p + Coord::new(-3, 1);
/// assert_eq!(q, Coord::ORIGIN);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Horizontal grid position.
    pub x: i64,
    /// Vertical grid position.
    pub y: i64,
}

impl Coord {
    /// The grid origin `(0, 0)` — the designated broadcast source.
    pub const ORIGIN: Coord = Coord { x: 0, y: 0 };

    /// Creates a coordinate from its two components.
    ///
    /// ```
    /// use rbcast_grid::Coord;
    /// assert_eq!(Coord::new(2, 5).x, 2);
    /// ```
    #[must_use]
    pub const fn new(x: i64, y: i64) -> Self {
        Coord { x, y }
    }

    /// Chebyshev (L∞) distance to `other`:
    /// `max(|x1 − x2|, |y1 − y2|)`.
    ///
    /// ```
    /// use rbcast_grid::Coord;
    /// assert_eq!(Coord::new(0, 0).linf_dist(Coord::new(3, -2)), 3);
    /// ```
    #[must_use]
    pub fn linf_dist(self, other: Coord) -> u64 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx.max(dy)
    }

    /// Squared Euclidean (L2) distance to `other`.
    ///
    /// Working with the square avoids floating point entirely; the radius
    /// comparison `dist ≤ r` becomes `dist² ≤ r²`.
    ///
    /// ```
    /// use rbcast_grid::Coord;
    /// assert_eq!(Coord::new(0, 0).l2_dist_sq(Coord::new(3, 4)), 25);
    /// ```
    #[must_use]
    pub fn l2_dist_sq(self, other: Coord) -> u64 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance, used by a few auxiliary bounds.
    #[must_use]
    pub fn l1_dist(self, other: Coord) -> u64 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four axis-aligned unit displacements (right, left, up, down).
    ///
    /// These are the perturbations that define the paper's `pnbd` (§IV).
    pub const UNIT_STEPS: [Coord; 4] = [
        Coord { x: 1, y: 0 },
        Coord { x: -1, y: 0 },
        Coord { x: 0, y: 1 },
        Coord { x: 0, y: -1 },
    ];
}

impl Add for Coord {
    type Output = Coord;

    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Coord {
    type Output = Coord;

    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Coord {
    type Output = Coord;

    fn neg(self) -> Coord {
        Coord::new(-self.x, -self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Coord {
    fn from((x, y): (i64, i64)) -> Self {
        Coord::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn origin_is_zero() {
        assert_eq!(Coord::ORIGIN, Coord::new(0, 0));
        assert_eq!(Coord::default(), Coord::ORIGIN);
    }

    #[test]
    fn linf_dist_examples() {
        assert_eq!(Coord::new(0, 0).linf_dist(Coord::new(0, 0)), 0);
        assert_eq!(Coord::new(1, 1).linf_dist(Coord::new(4, 2)), 3);
        assert_eq!(Coord::new(-5, 0).linf_dist(Coord::new(5, 0)), 10);
        assert_eq!(Coord::new(0, -7).linf_dist(Coord::new(0, 7)), 14);
    }

    #[test]
    fn l2_dist_sq_examples() {
        assert_eq!(Coord::new(0, 0).l2_dist_sq(Coord::new(1, 1)), 2);
        assert_eq!(Coord::new(-3, 0).l2_dist_sq(Coord::new(0, 4)), 25);
    }

    #[test]
    fn l1_dist_examples() {
        assert_eq!(Coord::new(0, 0).l1_dist(Coord::new(3, -2)), 5);
    }

    #[test]
    fn arithmetic_round_trip() {
        let a = Coord::new(7, -3);
        let b = Coord::new(-2, 9);
        assert_eq!(a + b - b, a);
        assert_eq!(a + (-a), Coord::ORIGIN);
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(Coord::new(-1, 2).to_string(), "(-1, 2)");
    }

    #[test]
    fn from_tuple() {
        let c: Coord = (4, 5).into();
        assert_eq!(c, Coord::new(4, 5));
    }

    #[test]
    fn unit_steps_are_the_four_axis_neighbors() {
        let set: std::collections::HashSet<_> = Coord::UNIT_STEPS.into_iter().collect();
        assert_eq!(set.len(), 4);
        for s in Coord::UNIT_STEPS {
            assert_eq!(Coord::ORIGIN.linf_dist(s), 1);
            assert_eq!(Coord::ORIGIN.l1_dist(s), 1);
        }
    }

    fn arb_coord() -> impl Strategy<Value = Coord> {
        (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Coord::new(x, y))
    }

    proptest! {
        #[test]
        fn linf_is_a_metric(a in arb_coord(), b in arb_coord(), c in arb_coord()) {
            // identity
            prop_assert_eq!(a.linf_dist(a), 0);
            // symmetry
            prop_assert_eq!(a.linf_dist(b), b.linf_dist(a));
            // triangle inequality
            prop_assert!(a.linf_dist(c) <= a.linf_dist(b) + b.linf_dist(c));
        }

        #[test]
        fn l2_sq_symmetry_and_identity(a in arb_coord(), b in arb_coord()) {
            prop_assert_eq!(a.l2_dist_sq(a), 0);
            prop_assert_eq!(a.l2_dist_sq(b), b.l2_dist_sq(a));
        }

        #[test]
        fn metric_sandwich(a in arb_coord(), b in arb_coord()) {
            // L∞ ≤ L2 ≤ L1, expressed without floats:
            let linf = a.linf_dist(b);
            let l1 = a.l1_dist(b);
            let l2sq = a.l2_dist_sq(b);
            prop_assert!(linf * linf <= l2sq);
            prop_assert!(l2sq <= l1 * l1);
        }

        #[test]
        fn translation_invariance(a in arb_coord(), b in arb_coord(), t in arb_coord()) {
            prop_assert_eq!((a + t).linf_dist(b + t), a.linf_dist(b));
            prop_assert_eq!((a + t).l2_dist_sq(b + t), a.l2_dist_sq(b));
        }
    }
}
