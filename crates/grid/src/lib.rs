//! Grid geometry substrate for reliable broadcast in a radio network.
//!
//! This crate models the network geometry of Bhandari & Vaidya,
//! *On Reliable Broadcast in a Radio Network* (PODC 2005): nodes sit on a
//! unit square grid (an infinite grid in the paper's analysis, a finite
//! torus in any executable experiment — the paper notes the results carry
//! over verbatim because a torus has no boundary anomalies).
//!
//! Provided here:
//!
//! * [`Coord`] — signed grid coordinates for infinite-grid geometry.
//! * [`Metric`] — the two distance metrics the paper analyses,
//!   [`Metric::Linf`] and [`Metric::L2`].
//! * [`Torus`] — a finite `width × height` toroidal node arena mapping
//!   coordinates to dense [`NodeId`]s.
//! * [`NeighborTable`] — the shared, immutable CSR topology arena: flat
//!   neighbor lists plus closed-ball center stencils, built once per
//!   `(torus, r, metric)` and shared across runs and worker threads.
//! * [`Neighborhood`] helpers — `nbd(c)` and the paper's perturbed
//!   neighborhood `pnbd(c)` (§IV).
//! * [`Rect`] — inclusive rectangular lattice regions (used heavily by the
//!   constructive proofs: regions A, B1/B2, C1/C2, D1/D2/D3, J, K1/K2, …).
//! * [`TdmaSchedule`] — the pre-determined collision-free transmission
//!   schedule the model assumes (§II).
//! * [`BitSet`] — bit-packed node sets backing the simulator's sparse
//!   wavefront engine (delivered/wake/decided sets, completion masks).
//!
//! # Example
//!
//! ```
//! use rbcast_grid::{Coord, Metric, Torus};
//!
//! let torus = Torus::new(20, 20);
//! let origin = torus.id(Coord::new(0, 0));
//! // In the L-infinity metric a radius-2 neighborhood is a 5x5 square:
//! let nbd: Vec<_> = torus.neighborhood(origin, 2, Metric::Linf).collect();
//! assert_eq!(nbd.len(), 24); // excludes the center itself
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bitset;
mod coord;
mod metric;
mod nbd;
mod region;
mod tdma;
mod torus;

pub use arena::{LocalFrame, NeighborTable};
pub use bitset::BitSet;
pub use coord::Coord;
pub use metric::Metric;
pub use nbd::{linf_offsets, metric_offsets, pnbd_centers, Neighborhood};
pub use region::Rect;
pub use tdma::{ScheduleError, TdmaSchedule};
pub use torus::{NodeId, Torus};
