//! The two distance metrics analysed by the paper.

use crate::Coord;
use std::fmt;

/// Distance metric on the grid (§II of the paper).
///
/// * [`Metric::Linf`] — Chebyshev distance; a radius-`r` neighborhood is a
///   `(2r+1) × (2r+1)` square minus its center, i.e. `(2r+1)² − 1` nodes.
///   This metric admits exact fault-tolerance thresholds.
/// * [`Metric::L2`] — Euclidean distance; a radius-`r` neighborhood is the
///   set of lattice points inside a circle of radius `r`, approximately
///   `πr²` of them. This is the practically relevant metric, for which the
///   paper gives approximate thresholds.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric};
///
/// let a = Coord::new(0, 0);
/// let b = Coord::new(3, 3);
/// assert!(Metric::Linf.within(a, b, 3));   // max(3,3) = 3 ≤ 3
/// assert!(!Metric::L2.within(a, b, 3));    // √18 ≈ 4.24 > 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// The L∞ (Chebyshev) metric: `max(|Δx|, |Δy|)`.
    #[default]
    Linf,
    /// The L2 (Euclidean) metric: `√(Δx² + Δy²)`.
    L2,
}

impl Metric {
    /// Returns `true` when `a` and `b` are within distance `r` of each
    /// other, i.e. when a transmission by one is heard by the other.
    ///
    /// The comparison is exact (integer) in both metrics.
    #[must_use]
    pub fn within(self, a: Coord, b: Coord, r: u32) -> bool {
        match self {
            Metric::Linf => a.linf_dist(b) <= u64::from(r),
            Metric::L2 => a.l2_dist_sq(b) <= u64::from(r) * u64::from(r),
        }
    }

    /// Number of nodes in a radius-`r` neighborhood, *excluding* the
    /// center node itself.
    ///
    /// For L∞ this is exactly `(2r+1)² − 1`; for L2 it is the Gauss circle
    /// lattice count minus one.
    ///
    /// ```
    /// use rbcast_grid::Metric;
    /// assert_eq!(Metric::Linf.neighborhood_size(2), 24);
    /// assert_eq!(Metric::L2.neighborhood_size(2), 12);
    /// ```
    #[must_use]
    pub fn neighborhood_size(self, r: u32) -> usize {
        crate::metric_offsets(r, self).len()
    }

    /// The paper's Byzantine achievability threshold for this metric:
    /// reliable broadcast is possible whenever `t < threshold`.
    ///
    /// * L∞ (Theorem 1): `½·r(2r+1)` — exact (matches Koo's impossibility).
    /// * L2 (§VIII): `0.23·πr²` — approximate, valid for large `r`.
    #[must_use]
    pub fn byzantine_threshold(self, r: u32) -> f64 {
        let r = f64::from(r);
        match self {
            Metric::Linf => 0.5 * r * (2.0 * r + 1.0),
            Metric::L2 => 0.23 * std::f64::consts::PI * r * r,
        }
    }

    /// The paper's crash-stop achievability threshold for this metric:
    /// reliable broadcast is possible whenever `t < threshold`.
    ///
    /// * L∞ (Theorems 4–5): `r(2r+1)` — exact.
    /// * L2 (§VIII): `0.46·πr²` — approximate.
    #[must_use]
    pub fn crash_threshold(self, r: u32) -> f64 {
        let r = f64::from(r);
        match self {
            Metric::Linf => r * (2.0 * r + 1.0),
            Metric::L2 => 0.46 * std::f64::consts::PI * r * r,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Linf => f.write_str("L-infinity"),
            Metric::L2 => f.write_str("L2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn within_linf_boundary() {
        let o = Coord::ORIGIN;
        assert!(Metric::Linf.within(o, Coord::new(2, 2), 2));
        assert!(!Metric::Linf.within(o, Coord::new(3, 0), 2));
        assert!(Metric::Linf.within(o, o, 0));
    }

    #[test]
    fn within_l2_boundary() {
        let o = Coord::ORIGIN;
        // (3,4) is at exactly distance 5
        assert!(Metric::L2.within(o, Coord::new(3, 4), 5));
        assert!(!Metric::L2.within(o, Coord::new(3, 4), 4));
        // corner of the square is NOT inside the L2 ball of the same radius
        assert!(!Metric::L2.within(o, Coord::new(2, 2), 2));
    }

    #[test]
    fn neighborhood_sizes_linf_formula() {
        for r in 1..10u32 {
            let expected = ((2 * r as usize + 1).pow(2)) - 1;
            assert_eq!(Metric::Linf.neighborhood_size(r), expected, "r={r}");
        }
    }

    #[test]
    fn neighborhood_sizes_l2_small_radii() {
        // Gauss circle problem values N(r) (lattice points with x²+y² ≤ r²),
        // minus 1 for the center: r=1 → 4, r=2 → 12, r=3 → 28, r=4 → 48, r=5 → 80.
        let expected = [(1u32, 4usize), (2, 12), (3, 28), (4, 48), (5, 80)];
        for (r, n) in expected {
            assert_eq!(Metric::L2.neighborhood_size(r), n, "r={r}");
        }
    }

    #[test]
    fn l2_ball_is_subset_of_linf_ball() {
        for r in 1..8u32 {
            assert!(Metric::L2.neighborhood_size(r) <= Metric::Linf.neighborhood_size(r));
        }
    }

    #[test]
    #[allow(clippy::float_cmp)] // thresholds are exact halves of integers
    fn byzantine_threshold_linf_values() {
        // ½ r(2r+1): r=2 → 5, r=3 → 10.5, r=4 → 18
        assert_eq!(Metric::Linf.byzantine_threshold(2), 5.0);
        assert_eq!(Metric::Linf.byzantine_threshold(3), 10.5);
        assert_eq!(Metric::Linf.byzantine_threshold(4), 18.0);
    }

    #[test]
    fn crash_threshold_is_twice_byzantine_in_linf() {
        for r in 1..12u32 {
            let byz = Metric::Linf.byzantine_threshold(r);
            let crash = Metric::Linf.crash_threshold(r);
            assert!((crash - 2.0 * byz).abs() < 1e-9);
        }
    }

    #[test]
    fn byzantine_fraction_of_neighborhood_approaches_one_fourth_linf() {
        // The paper: "slightly less than one-fourth fraction of nodes in
        // any neighborhood". t/|nbd| = ½r(2r+1) / ((2r+1)²−1) → ¼.
        let r = 200u32;
        let frac = Metric::Linf.byzantine_threshold(r) / Metric::Linf.neighborhood_size(r) as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Linf.to_string(), "L-infinity");
        assert_eq!(Metric::L2.to_string(), "L2");
    }

    proptest! {
        #[test]
        fn within_is_symmetric(
            x1 in -100i64..100, y1 in -100i64..100,
            x2 in -100i64..100, y2 in -100i64..100,
            r in 0u32..50,
        ) {
            let a = Coord::new(x1, y1);
            let b = Coord::new(x2, y2);
            for m in [Metric::Linf, Metric::L2] {
                prop_assert_eq!(m.within(a, b, r), m.within(b, a, r));
            }
        }

        #[test]
        fn within_monotone_in_radius(
            x in -100i64..100, y in -100i64..100, r in 0u32..50,
        ) {
            let a = Coord::ORIGIN;
            let b = Coord::new(x, y);
            for m in [Metric::Linf, Metric::L2] {
                if m.within(a, b, r) {
                    prop_assert!(m.within(a, b, r + 1));
                }
            }
        }

        #[test]
        fn l2_within_implies_linf_within(
            x in -100i64..100, y in -100i64..100, r in 0u32..50,
        ) {
            let a = Coord::ORIGIN;
            let b = Coord::new(x, y);
            if Metric::L2.within(a, b, r) {
                prop_assert!(Metric::Linf.within(a, b, r));
            }
        }
    }
}
