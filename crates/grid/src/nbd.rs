//! Neighborhood and perturbed-neighborhood helpers (§IV of the paper).

use crate::{Coord, Metric};

/// All non-zero offsets within L∞ distance `r` of the origin — i.e. the
/// relative positions of the `(2r+1)² − 1` nodes of an L∞ neighborhood.
///
/// ```
/// use rbcast_grid::linf_offsets;
/// assert_eq!(linf_offsets(1).len(), 8);
/// ```
#[must_use]
pub fn linf_offsets(r: u32) -> Vec<Coord> {
    let r = i64::from(r);
    let mut v = Vec::with_capacity(((2 * r as usize + 1).pow(2)) - 1);
    for dy in -r..=r {
        for dx in -r..=r {
            if dx != 0 || dy != 0 {
                v.push(Coord::new(dx, dy));
            }
        }
    }
    v
}

/// All non-zero offsets within distance `r` of the origin under `metric`.
///
/// For [`Metric::Linf`] this is [`linf_offsets`]; for [`Metric::L2`] it is
/// the lattice points of the punctured disk of radius `r`.
#[must_use]
pub fn metric_offsets(r: u32, metric: Metric) -> Vec<Coord> {
    match metric {
        Metric::Linf => linf_offsets(r),
        Metric::L2 => {
            let ri = i64::from(r);
            let r_sq = u64::from(r) * u64::from(r);
            let mut v = Vec::new();
            for dy in -ri..=ri {
                for dx in -ri..=ri {
                    if (dx != 0 || dy != 0)
                        && (dx.unsigned_abs() * dx.unsigned_abs()
                            + dy.unsigned_abs() * dy.unsigned_abs())
                            <= r_sq
                    {
                        v.push(Coord::new(dx, dy));
                    }
                }
            }
            v
        }
    }
}

/// The centers whose neighborhoods make up `pnbd(c)` (§IV): the four
/// axis-adjacent grid points of `c`.
///
/// `pnbd(x,y) = nbd(x−1,y) ∪ nbd(x+1,y) ∪ nbd(x,y−1) ∪ nbd(x,y+1)` — the
/// "perturbed neighborhood" obtained by nudging the center one step.
#[must_use]
pub fn pnbd_centers(c: Coord) -> [Coord; 4] {
    [
        c + Coord::new(1, 0),
        c + Coord::new(-1, 0),
        c + Coord::new(0, 1),
        c + Coord::new(0, -1),
    ]
}

/// Infinite-grid neighborhood queries around a center, under a metric.
///
/// This is the geometry the constructive proofs operate on (no torus
/// wrap-around). For simulation-side queries on finite networks use
/// [`crate::Torus::neighborhood`].
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, Neighborhood};
///
/// let nbd = Neighborhood::new(Coord::new(5, 5), 2, Metric::Linf);
/// assert_eq!(nbd.members().count(), 24);
/// assert!(nbd.contains(Coord::new(7, 7)));
/// assert!(!nbd.contains(Coord::new(8, 5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighborhood {
    center: Coord,
    radius: u32,
    metric: Metric,
}

impl Neighborhood {
    /// Neighborhood of `center` with transmission radius `radius` under
    /// `metric`.
    #[must_use]
    pub fn new(center: Coord, radius: u32, metric: Metric) -> Self {
        Neighborhood {
            center,
            radius,
            metric,
        }
    }

    /// The center node (not itself a member).
    #[must_use]
    pub fn center(&self) -> Coord {
        self.center
    }

    /// The transmission radius.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The metric.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Whether `p` belongs to the neighborhood (center excluded).
    #[must_use]
    pub fn contains(&self, p: Coord) -> bool {
        p != self.center && self.metric.within(self.center, p, self.radius)
    }

    /// Whether `p` is the center or a member — the paper's "nbd(c) ∪ {c}",
    /// useful when a region constraint says paths "lie within" a
    /// neighborhood (the center itself is allowed on such paths).
    #[must_use]
    pub fn covers(&self, p: Coord) -> bool {
        self.metric.within(self.center, p, self.radius)
    }

    /// Iterates over the members (center excluded).
    pub fn members(&self) -> impl Iterator<Item = Coord> + '_ {
        metric_offsets(self.radius, self.metric)
            .into_iter()
            .map(move |off| self.center + off)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metric.neighborhood_size(self.radius)
    }

    /// True iff the neighborhood has no members (only at radius 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the perturbed neighborhood `pnbd(center)` — the union
    /// of the four perturbed neighborhoods, *without* duplicates.
    pub fn perturbed_members(&self) -> Vec<Coord> {
        let mut set = std::collections::BTreeSet::new();
        for pc in pnbd_centers(self.center) {
            for m in Neighborhood::new(pc, self.radius, self.metric).members() {
                set.insert(m);
            }
        }
        set.into_iter().collect()
    }

    /// The frontier `pnbd(center) − nbd(center) − {center}`: the nodes the
    /// inductive step must newly reach.
    pub fn frontier(&self) -> Vec<Coord> {
        self.perturbed_members()
            .into_iter()
            .filter(|&p| p != self.center && !self.contains(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linf_offsets_count_and_uniqueness() {
        for r in 0..8u32 {
            let offs = linf_offsets(r);
            assert_eq!(offs.len(), (2 * r as usize + 1).pow(2) - 1);
            let set: std::collections::HashSet<_> = offs.iter().collect();
            assert_eq!(set.len(), offs.len());
            assert!(!offs.contains(&Coord::ORIGIN));
        }
    }

    #[test]
    fn l2_offsets_all_within_radius() {
        for r in 1..8u32 {
            for off in metric_offsets(r, Metric::L2) {
                assert!(Metric::L2.within(Coord::ORIGIN, off, r));
            }
        }
    }

    #[test]
    fn offsets_symmetric_under_negation() {
        for metric in [Metric::Linf, Metric::L2] {
            let offs: std::collections::HashSet<_> =
                metric_offsets(4, metric).into_iter().collect();
            for &o in &offs {
                assert!(offs.contains(&-o), "missing -{o}");
            }
        }
    }

    #[test]
    fn pnbd_centers_are_the_four_steps() {
        let cs = pnbd_centers(Coord::new(2, 3));
        assert!(cs.contains(&Coord::new(3, 3)));
        assert!(cs.contains(&Coord::new(1, 3)));
        assert!(cs.contains(&Coord::new(2, 4)));
        assert!(cs.contains(&Coord::new(2, 2)));
    }

    #[test]
    fn neighborhood_contains_vs_covers() {
        let n = Neighborhood::new(Coord::ORIGIN, 2, Metric::Linf);
        assert!(!n.contains(Coord::ORIGIN));
        assert!(n.covers(Coord::ORIGIN));
        assert!(n.contains(Coord::new(2, -2)));
        assert!(!n.contains(Coord::new(3, 0)));
    }

    #[test]
    fn pnbd_size_linf() {
        // pnbd is the (2r+1) square extended by 1 in each axis direction
        // (a plus-shaped union). |pnbd| = (2r+1)² + 4(2r+1) − 1... compute
        // directly and compare with a brute force union.
        for r in 1..5u32 {
            let n = Neighborhood::new(Coord::ORIGIN, r, Metric::Linf);
            let members = n.perturbed_members();
            let brute: std::collections::BTreeSet<_> = pnbd_centers(Coord::ORIGIN)
                .into_iter()
                .flat_map(|c| {
                    linf_offsets(r)
                        .into_iter()
                        .map(move |o| c + o)
                        .collect::<Vec<_>>()
                })
                .collect();
            assert_eq!(members, brute.into_iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn frontier_is_outside_nbd() {
        for metric in [Metric::Linf, Metric::L2] {
            let n = Neighborhood::new(Coord::new(4, -2), 3, metric);
            let frontier = n.frontier();
            assert!(!frontier.is_empty());
            for f in &frontier {
                assert!(!n.contains(*f), "{f} should be outside nbd");
                assert!(
                    pnbd_centers(Coord::new(4, -2))
                        .iter()
                        .any(|&c| Neighborhood::new(c, 3, metric).contains(*f)),
                    "{f} should be inside pnbd"
                );
            }
        }
    }

    #[test]
    fn frontier_linf_is_the_ring_cross() {
        // For L∞, pnbd − nbd is exactly the four length-(2r+1) segments
        // hugging the square's sides: 4(2r+1) nodes... minus corners which
        // are NOT included (corner (r+1, r+1) is not within r of any
        // perturbed center). Check count = 4(2r+1).
        for r in 1..6u32 {
            let n = Neighborhood::new(Coord::ORIGIN, r, Metric::Linf);
            assert_eq!(n.frontier().len(), 4 * (2 * r as usize + 1));
        }
    }

    #[test]
    fn worst_case_corner_is_in_frontier() {
        // The paper's worst-case node P = (a−r, b+r+1) must be part of the
        // frontier of nbd(a,b).
        let (a, b, r) = (0, 0, 3i64);
        let n = Neighborhood::new(Coord::new(a, b), r as u32, Metric::Linf);
        assert!(n.frontier().contains(&Coord::new(a - r, b + r + 1)));
    }

    proptest! {
        #[test]
        fn members_match_contains(
            cx in -20i64..20, cy in -20i64..20, r in 1u32..5,
        ) {
            for metric in [Metric::Linf, Metric::L2] {
                let n = Neighborhood::new(Coord::new(cx, cy), r, metric);
                for m in n.members() {
                    prop_assert!(n.contains(m));
                }
                prop_assert_eq!(n.members().count(), n.len());
            }
        }
    }
}
