//! Inclusive rectangular lattice regions.
//!
//! The paper's constructive proofs (Table I and Figs. 1–7) are phrased in
//! terms of axis-aligned rectangles of lattice points such as
//! `A = {(x,y) | a+p−r ≤ x ≤ a, b+1 ≤ y ≤ b+q+r}`. [`Rect`] represents
//! exactly that shape.

use crate::Coord;
use std::fmt;

/// An inclusive axis-aligned rectangle of lattice points
/// `{(x, y) | x0 ≤ x ≤ x1, y0 ≤ y ≤ y1}`.
///
/// An *empty* rectangle (where `x0 > x1` or `y0 > y1`) is allowed and
/// contains no points — several Table I regions degenerate to empty for
/// boundary values of `(p, q)`.
///
/// # Example
///
/// ```
/// use rbcast_grid::Rect;
///
/// let r = Rect::new(0, 2, 0, 1);
/// assert_eq!(r.len(), 6);
/// assert!(r.contains((1, 1).into()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    x0: i64,
    x1: i64,
    y0: i64,
    y1: i64,
}

impl Rect {
    /// Creates the rectangle `{x0 ≤ x ≤ x1, y0 ≤ y ≤ y1}`.
    ///
    /// Inverted bounds produce a valid empty rectangle.
    #[must_use]
    pub const fn new(x0: i64, x1: i64, y0: i64, y1: i64) -> Self {
        Rect { x0, x1, y0, y1 }
    }

    /// The canonical empty rectangle.
    #[must_use]
    pub const fn empty() -> Self {
        Rect::new(1, 0, 1, 0)
    }

    /// Inclusive x-extent `(x0, x1)`.
    #[must_use]
    pub fn x_extent(&self) -> (i64, i64) {
        (self.x0, self.x1)
    }

    /// Inclusive y-extent `(y0, y1)`.
    #[must_use]
    pub fn y_extent(&self) -> (i64, i64) {
        (self.y0, self.y1)
    }

    /// Number of lattice points contained.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.x0 > self.x1 || self.y0 > self.y1 {
            0
        } else {
            ((self.x1 - self.x0 + 1) as usize) * ((self.y1 - self.y0 + 1) as usize)
        }
    }

    /// True iff the rectangle contains no lattice points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, p: Coord) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Translates the rectangle by `d`.
    #[must_use]
    pub fn translate(&self, d: Coord) -> Rect {
        Rect::new(self.x0 + d.x, self.x1 + d.x, self.y0 + d.y, self.y1 + d.y)
    }

    /// Intersection of two rectangles (possibly empty).
    #[must_use]
    pub fn intersect(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x0.max(other.x0),
            self.x1.min(other.x1),
            self.y0.max(other.y0),
            self.y1.min(other.y1),
        )
    }

    /// Whether two rectangles share at least one lattice point.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Iterates over the contained lattice points in row-major order.
    pub fn points(&self) -> impl Iterator<Item = Coord> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord::new(x, y)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("[empty rect]")
        } else {
            write!(
                f,
                "[{}..={}] x [{}..={}]",
                self.x0, self.x1, self.y0, self.y1
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn len_and_points_agree() {
        let r = Rect::new(-2, 3, 1, 2);
        assert_eq!(r.len(), 12);
        assert_eq!(r.points().count(), 12);
    }

    #[test]
    fn empty_rects() {
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::new(5, 2, 0, 0).len(), 0);
        assert_eq!(Rect::new(5, 2, 0, 0).points().count(), 0);
        assert_eq!(Rect::empty().to_string(), "[empty rect]");
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::new(0, 4, 0, 4);
        assert!(r.contains(Coord::new(0, 0)));
        assert!(r.contains(Coord::new(4, 4)));
        assert!(!r.contains(Coord::new(5, 4)));
        assert!(!r.contains(Coord::new(-1, 0)));
    }

    #[test]
    fn translate_moves_every_point() {
        let r = Rect::new(0, 2, 0, 2);
        let t = r.translate(Coord::new(10, -5));
        assert_eq!(t.x_extent(), (10, 12));
        assert_eq!(t.y_extent(), (-5, -3));
        assert_eq!(t.len(), r.len());
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 5, 0, 5);
        let b = Rect::new(3, 8, 3, 8);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(3, 5, 3, 5));
        assert!(a.overlaps(&b));

        let c = Rect::new(6, 9, 0, 5);
        assert!(!a.overlaps(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn single_point_rect() {
        let r = Rect::new(3, 3, -1, -1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.points().next(), Some(Coord::new(3, -1)));
    }

    #[test]
    fn display_format() {
        assert_eq!(Rect::new(0, 1, 2, 3).to_string(), "[0..=1] x [2..=3]");
    }

    proptest! {
        #[test]
        fn points_match_contains(
            x0 in -10i64..10, dx in 0i64..6, y0 in -10i64..10, dy in 0i64..6,
        ) {
            let r = Rect::new(x0, x0 + dx, y0, y0 + dy);
            let pts: Vec<_> = r.points().collect();
            prop_assert_eq!(pts.len(), r.len());
            for p in &pts {
                prop_assert!(r.contains(*p));
            }
            // a point just outside is not contained
            prop_assert!(!r.contains(Coord::new(x0 - 1, y0)));
            prop_assert!(!r.contains(Coord::new(x0, y0 + dy + 1)));
        }

        #[test]
        fn intersect_is_commutative_and_contained(
            ax0 in -10i64..10, adx in 0i64..8, ay0 in -10i64..10, ady in 0i64..8,
            bx0 in -10i64..10, bdx in 0i64..8, by0 in -10i64..10, bdy in 0i64..8,
        ) {
            let a = Rect::new(ax0, ax0 + adx, ay0, ay0 + ady);
            let b = Rect::new(bx0, bx0 + bdx, by0, by0 + bdy);
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
            for p in a.intersect(&b).points() {
                prop_assert!(a.contains(p) && b.contains(p));
            }
        }
    }
}
