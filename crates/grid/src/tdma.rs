//! Collision-free TDMA transmission schedules (§II of the paper).
//!
//! The model assumes "a pre-determined TDMA schedule that all nodes
//! follow", ruling out collisions. Two simultaneous transmitters collide
//! at a receiver only if both are within transmission radius `r` of it,
//! which requires the transmitters to be within distance `2r` of each
//! other. A grid coloring with period `k = 2r + 1` in both axes therefore
//! yields a valid schedule: same-slot nodes are at L∞ distance ≥ `2r + 1`.

use crate::{Coord, Metric, Torus};

/// A periodic TDMA slot assignment for a toroidal grid network.
///
/// Slot of node `(x, y)` is `(x mod k) + k·(y mod k)` with `k = 2r + 1`,
/// giving `k²` slots per frame. On a torus the assignment is conflict-free
/// whenever both torus dimensions are divisible by `k` (otherwise the
/// wrap-around seam could place two same-slot nodes closer than `2r + 1`);
/// [`TdmaSchedule::new`] enforces this.
///
/// # Example
///
/// ```
/// use rbcast_grid::{TdmaSchedule, Torus};
///
/// let torus = Torus::new(20, 20); // 20 divisible by k = 5 for r = 2
/// let tdma = TdmaSchedule::new(&torus, 2).expect("r=2 divides the torus side");
/// assert_eq!(tdma.slots_per_frame(), 25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmaSchedule {
    period: u32,
    radius: u32,
}

/// Error returned when a torus cannot host a periodic schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    period: u32,
    width: u32,
    height: u32,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torus {}x{} is not divisible by the TDMA period {}",
            self.width, self.height, self.period
        )
    }
}

impl std::error::Error for ScheduleError {}

impl TdmaSchedule {
    /// Builds the periodic schedule for transmission radius `r` on
    /// `torus`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if either torus dimension is not a
    /// multiple of the period `2r + 1`.
    pub fn new(torus: &Torus, r: u32) -> Result<Self, ScheduleError> {
        let period = 2 * r + 1;
        if !torus.width().is_multiple_of(period) || !torus.height().is_multiple_of(period) {
            return Err(ScheduleError {
                period,
                width: torus.width(),
                height: torus.height(),
            });
        }
        Ok(TdmaSchedule { period, radius: r })
    }

    /// The schedule period `k = 2r + 1`.
    #[must_use]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of slots in one TDMA frame (`k²`).
    #[must_use]
    pub fn slots_per_frame(&self) -> u32 {
        self.period * self.period
    }

    /// The slot (in `0..slots_per_frame()`) in which the node at `c`
    /// transmits.
    #[must_use]
    pub fn slot_of(&self, c: Coord) -> u32 {
        let k = i64::from(self.period);
        let sx = c.x.rem_euclid(k) as u32;
        let sy = c.y.rem_euclid(k) as u32;
        sy * self.period + sx
    }

    /// Verifies the schedule's defining invariant on `torus`: no two
    /// distinct nodes sharing a slot are within distance `2r` of each
    /// other (under either metric — L∞ dominates L2), so no receiver can
    /// ever hear two same-slot transmitters.
    ///
    /// Exposed (rather than just tested) so experiments can assert model
    /// fidelity on their actual arena.
    #[must_use]
    pub fn verify_conflict_free(&self, torus: &Torus) -> bool {
        let coords: Vec<Coord> = torus.coords().collect();
        for (i, &a) in coords.iter().enumerate() {
            for &b in &coords[i + 1..] {
                if self.slot_of(a) == self.slot_of(b)
                    && torus.within(a, b, 2 * self.radius, Metric::Linf)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_indivisible_torus() {
        let torus = Torus::new(21, 20);
        let err = TdmaSchedule::new(&torus, 2).unwrap_err();
        assert!(err.to_string().contains("not divisible"));
    }

    #[test]
    fn accepts_divisible_torus() {
        let torus = Torus::new(15, 30);
        let tdma = TdmaSchedule::new(&torus, 2).unwrap();
        assert_eq!(tdma.period(), 5);
        assert_eq!(tdma.slots_per_frame(), 25);
    }

    #[test]
    fn for_radius_torus_always_schedulable() {
        for r in 1..8 {
            let torus = Torus::for_radius(r);
            assert!(TdmaSchedule::new(&torus, r).is_ok(), "r={r}");
        }
    }

    #[test]
    fn slots_cover_full_range() {
        let torus = Torus::new(10, 10);
        let tdma = TdmaSchedule::new(&torus, 2).unwrap();
        let slots: std::collections::HashSet<u32> =
            torus.coords().map(|c| tdma.slot_of(c)).collect();
        assert_eq!(slots.len(), 25);
        assert!(slots.iter().all(|&s| s < 25));
    }

    #[test]
    fn conflict_free_on_valid_tori() {
        for r in 1..4u32 {
            let torus = Torus::for_radius(r);
            let tdma = TdmaSchedule::new(&torus, r).unwrap();
            assert!(tdma.verify_conflict_free(&torus), "r={r}");
        }
    }

    #[test]
    fn same_slot_nodes_are_far_apart() {
        let torus = Torus::new(30, 30);
        let tdma = TdmaSchedule::new(&torus, 2).unwrap();
        let a = Coord::new(0, 0);
        let b = Coord::new(5, 0); // one period to the right: same slot
        assert_eq!(tdma.slot_of(a), tdma.slot_of(b));
        assert!(torus.dist(a, b, Metric::Linf) > 4);
    }

    #[test]
    fn negative_coordinates_wrap_consistently() {
        let torus = Torus::new(25, 25);
        let tdma = TdmaSchedule::new(&torus, 2).unwrap();
        assert_eq!(
            tdma.slot_of(Coord::new(-1, -1)),
            tdma.slot_of(Coord::new(4, 4))
        );
    }
}
