//! Finite toroidal node arena.

use crate::{Coord, Metric};
use std::fmt;

/// Dense identifier of a node living on a [`Torus`].
///
/// Node ids index contiguous per-node state vectors in the simulator, so
/// they are a thin `u32` newtype rather than a coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A finite `width × height` toroidal grid of nodes.
///
/// The paper proves its results on the infinite grid and notes they hold
/// unchanged on a finite torus, which is what every executable experiment
/// here uses. Coordinates wrap: the canonical representative of `(x, y)`
/// is `(x mod width, y mod height)` with non-negative components.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Torus};
///
/// let t = Torus::new(10, 8);
/// assert_eq!(t.len(), 80);
/// // Wrap-around: (-1, -1) is the same node as (9, 7).
/// assert_eq!(t.id(Coord::new(-1, -1)), t.id(Coord::new(9, 7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Torus {
    width: u32,
    height: u32,
}

impl Torus {
    /// Creates a torus with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        Torus { width, height }
    }

    /// Creates the smallest torus that is safe for radius-`r` experiments:
    /// side `4(2r+1)`, which guarantees that distinct neighborhoods never
    /// self-overlap through the wrap-around and that the wavefront
    /// induction of the paper applies.
    #[must_use]
    pub fn for_radius(r: u32) -> Self {
        let side = 4 * (2 * r + 1);
        Torus::new(side, side)
    }

    /// Torus width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Torus height.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Returns `true` if the torus contains no nodes (never, by
    /// construction — kept for `len`/`is_empty` API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Canonical (wrapped) representative of `c`.
    #[must_use]
    pub fn canonical(&self, c: Coord) -> Coord {
        Coord::new(
            c.x.rem_euclid(i64::from(self.width)),
            c.y.rem_euclid(i64::from(self.height)),
        )
    }

    /// Dense id of the node at (the canonical representative of) `c`.
    #[must_use]
    pub fn id(&self, c: Coord) -> NodeId {
        let c = self.canonical(c);
        NodeId((c.y as u32) * self.width + (c.x as u32))
    }

    /// Coordinate of node `id` (canonical representative).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this torus.
    #[must_use]
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(
            id.index() < self.len(),
            "node id {id} out of range for {self}"
        );
        Coord::new(i64::from(id.0 % self.width), i64::from(id.0 / self.width))
    }

    /// Minimal toroidal displacement from `a` to `b`: each component is
    /// reduced to the range `(-dim/2, dim/2]`.
    #[must_use]
    pub fn displacement(&self, a: Coord, b: Coord) -> Coord {
        let wrap = |d: i64, dim: i64| -> i64 {
            let d = d.rem_euclid(dim);
            if d > dim / 2 {
                d - dim
            } else {
                d
            }
        };
        let d = self.canonical(b) - self.canonical(a);
        Coord::new(
            wrap(d.x, i64::from(self.width)),
            wrap(d.y, i64::from(self.height)),
        )
    }

    /// Toroidal distance between two nodes under `metric`.
    #[must_use]
    pub fn dist(&self, a: Coord, b: Coord, metric: Metric) -> u64 {
        let d = self.displacement(a, b);
        match metric {
            Metric::Linf => Coord::ORIGIN.linf_dist(d),
            Metric::L2 => {
                // return the floor of the true distance; callers that need
                // exact radius checks use `within`.
                (Coord::ORIGIN.l2_dist_sq(d) as f64).sqrt() as u64
            }
        }
    }

    /// Whether nodes at `a` and `b` are within transmission radius `r`
    /// under `metric`, accounting for wrap-around.
    #[must_use]
    pub fn within(&self, a: Coord, b: Coord, r: u32, metric: Metric) -> bool {
        let d = self.displacement(a, b);
        metric.within(Coord::ORIGIN, d, r)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// Iterates over all node coordinates (canonical representatives).
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.node_ids().map(move |id| self.coord(id))
    }

    /// Iterates over the ids of the radius-`r` neighborhood of `center`
    /// (excluding `center` itself) under `metric`.
    pub fn neighborhood(
        &self,
        center: NodeId,
        r: u32,
        metric: Metric,
    ) -> impl Iterator<Item = NodeId> + '_ {
        let c = self.coord(center);
        crate::metric_offsets(r, metric)
            .into_iter()
            .map(move |off| self.id(c + off))
    }

    /// Returns `true` when the torus is large enough that a radius-`r`
    /// neighborhood (L∞: a `(2r+1)`-square) cannot wrap onto itself —
    /// required for experiments to faithfully emulate the infinite grid.
    #[must_use]
    pub fn supports_radius(&self, r: u32) -> bool {
        self.width > 2 * (2 * r + 1) && self.height > 2 * (2 * r + 1)
    }
}

impl fmt::Display for Torus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "torus {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Torus::new(0, 5);
    }

    #[test]
    fn id_coord_round_trip() {
        let t = Torus::new(7, 5);
        for id in t.node_ids() {
            assert_eq!(t.id(t.coord(id)), id);
        }
    }

    #[test]
    fn canonicalization_wraps_negative() {
        let t = Torus::new(10, 10);
        assert_eq!(t.canonical(Coord::new(-3, 12)), Coord::new(7, 2));
        assert_eq!(t.canonical(Coord::new(10, -10)), Coord::ORIGIN);
    }

    #[test]
    fn displacement_prefers_short_way_around() {
        let t = Torus::new(10, 10);
        // from (0,0) to (9,0): going left 1 is shorter than right 9
        assert_eq!(
            t.displacement(Coord::ORIGIN, Coord::new(9, 0)),
            Coord::new(-1, 0)
        );
        assert_eq!(
            t.displacement(Coord::ORIGIN, Coord::new(5, 5)),
            Coord::new(5, 5)
        );
    }

    #[test]
    fn within_respects_wraparound() {
        let t = Torus::new(20, 20);
        assert!(t.within(Coord::new(0, 0), Coord::new(19, 19), 1, Metric::Linf));
        assert!(t.within(Coord::new(0, 0), Coord::new(18, 0), 2, Metric::L2));
        assert!(!t.within(Coord::new(0, 0), Coord::new(10, 10), 3, Metric::Linf));
    }

    #[test]
    fn neighborhood_counts_on_big_torus() {
        let t = Torus::new(30, 30);
        let c = t.id(Coord::new(15, 15));
        for r in 1..5u32 {
            let n: Vec<_> = t.neighborhood(c, r, Metric::Linf).collect();
            assert_eq!(n.len(), (2 * r as usize + 1).pow(2) - 1);
            // all distinct
            let set: std::collections::HashSet<_> = n.iter().collect();
            assert_eq!(set.len(), n.len());
        }
    }

    #[test]
    fn neighborhood_near_the_seam_wraps() {
        let t = Torus::new(30, 30);
        let corner = t.id(Coord::ORIGIN);
        let n: Vec<_> = t.neighborhood(corner, 2, Metric::Linf).collect();
        assert_eq!(n.len(), 24);
        assert!(n.contains(&t.id(Coord::new(28, 28))));
    }

    #[test]
    fn for_radius_supports_radius() {
        for r in 1..8 {
            let t = Torus::for_radius(r);
            assert!(t.supports_radius(r));
        }
    }

    #[test]
    fn neighborhood_membership_matches_within() {
        let t = Torus::new(25, 25);
        let center = Coord::new(3, 21); // near the seam on purpose
        let cid = t.id(center);
        for metric in [Metric::Linf, Metric::L2] {
            let nbd: std::collections::HashSet<_> = t.neighborhood(cid, 3, metric).collect();
            for other in t.coords() {
                let expect = other != center && t.within(center, other, 3, metric);
                assert_eq!(
                    nbd.contains(&t.id(other)),
                    expect,
                    "metric={metric} other={other}"
                );
            }
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Torus::new(4, 6).to_string(), "torus 4x6");
    }

    proptest! {
        #[test]
        fn toroidal_distance_is_symmetric(
            w in 2u32..40, h in 2u32..40,
            x1 in -50i64..50, y1 in -50i64..50,
            x2 in -50i64..50, y2 in -50i64..50,
        ) {
            let t = Torus::new(w, h);
            let a = Coord::new(x1, y1);
            let b = Coord::new(x2, y2);
            for m in [Metric::Linf, Metric::L2] {
                prop_assert_eq!(t.dist(a, b, m), t.dist(b, a, m));
            }
        }

        #[test]
        fn canonical_is_idempotent(
            w in 1u32..60, h in 1u32..60, x in -500i64..500, y in -500i64..500,
        ) {
            let t = Torus::new(w, h);
            let c = t.canonical(Coord::new(x, y));
            prop_assert_eq!(t.canonical(c), c);
            prop_assert!(c.x >= 0 && c.x < i64::from(w));
            prop_assert!(c.y >= 0 && c.y < i64::from(h));
        }

        #[test]
        fn displacement_lands_on_target(
            w in 1u32..60, h in 1u32..60,
            x1 in -50i64..50, y1 in -50i64..50,
            x2 in -50i64..50, y2 in -50i64..50,
        ) {
            let t = Torus::new(w, h);
            let a = Coord::new(x1, y1);
            let b = Coord::new(x2, y2);
            let d = t.displacement(a, b);
            prop_assert_eq!(t.canonical(t.canonical(a) + d), t.canonical(b));
        }
    }
}
