//! Deterministic chaos injection between the link layer and the wire.
//!
//! [`ChaosTransport`] wraps any [`Datagram`] transport and perturbs the
//! *outbound* path: seeded Gilbert–Elliott burst loss (the same
//! [`BurstLoss`] model the simulator's channel uses, so sim experiments
//! and cluster runs share one loss process), duplication, reordering
//! (as a one-tick hold-back), and fixed delay. Every decision derives
//! from `(seed, directed edge, per-edge send counter)` via splitmix
//! mixing — a chaotic run replays exactly given the same seed and send
//! schedule, which is what lets the chaos smoke test assert byte-level
//! parity against the reliable oracle.
//!
//! Process kill/stall chaos is *not* here: those are orchestrated at
//! the cluster layer (dropping or freezing a whole node), composing
//! with the journal-based recovery path.

use crate::transport::Datagram;
use rbcast_sim::{BurstChain, BurstLoss};
use std::collections::BTreeMap;

/// Per-node chaos parameters. Rates are parts-per-million of sends so
/// integer configs stay exact across serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for every stochastic decision in this shim.
    pub seed: u64,
    /// Gilbert–Elliott burst-loss model, if any.
    pub burst: Option<BurstLoss>,
    /// Probability (ppm) of duplicating a datagram.
    pub dup_ppm: u32,
    /// Probability (ppm) of holding a datagram back one tick, letting
    /// later sends overtake it (reordering).
    pub reorder_ppm: u32,
    /// Probability (ppm) of delaying a datagram by [`ChaosConfig::delay_ticks`].
    pub delay_ppm: u32,
    /// Delay length for delayed datagrams, in transport ticks.
    pub delay_ticks: u64,
}

impl ChaosConfig {
    /// No chaos at all: the shim becomes a transparent pass-through.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            burst: None,
            dup_ppm: 0,
            reorder_ppm: 0,
            delay_ppm: 0,
            delay_ticks: 0,
        }
    }

    /// The cluster smoke-test profile: bursty loss plus light
    /// duplication and reordering.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        ChaosConfig {
            seed,
            burst: Some(BurstLoss::new(0.05, 0.25, 0.01, 0.9)),
            dup_ppm: 20_000, // 2%
            reorder_ppm: 20_000,
            delay_ppm: 10_000, // 1%
            delay_ticks: 3,
        }
    }
}

// Distinct mixing streams so loss, duplication, reordering, and delay
// decisions are independent draws.
const STREAM_DROP: u64 = 0x9E6C_63D0_876A_3F6B;
const STREAM_DUP: u64 = 0xB8AC_F2C6_2F4E_6D57;
const STREAM_REORDER: u64 = 0xD6E8_FEB8_6659_FD93;
const STREAM_DELAY: u64 = 0x8F51_7312_86E6_D1C5;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1_000_000)` for stream/edge/counter.
fn draw_ppm(seed: u64, stream: u64, to: u32, counter: u64) -> u32 {
    let mixed = splitmix(
        seed ^ stream ^ (u64::from(to) << 32) ^ counter.wrapping_mul(0x2545_F491_4F6C_DD1D),
    );
    (mixed % 1_000_000) as u32
}

#[derive(Debug, Default)]
struct EdgeState {
    sends: u64,
    chain: BurstChain,
}

/// A [`Datagram`] wrapper injecting seeded faults on the send path.
pub struct ChaosTransport<T> {
    me: u32,
    inner: T,
    cfg: ChaosConfig,
    edges: BTreeMap<u32, EdgeState>,
    held: Vec<(u64, u32, Vec<u8>)>, // (release tick, to, bytes)
    now: u64,
    /// Fault counters, for reporting.
    pub stats: ChaosStats,
}

/// What the shim did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Datagrams dropped by burst loss.
    pub dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams held back for reordering or delay.
    pub delayed: u64,
}

impl<T: std::fmt::Debug> std::fmt::Debug for ChaosTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("me", &self.me)
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T: Datagram> ChaosTransport<T> {
    /// Wraps `inner` for node `me` under `cfg`.
    pub fn new(me: u32, inner: T, cfg: ChaosConfig) -> Self {
        ChaosTransport {
            me,
            inner,
            cfg,
            edges: BTreeMap::new(),
            held: Vec::new(),
            now: 0,
            stats: ChaosStats::default(),
        }
    }

    fn release_due(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= now {
                let (_, to, bytes) = self.held.swap_remove(i);
                self.inner.send(to, &bytes);
            } else {
                i += 1;
            }
        }
    }
}

impl<T: Datagram> Datagram for ChaosTransport<T> {
    fn send(&mut self, to: u32, bytes: &[u8]) {
        let edge = self.edges.entry(to).or_default();
        let counter = edge.sends;
        edge.sends += 1;
        // Gilbert–Elliott loss: the per-edge chain steps once per send,
        // so burst lengths are measured in transmissions (retransmits
        // advance the chain — a stuck-bad edge recovers as the link
        // retries, matching how the sim's redundancy primitive masks
        // bursts with repeated sends).
        if let Some(model) = self.cfg.burst {
            let bad = edge
                .chain
                .bad_at(&model, self.cfg.seed, (self.me, to), counter);
            let p = model.loss_prob(bad);
            if p > 0.0 {
                let roll = f64::from(draw_ppm(self.cfg.seed, STREAM_DROP, to, counter)) / 1.0e6;
                if roll < p {
                    self.stats.dropped += 1;
                    return;
                }
            }
        }
        if draw_ppm(self.cfg.seed, STREAM_DELAY, to, counter) < self.cfg.delay_ppm {
            self.stats.delayed += 1;
            self.held
                .push((self.now + self.cfg.delay_ticks, to, bytes.to_vec()));
            return;
        }
        if draw_ppm(self.cfg.seed, STREAM_REORDER, to, counter) < self.cfg.reorder_ppm {
            // Hold one tick: datagrams sent later this tick (and next)
            // overtake it.
            self.stats.delayed += 1;
            self.held.push((self.now + 1, to, bytes.to_vec()));
            return;
        }
        self.inner.send(to, bytes);
        if draw_ppm(self.cfg.seed, STREAM_DUP, to, counter) < self.cfg.dup_ppm {
            self.stats.duplicated += 1;
            self.inner.send(to, bytes);
        }
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        self.inner.poll()
    }

    fn tick(&mut self, now: u64) {
        self.now = now;
        self.release_due();
        self.inner.tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackHub;

    fn drain(port: &mut impl Datagram) -> Vec<Vec<u8>> {
        std::iter::from_fn(|| port.poll()).collect()
    }

    #[test]
    fn quiet_config_is_transparent() {
        let hub = LoopbackHub::new();
        let mut tx = ChaosTransport::new(0, hub.attach(0), ChaosConfig::quiet(7));
        let mut rx = hub.attach(1);
        for i in 0..100u8 {
            tx.send(1, &[i]);
        }
        let got = drain(&mut rx);
        assert_eq!(got.len(), 100);
        assert!(got.iter().enumerate().all(|(i, b)| b == &[i as u8]));
        assert_eq!(tx.stats, ChaosStats::default());
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let hub = LoopbackHub::new();
            let mut tx = ChaosTransport::new(0, hub.attach(0), ChaosConfig::smoke(seed));
            let mut rx = hub.attach(1);
            for tick in 0..50u64 {
                tx.tick(tick);
                for i in 0..4u8 {
                    tx.send(1, &[tick as u8, i]);
                }
            }
            tx.tick(100); // release all held datagrams
            (drain(&mut rx), tx.stats)
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds should perturb differently");
    }

    #[test]
    fn burst_loss_drops_and_recovers() {
        let hub = LoopbackHub::new();
        let cfg = ChaosConfig {
            seed: 1,
            burst: Some(BurstLoss::new(0.3, 0.3, 0.0, 1.0)),
            dup_ppm: 0,
            reorder_ppm: 0,
            delay_ppm: 0,
            delay_ticks: 0,
        };
        let mut tx = ChaosTransport::new(0, hub.attach(0), cfg);
        let mut rx = hub.attach(1);
        for i in 0..500u16 {
            tx.send(1, &i.to_le_bytes());
        }
        let got = drain(&mut rx);
        assert!(tx.stats.dropped > 0, "bad states must drop");
        assert!(!got.is_empty(), "chain must leave the bad state");
        assert_eq!(got.len() + tx.stats.dropped as usize, 500);
    }

    #[test]
    fn delay_holds_until_tick() {
        let hub = LoopbackHub::new();
        let cfg = ChaosConfig {
            delay_ppm: 1_000_000, // delay everything
            delay_ticks: 10,
            ..ChaosConfig::quiet(5)
        };
        let mut tx = ChaosTransport::new(0, hub.attach(0), cfg);
        let mut rx = hub.attach(1);
        tx.tick(0);
        tx.send(1, b"late");
        assert!(rx.poll().is_none());
        tx.tick(5);
        assert!(rx.poll().is_none(), "still held at tick 5");
        tx.tick(10);
        assert_eq!(rx.poll().as_deref(), Some(&b"late"[..]));
    }

    #[test]
    fn duplication_double_sends() {
        let hub = LoopbackHub::new();
        let cfg = ChaosConfig {
            dup_ppm: 1_000_000,
            ..ChaosConfig::quiet(9)
        };
        let mut tx = ChaosTransport::new(0, hub.attach(0), cfg);
        let mut rx = hub.attach(1);
        tx.send(1, b"x");
        assert_eq!(drain(&mut rx).len(), 2);
        assert_eq!(tx.stats.duplicated, 1);
    }
}
