//! Cluster orchestration: shared run configuration, the sim oracle,
//! and a single-threaded in-process loopback cluster.
//!
//! [`ClusterSpec`] is the *entire* static configuration of a run —
//! topology, protocol, instance set, round horizon — shared verbatim by
//! every node (loopback or UDP child process) and by the
//! [`ClusterSpec::sim_oracle`], which replays the identical run on the
//! verified simulator. Oracle digest equality is the golden parity
//! criterion: the networked runtime must be *byte-identical* in its
//! decisions to the engine the paper's theorems were checked against.
//!
//! [`LoopbackCluster`] pumps every node round-robin on one thread over
//! a [`LoopbackHub`] — no sockets, no scheduling nondeterminism — and
//! supports mid-run kill/stall plus journal-backed restart, which is
//! how the recovery tests exercise the crash path deterministically.

use crate::chaos::{ChaosConfig, ChaosTransport};
use crate::journal::{JournalError, SharedJournal};
use crate::runtime::{NodeReport, NodeRuntime, RuntimeConfig};
use crate::transport::{Datagram, LoopbackHub};
use rbcast_grid::{Metric, NeighborTable, NodeId, Torus};
use rbcast_protocols::{Cpa, Flood, Indirect, IndirectConfig, Msg, ProtocolParams};
use rbcast_sim::driver::{commit_digest, InstanceId};
use rbcast_sim::{ChannelConfig, Network, Process, Round, Value};
use std::rc::Rc;
use std::sync::Arc;

/// Which verified protocol a cluster runs. All nodes of all instances
/// run the same protocol (the paper's setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetProtocol {
    /// Unverified baseline flood (no Byzantine tolerance).
    Flood,
    /// The §VI indirect-report protocol, full two-level rule.
    IndirectFull,
    /// The §VI-B simplified one-level variant.
    IndirectSimplified,
    /// The §V Certified Propagation Algorithm.
    Cpa,
}

impl NetProtocol {
    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "flood" => Some(NetProtocol::Flood),
            "indirect" | "indirect-full" => Some(NetProtocol::IndirectFull),
            "indirect-simplified" => Some(NetProtocol::IndirectSimplified),
            "cpa" => Some(NetProtocol::Cpa),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetProtocol::Flood => "flood",
            NetProtocol::IndirectFull => "indirect",
            NetProtocol::IndirectSimplified => "indirect-simplified",
            NetProtocol::Cpa => "cpa",
        }
    }
}

/// Static configuration of one cluster run, identical on every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Torus width.
    pub width: u32,
    /// Torus height.
    pub height: u32,
    /// Transmission radius.
    pub radius: u32,
    /// Neighborhood metric.
    pub metric: Metric,
    /// The protocol every node runs.
    pub protocol: NetProtocol,
    /// Fault budget `t` the protocol is configured for.
    pub t: usize,
    /// Number of concurrent broadcast instances.
    pub instances: u32,
    /// Delivery rounds to run (must cover the protocol's decision
    /// latency; extra rounds are idle under the sparse contract).
    pub rounds: Round,
}

impl ClusterSpec {
    /// The shared topology. Uses the wrapping builder so small
    /// clusters (3×3 at r = 1, where wrap-around aliases neighbors)
    /// host correctly.
    #[must_use]
    pub fn arena(&self) -> Arc<NeighborTable> {
        Arc::new(NeighborTable::build_wrapping(
            &Torus::new(self.width, self.height),
            self.radius,
            self.metric,
        ))
    }

    /// The run's instance set: instance `i` originates at node
    /// `i mod n` with sequence `i`. Deterministic, known to all nodes.
    #[must_use]
    pub fn instance_ids(&self) -> Vec<InstanceId> {
        let n = (self.width as u64 * self.height as u64) as u32;
        (0..self.instances)
            .map(|i| InstanceId {
                origin: NodeId(i % n),
                seq: i,
            })
            .collect()
    }

    /// The value instance `inst` broadcasts (alternating, so parity
    /// failures that swap values are caught).
    #[must_use]
    pub fn instance_value(inst: InstanceId) -> Value {
        inst.seq.is_multiple_of(2)
    }

    /// Builds one node's process for one instance.
    #[must_use]
    pub fn process_for(&self, inst: InstanceId) -> Box<dyn Process<Msg>> {
        let params = ProtocolParams {
            source: inst.origin,
            value: Self::instance_value(inst),
            t: self.t,
        };
        match self.protocol {
            NetProtocol::Flood => Box::new(Flood::new(params)),
            NetProtocol::IndirectFull => Box::new(Indirect::new(params, IndirectConfig::full())),
            NetProtocol::IndirectSimplified => {
                Box::new(Indirect::new(params, IndirectConfig::simplified()))
            }
            NetProtocol::Cpa => Box::new(Cpa::new(params)),
        }
    }

    /// Runs the identical configuration on the verified simulator — one
    /// reliable-channel [`Network`] per instance — and returns every
    /// decision plus the commit digest the cluster must reproduce.
    #[must_use]
    pub fn sim_oracle(&self) -> OracleReport {
        let arena = self.arena();
        let mut decisions = Vec::new();
        for inst in self.instance_ids() {
            let mut net =
                Network::with_arena(Arc::clone(&arena), ChannelConfig::reliable(), |_| {
                    self.process_for(inst)
                });
            net.run(self.rounds);
            for id in arena.torus().node_ids() {
                if let Some((value, round)) = net.decision(id) {
                    decisions.push((inst, id, value, round));
                }
            }
        }
        let digest = commit_digest(&decisions);
        OracleReport { decisions, digest }
    }
}

/// The sim oracle's answer for a [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Every `(instance, node, value, round)` decision.
    pub decisions: Vec<(InstanceId, NodeId, Value, Round)>,
    /// [`commit_digest`] over those decisions.
    pub digest: u64,
}

/// Aggregated outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Per-node summaries.
    pub nodes: Vec<NodeReport>,
    /// Every `(instance, node, value, round)` decision across nodes.
    pub decisions: Vec<(InstanceId, NodeId, Value, Round)>,
    /// [`commit_digest`] over those decisions.
    pub digest: u64,
    /// Fraction of `(instance, node)` pairs that committed.
    pub commit_rate: f64,
    /// Ticks the run loop executed.
    pub ticks: u64,
    /// Nodes that could not (re)boot because their journal was corrupt,
    /// with the replay error. A quarantined node contributes no
    /// decisions; the rest of the cluster keeps running.
    pub quarantined: Vec<(u32, String)>,
}

/// An in-process cluster: every node is a [`NodeRuntime`] pumped
/// round-robin on the calling thread, exchanging datagrams through a
/// [`LoopbackHub`] (optionally behind per-node chaos shims).
pub struct LoopbackCluster {
    spec: ClusterSpec,
    cfg: RuntimeConfig,
    chaos: Option<ChaosConfig>,
    arena: Arc<NeighborTable>,
    hub: Rc<LoopbackHub>,
    nodes: Vec<Option<NodeRuntime>>,
    journals: Vec<SharedJournal>,
    /// Nodes frozen (not pumped) until the given tick — stall chaos.
    stalled_until: Vec<u64>,
    /// Why a node refused to boot (corrupt journal), by node index.
    quarantined: Vec<Option<String>>,
    ticks: u64,
}

impl std::fmt::Debug for LoopbackCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackCluster")
            .field("spec", &self.spec)
            .field("live", &self.nodes.iter().filter(|n| n.is_some()).count())
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

impl LoopbackCluster {
    /// Boots every node of `spec`. `chaos` (if any) wraps each node's
    /// transport with a shim seeded per node, so loss patterns differ
    /// across links but replay identically across runs.
    #[must_use]
    pub fn new(spec: ClusterSpec, cfg: RuntimeConfig, chaos: Option<ChaosConfig>) -> Self {
        let arena = spec.arena();
        let n = arena.len();
        let mut cluster = LoopbackCluster {
            spec,
            cfg,
            chaos,
            arena,
            hub: LoopbackHub::new(),
            nodes: (0..n).map(|_| None).collect(),
            journals: (0..n).map(|_| SharedJournal::new()).collect(),
            stalled_until: vec![0; n],
            quarantined: vec![None; n],
            ticks: 0,
        };
        for i in 0..n {
            // Fresh journals cannot be corrupt, but the same boot path
            // serves restarts, where they can.
            let _booted = cluster.boot(i as u32);
        }
        cluster
    }

    fn boot(&mut self, node: u32) -> Result<(), JournalError> {
        let port = self.hub.attach(node);
        let transport: Box<dyn Datagram> = match self.chaos {
            Some(base) => {
                let mut cfg = base;
                cfg.seed = base.seed ^ (u64::from(node) << 17);
                Box::new(ChaosTransport::new(node, port, cfg))
            }
            None => Box::new(port),
        };
        let spec = self.spec;
        match NodeRuntime::open(
            Arc::clone(&self.arena),
            NodeId(node),
            &spec.instance_ids(),
            &mut |inst| spec.process_for(inst),
            transport,
            Box::new(self.journals[node as usize].clone()),
            self.cfg,
        ) {
            Ok(rt) => {
                self.nodes[node as usize] = Some(rt);
                self.quarantined[node as usize] = None;
                Ok(())
            }
            Err(e) => {
                // A node that cannot replay its journal stays down —
                // rebooting with amnesia could un-ack delivered frames.
                // The cluster keeps running without it; the report
                // carries the reason.
                self.quarantined[node as usize] = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Kills a node: its runtime (including unacked link buffers and
    /// in-memory round state) is dropped. The journal survives — it is
    /// the only thing a real crash preserves.
    pub fn kill(&mut self, node: u32) {
        self.nodes[node as usize] = None;
    }

    /// Restarts a killed node from its journal (bumped epoch, replayed
    /// state, re-sent outboxes). Returns false — leaving the node
    /// quarantined, with the reason in [`LoopbackCluster::report`] —
    /// when the journal no longer replays.
    pub fn restart(&mut self, node: u32) -> bool {
        assert!(
            self.nodes[node as usize].is_none(),
            "restart of a live node"
        );
        self.boot(node).is_ok()
    }

    /// Corrupts a node's journal by appending a raw garbage line — the
    /// recovery tests' stand-in for a torn write on disk. Takes effect
    /// at the next [`LoopbackCluster::restart`] (a live runtime never
    /// re-reads its own journal).
    pub fn corrupt_journal(&mut self, node: u32, line: &str) {
        self.journals[node as usize].inject_raw(line);
    }

    /// Freezes a node for `ticks` cluster steps: it receives nothing
    /// and sends nothing, then resumes with its state intact (a GC
    /// pause / SIGSTOP, as opposed to a crash).
    pub fn stall(&mut self, node: u32, ticks: u64) {
        self.stalled_until[node as usize] = self.ticks + ticks;
    }

    /// True when a node is currently live (booted and not killed).
    #[must_use]
    pub fn is_live(&self, node: u32) -> bool {
        self.nodes[node as usize].is_some()
    }

    /// Pumps every live, un-stalled node once. Returns true when every
    /// live node has finished its rounds.
    pub fn step(&mut self) -> bool {
        self.ticks += 1;
        let mut all_done = true;
        for (i, slot) in self.nodes.iter_mut().enumerate() {
            let Some(rt) = slot else { continue };
            if self.stalled_until[i] > self.ticks {
                all_done = false;
                continue;
            }
            if !rt.pump() {
                all_done = false;
            }
        }
        all_done
    }

    /// Runs until every live node finishes or `max_ticks` elapse;
    /// returns true on completion.
    pub fn run(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            if self.step() {
                return true;
            }
        }
        false
    }

    /// Ticks stepped so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Aggregates decisions and digest across all live nodes.
    #[must_use]
    pub fn report(&self) -> ClusterReport {
        let nodes: Vec<NodeReport> = self
            .nodes
            .iter()
            .flatten()
            .map(NodeRuntime::report)
            .collect();
        let quarantined = self
            .quarantined
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.as_ref().map(|why| (i as u32, why.clone())))
            .collect();
        summarize(&self.spec, nodes, self.ticks, quarantined)
    }
}

/// Folds per-node reports into the cluster-level summary (shared by the
/// loopback cluster and the UDP cluster CLI, which collects the same
/// per-node reports from child processes).
#[must_use]
pub fn summarize(
    spec: &ClusterSpec,
    nodes: Vec<NodeReport>,
    ticks: u64,
    quarantined: Vec<(u32, String)>,
) -> ClusterReport {
    let mut decisions = Vec::new();
    for report in &nodes {
        for &(inst, value, round) in &report.decisions {
            decisions.push((inst, report.node, value, round));
        }
    }
    let digest = commit_digest(&decisions);
    let pairs = (spec.width as u64 * spec.height as u64) * u64::from(spec.instances);
    let commit_rate = if pairs == 0 {
        0.0
    } else {
        decisions.len() as f64 / pairs as f64
    };
    ClusterReport {
        nodes,
        decisions,
        digest,
        commit_rate,
        ticks,
        quarantined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec {
            width: 3,
            height: 3,
            radius: 1,
            metric: Metric::Linf,
            protocol: NetProtocol::Flood,
            t: 0,
            instances: 2,
            rounds: 12,
        }
    }

    #[test]
    fn loopback_flood_matches_oracle() {
        let spec = spec();
        let oracle = spec.sim_oracle();
        assert!(!oracle.decisions.is_empty());
        let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), None);
        assert!(cluster.run(100_000), "cluster must finish");
        let report = cluster.report();
        assert_eq!(report.decisions.len(), oracle.decisions.len());
        assert_eq!(report.digest, oracle.digest, "commit digests diverge");
        assert!((report.commit_rate - 1.0).abs() < 1e-12);
        assert!(report.nodes.iter().all(NodeReport::healthy));
    }

    #[test]
    fn corrupt_journal_quarantines_the_node_and_surfaces_in_the_report() {
        let spec = spec();
        // Finite patience: survivors must suspect the quarantined node
        // and finish without it, as in the unrecovered-crash test.
        let cfg = RuntimeConfig {
            patience: 400,
            ..RuntimeConfig::default()
        };
        let mut cluster = LoopbackCluster::new(spec, cfg, None);
        for _ in 0..20 {
            cluster.step();
        }
        // Crash node 4 and tear its journal: the restart must refuse to
        // boot (no amnesia reboots) instead of panicking, and the rest
        // of the cluster must still finish.
        cluster.kill(4);
        cluster.corrupt_journal(
            4,
            "{\"frame\":{\"peer\":1,\"pe\":1,\"seq\":0,\"body\":\"zz\"}}",
        );
        assert!(!cluster.restart(4), "corrupt journal must refuse to boot");
        assert!(!cluster.is_live(4));
        assert!(cluster.run(100_000), "healthy nodes must still finish");

        let report = cluster.report();
        assert_eq!(report.quarantined.len(), 1);
        let (node, why) = &report.quarantined[0];
        assert_eq!(*node, 4);
        assert!(why.contains("corrupt journal"), "reason surfaced: {why}");
        assert_eq!(report.nodes.len(), 8, "the other eight nodes report");
        assert!(report.commit_rate < 1.0);

        // A second restart after the corruption still refuses, and the
        // quarantine reason stays stable.
        assert!(!cluster.restart(4));
        assert_eq!(cluster.report().quarantined, report.quarantined);
    }

    #[test]
    fn healthy_restart_clears_nothing_and_reports_no_quarantine() {
        let spec = spec();
        let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), None);
        for _ in 0..20 {
            cluster.step();
        }
        cluster.kill(4);
        assert!(cluster.restart(4), "intact journal must boot");
        assert!(cluster.run(100_000));
        assert!(cluster.report().quarantined.is_empty());
    }

    #[test]
    fn stalled_node_catches_up_without_suspicion() {
        let spec = spec();
        let oracle = spec.sim_oracle();
        let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), None);
        cluster.stall(4, 300);
        assert!(cluster.run(100_000));
        let report = cluster.report();
        assert_eq!(report.digest, oracle.digest);
        assert!(report.nodes.iter().all(NodeReport::healthy));
    }
}
