//! Crash-recovery journal: append-only JSONL, written *before* frames
//! are acknowledged.
//!
//! Three record shapes, one per line:
//!
//! ```text
//! {"boot":{"epoch":2}}
//! {"frame":{"peer":4,"pe":1,"seq":12,"body":"01050000..."}}
//! {"complete":{"round":3}}
//! ```
//!
//! * `boot` — a runtime came up with this epoch. Restarts append a new
//!   `boot` with `max(previous) + 1`, which is how peers detect the
//!   restart (the epoch rides every packet header).
//! * `frame` — one sequenced frame released by the link from `peer`
//!   (at peer epoch `pe`), hex-encoded wire body. Journaled before the
//!   cumulative ack covering it can be sent, so *acked ⊆ journaled*:
//!   nothing a peer considers delivered is ever lost to a crash.
//! * `complete` — a lockstep round closed. Replay re-runs ingestion
//!   over these records deterministically, reconstructing protocol
//!   state, link receive windows, and the outboxes still owed to peers.
//!
//! Encoding and the field extractors are hand-rolled (the workspace is
//! offline — no serde): the writer emits a strict machine format and
//! the reader treats any deviation as corruption, reported as a
//! [`JournalError`] rather than a panic.

use crate::wire::{decode_frame, from_hex, SeqFrame};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A corrupt or unreadable journal.
#[derive(Debug)]
pub enum JournalError {
    /// A line that is not one of the three record shapes.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        why: String,
    },
    /// Filesystem failure (file backend only).
    Io(std::io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadRecord { line, why } => {
                write!(f, "corrupt journal at line {line}: {why}")
            }
            JournalError::Io(e) => write!(f, "journal I/O failure: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One parsed journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Runtime boot at the given epoch.
    Boot {
        /// The boot epoch.
        epoch: u32,
    },
    /// A released frame from `peer`.
    Frame {
        /// Sending neighbor.
        peer: u32,
        /// The neighbor's epoch when it sent the frame.
        peer_epoch: u32,
        /// Link sequence number within that epoch's stream.
        seq: u64,
        /// The decoded frame.
        frame: SeqFrame,
    },
    /// A lockstep round closed.
    Complete {
        /// The round that closed.
        round: u32,
    },
}

/// Durable append-only record sink plus full read-back for replay.
pub trait NetJournal {
    /// Appends one record durably (flushed before return — the ack
    /// protocol depends on it).
    fn append(&mut self, record: &Record);

    /// Every record appended so far, oldest first.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] when the backing store is corrupt.
    fn records(&self) -> Result<Vec<Record>, JournalError>;
}

/// Extracts `"key":<digits>` from a strict machine-formatted line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts `"key":"<hex>"` from a strict machine-formatted line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Serializes one record to its JSONL line (no trailing newline).
#[must_use]
pub fn encode_record(record: &Record) -> String {
    match record {
        Record::Boot { epoch } => format!("{{\"boot\":{{\"epoch\":{epoch}}}}}"),
        Record::Frame {
            peer,
            peer_epoch,
            seq,
            frame,
        } => {
            let mut body = Vec::new();
            crate::wire::encode_frame(&mut body, frame);
            format!(
                "{{\"frame\":{{\"peer\":{peer},\"pe\":{peer_epoch},\"seq\":{seq},\"body\":\"{}\"}}}}",
                crate::wire::to_hex(&body)
            )
        }
        Record::Complete { round } => format!("{{\"complete\":{{\"round\":{round}}}}}"),
    }
}

/// Parses one JSONL line back into a [`Record`].
///
/// # Errors
///
/// Returns the reason the line is not a valid record.
pub fn decode_record(line: &str) -> Result<Record, String> {
    if line.contains("\"boot\"") {
        let epoch = field_u64(line, "epoch").ok_or("boot without epoch")?;
        let epoch = u32::try_from(epoch).map_err(|_| "epoch exceeds u32")?;
        return Ok(Record::Boot { epoch });
    }
    if line.contains("\"frame\"") {
        let peer = field_u64(line, "peer").ok_or("frame without peer")?;
        let peer_epoch = field_u64(line, "pe").ok_or("frame without pe")?;
        let seq = field_u64(line, "seq").ok_or("frame without seq")?;
        let hex = field_str(line, "body").ok_or("frame without body")?;
        let body = from_hex(hex).ok_or("body is not hex")?;
        let frame = decode_frame(&body).map_err(|e| format!("bad frame body: {e}"))?;
        return Ok(Record::Frame {
            peer: u32::try_from(peer).map_err(|_| "peer exceeds u32")?,
            peer_epoch: u32::try_from(peer_epoch).map_err(|_| "pe exceeds u32")?,
            seq,
            frame,
        });
    }
    if line.contains("\"complete\"") {
        let round = field_u64(line, "round").ok_or("complete without round")?;
        let round = u32::try_from(round).map_err(|_| "round exceeds u32")?;
        return Ok(Record::Complete { round });
    }
    Err("unknown record shape".to_string())
}

fn parse_lines(text: &str) -> Result<Vec<Record>, JournalError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match decode_record(line) {
            Ok(r) => records.push(r),
            Err(why) => {
                return Err(JournalError::BadRecord { line: i + 1, why });
            }
        }
    }
    Ok(records)
}

/// In-memory journal for the loopback cluster: contents survive a
/// simulated process kill because the *cluster* owns the store and
/// hands it back to the restarted runtime (mirroring a file surviving
/// an OS process).
#[derive(Debug, Default, Clone)]
pub struct MemJournal {
    lines: Vec<String>,
}

impl MemJournal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Number of records held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no records were appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Appends a raw line without encoding it — the fault-injection
    /// hook recovery tests use to model on-disk corruption (a torn
    /// write, bit rot) that [`NetJournal::records`] must surface as a
    /// [`JournalError`] instead of a panic.
    pub fn inject_raw(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }
}

impl NetJournal for MemJournal {
    fn append(&mut self, record: &Record) {
        self.lines.push(encode_record(record));
    }

    fn records(&self) -> Result<Vec<Record>, JournalError> {
        let mut out = Vec::with_capacity(self.lines.len());
        for (i, line) in self.lines.iter().enumerate() {
            out.push(
                decode_record(line).map_err(|why| JournalError::BadRecord { line: i + 1, why })?,
            );
        }
        Ok(out)
    }
}

/// A [`MemJournal`] behind shared ownership, so a loopback cluster can
/// keep the store alive across a simulated process kill and hand it
/// back to the restarted runtime — playing the role the filesystem
/// plays for real processes. Single-threaded by design (`Rc`), like the
/// loopback cluster itself.
#[derive(Debug, Default, Clone)]
pub struct SharedJournal(std::rc::Rc<std::cell::RefCell<MemJournal>>);

impl SharedJournal {
    /// An empty shared journal.
    #[must_use]
    pub fn new() -> Self {
        SharedJournal::default()
    }

    /// Number of records held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when no records were appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Injects a raw (possibly corrupt) line; see
    /// [`MemJournal::inject_raw`].
    pub fn inject_raw(&self, line: &str) {
        self.0.borrow_mut().inject_raw(line);
    }
}

impl NetJournal for SharedJournal {
    fn append(&mut self, record: &Record) {
        self.0.borrow_mut().append(record);
    }

    fn records(&self) -> Result<Vec<Record>, JournalError> {
        self.0.borrow().records()
    }
}

/// File-backed JSONL journal for UDP cluster processes. Appends are
/// flushed (`File::sync_data` is overkill for a chaos smoke; `flush`
/// pushes through the std buffer) before the append returns.
#[derive(Debug)]
pub struct FileJournal {
    path: PathBuf,
    file: File,
}

impl FileJournal {
    /// Opens (creating if missing) the journal at `path` for append.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileJournal {
            path: path.to_path_buf(),
            file,
        })
    }
}

impl NetJournal for FileJournal {
    fn append(&mut self, record: &Record) {
        let mut line = encode_record(record);
        line.push('\n');
        // A full disk mid-smoke is indistinguishable from corruption;
        // surfacing it loudly beats silently weakening the ack
        // invariant.
        self.file
            .write_all(line.as_bytes())
            .expect("journal append failed: ack invariant would be violated");
        self.file
            .flush()
            .expect("journal flush failed: ack invariant would be violated");
    }

    fn records(&self) -> Result<Vec<Record>, JournalError> {
        let mut text = String::new();
        File::open(&self.path)?.read_to_string(&mut text)?;
        parse_lines(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::NodeId;
    use rbcast_protocols::Msg;
    use rbcast_sim::driver::InstanceId;

    fn sample() -> Vec<Record> {
        vec![
            Record::Boot { epoch: 1 },
            Record::Frame {
                peer: 4,
                peer_epoch: 1,
                seq: 0,
                frame: SeqFrame::Data {
                    round: 1,
                    instance: InstanceId {
                        origin: NodeId(0),
                        seq: 2,
                    },
                    msg: Msg::Committed(true),
                },
            },
            Record::Frame {
                peer: 4,
                peer_epoch: 1,
                seq: 1,
                frame: SeqFrame::Mark { round: 1 },
            },
            Record::Complete { round: 1 },
            Record::Boot { epoch: 2 },
        ]
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        for r in sample() {
            let line = encode_record(&r);
            assert_eq!(decode_record(&line).as_ref(), Ok(&r), "{line}");
        }
    }

    #[test]
    fn mem_journal_replays_in_order() {
        let mut j = MemJournal::new();
        for r in sample() {
            j.append(&r);
        }
        assert_eq!(j.records().expect("valid journal"), sample());
    }

    #[test]
    fn corrupt_lines_are_structured_errors() {
        for bad in [
            "{\"frame\":{\"peer\":4}}",
            "{\"frame\":{\"peer\":4,\"pe\":1,\"seq\":0,\"body\":\"zz\"}}",
            "{\"boot\":{}}",
            "gibberish",
        ] {
            assert!(decode_record(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn file_journal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("rbcast-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("node0.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = FileJournal::open(&path).expect("open");
            for r in sample() {
                j.append(&r);
            }
        }
        let j = FileJournal::open(&path).expect("reopen");
        assert_eq!(j.records().expect("valid journal"), sample());
        let _ = std::fs::remove_file(&path);
    }
}
