//! Networked runtime for the verified broadcast protocols.
//!
//! The simulator proves the protocols correct under the paper's channel
//! model; this crate runs the *same* [`rbcast_sim::Process`]
//! implementations, unchanged, over real datagrams. The layering:
//!
//! * [`wire`] — hand-rolled packet format with a provable
//!   single-bit-corruption checksum; decoding is total (structured
//!   errors, never panics).
//! * [`link`] — per-neighbor reliable FIFO streams: sequencing,
//!   cumulative acks, deterministic capped-backoff retransmission,
//!   duplicate suppression, epoch-based restart detection.
//! * [`transport`] — the [`transport::Datagram`] abstraction with UDP
//!   and in-process loopback implementations (the only raw-socket code
//!   in the workspace, pinned by the `raw-socket-io` audit rule).
//! * [`chaos`] — a seeded fault-injection shim between link and wire:
//!   Gilbert–Elliott burst loss (the sim channel's own model),
//!   duplication, reordering, delay — all deterministic per seed.
//! * [`journal`] — append-before-ack JSONL durability, the basis of
//!   crash recovery.
//! * [`runtime`] — the lockstep round barrier that reproduces the
//!   simulator's delivery order exactly, with degraded-mode quarantine
//!   for silent peers and journal-driven resumption.
//! * [`cluster`] — shared run configuration, the sim parity oracle,
//!   and the single-threaded loopback cluster used by tests.
//!
//! The design invariant throughout: **reliability is recovered below
//! the protocol, determinism is preserved above it.** A cluster run
//! under chaos must commit exactly what the simulator commits —
//! [`cluster::ClusterSpec::sim_oracle`] digest equality is enforced by
//! the golden parity tests and the CI cluster smoke.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod journal;
pub mod link;
pub mod runtime;
pub mod transport;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosTransport};
pub use cluster::{ClusterReport, ClusterSpec, LoopbackCluster, NetProtocol, OracleReport};
pub use journal::{FileJournal, MemJournal, NetJournal, Record, SharedJournal};
pub use link::{Link, LinkConfig, LinkStats};
pub use runtime::{NodeReport, NodeRuntime, RuntimeConfig};
pub use transport::{Datagram, LoopbackHub, LoopbackPort, UdpTransport};
pub use wire::{decode_packet, encode_packet, Packet, PacketKind, SeqFrame, WireError};
