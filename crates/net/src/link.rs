//! Per-neighbor reliable links: sequencing, cumulative acks, bounded
//! deterministic retransmission, duplicate suppression, epoch-based
//! restart detection.
//!
//! A [`Link`] turns the lossy datagram transport into the FIFO channel
//! the round barrier needs. Each direction is an independent stream:
//!
//! * **Tx** — frames get consecutive sequence numbers under the
//!   sender's boot epoch and stay buffered until cumulatively acked;
//!   unacked frames retransmit on a tick-based timeout with capped
//!   exponential backoff and deterministic jitter derived from
//!   [`rbcast_core::supervisor::retry_seed`], so two runs of the same
//!   schedule retransmit at identical ticks.
//! * **Rx** — frames release strictly in sequence order; out-of-order
//!   arrivals buffer, duplicates re-trigger an ack and are dropped. An
//!   incoming *higher* epoch means the peer restarted: its new stream
//!   starts over at sequence 0, so the receive state resets (the
//!   runtime layer discards that peer's un-consumed round buffers to
//!   match). Acks carry the epoch they acknowledge, so a stale ack from
//!   before a restart can never consume frames of the new stream.
//!
//! The ack split supports journal-before-ack crash recovery: the link
//! *releases* frames immediately ([`Link::on_packet`]) but only
//! acknowledges what the runtime has *confirmed*
//! ([`Link::confirm_released`]) after journaling. A crash between
//! release and confirm merely means the peer retransmits — frames the
//! peer saw acked are always journaled.

use crate::wire::{encode_packet, Packet, PacketKind, SeqFrame};
use rbcast_core::supervisor::retry_seed;
use std::collections::{BTreeMap, VecDeque};

/// Retransmission policy knobs (all in ticks — one tick per runtime
/// pump, never wall clock, so behaviour is deterministic per schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Ticks before the first retransmission of a frame.
    pub base_timeout: u64,
    /// Backoff doubles per attempt up to `base_timeout << backoff_cap`.
    pub backoff_cap: u32,
    /// Deterministic jitter added per retransmission, in `0..=jitter`.
    pub jitter: u64,
    /// Give up on a frame after this many retransmissions (`None` =
    /// retry forever — required when peers may crash *and return*).
    pub max_attempts: Option<u32>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            base_timeout: 16,
            backoff_cap: 6,
            jitter: 7,
            max_attempts: None,
        }
    }
}

/// Counters for one link, both directions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames handed to the link for first transmission.
    pub sent: u64,
    /// Retransmissions (timeouts fired).
    pub retransmits: u64,
    /// Duplicate frames received and suppressed.
    pub dup_rx: u64,
    /// Packets dropped as stale (older epoch than current).
    pub stale_rx: u64,
    /// Cumulative acks received that advanced the tx window.
    pub acks_rx: u64,
}

#[derive(Debug)]
struct Outstanding {
    seq: u64,
    frame: SeqFrame,
    due: u64,
    attempts: u32,
}

/// One bidirectional reliable link to a single neighbor.
#[derive(Debug)]
pub struct Link {
    me: u32,
    my_epoch: u32,
    peer: u32,
    cfg: LinkConfig,
    // Tx state.
    next_seq: u64,
    unacked: VecDeque<Outstanding>,
    exhausted: bool,
    // Rx state.
    peer_epoch: Option<u32>,
    next_release: u64,
    confirmed: u64,
    ooo: BTreeMap<u64, SeqFrame>,
    ack_due: bool,
    /// Counters.
    pub stats: LinkStats,
}

/// What [`Link::on_packet`] observed, so the runtime can react.
#[derive(Debug, PartialEq, Eq)]
pub enum RxEvent {
    /// Nothing released (ack, duplicate, stale, or out-of-order hold).
    None,
    /// The peer restarted: its epoch rose to the given value. The
    /// runtime must discard un-consumed round state from this peer
    /// *before* ingesting the frames released afterwards.
    PeerRestarted(u32),
}

impl Link {
    /// A fresh link from `me` (at boot epoch `my_epoch`) to `peer`.
    #[must_use]
    pub fn new(me: u32, my_epoch: u32, peer: u32, cfg: LinkConfig) -> Self {
        Link {
            me,
            my_epoch,
            peer,
            cfg,
            next_seq: 0,
            unacked: VecDeque::new(),
            exhausted: false,
            peer_epoch: None,
            next_release: 0,
            confirmed: 0,
            ooo: BTreeMap::new(),
            ack_due: false,
            stats: LinkStats::default(),
        }
    }

    /// The neighbor this link serves.
    #[must_use]
    pub fn peer(&self) -> u32 {
        self.peer
    }

    /// Restores receive-side state from the journal after a restart:
    /// every journaled frame of `peer_epoch` was released in sequence
    /// order starting at 0, so `count` frames are both released and
    /// confirmed.
    pub fn restore_rx(&mut self, peer_epoch: u32, count: u64) {
        self.peer_epoch = Some(peer_epoch);
        self.next_release = count;
        self.confirmed = count;
        // Tell the peer where we are so it prunes its unacked buffer.
        self.ack_due = true;
    }

    /// Queues `frame` on the tx stream; it transmits on the next
    /// [`Link::flush`] and retransmits until acked.
    pub fn send(&mut self, frame: SeqFrame) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.sent += 1;
        self.unacked.push_back(Outstanding {
            seq,
            frame,
            due: 0, // due immediately: first flush transmits it
            attempts: 0,
        });
    }

    /// Ingests one decoded packet from this peer. Returns any frames
    /// released in order (paired with their sequence numbers) plus an
    /// [`RxEvent`] the runtime may need to act on *first*.
    pub fn on_packet(&mut self, pkt: &Packet) -> (RxEvent, Vec<(u64, SeqFrame)>) {
        match pkt.kind {
            PacketKind::Ack { ack_epoch, cum } => {
                // Acks are valid only for the stream they acknowledge:
                // a pre-restart ack must not consume post-restart frames.
                if ack_epoch == self.my_epoch {
                    let before = self.unacked.len();
                    while self.unacked.front().is_some_and(|o| o.seq < cum) {
                        self.unacked.pop_front();
                    }
                    if self.unacked.len() < before {
                        self.stats.acks_rx += 1;
                    }
                } else {
                    self.stats.stale_rx += 1;
                }
                (RxEvent::None, Vec::new())
            }
            PacketKind::Seq { seq, frame } => {
                let mut event = RxEvent::None;
                match self.peer_epoch {
                    None => self.peer_epoch = Some(pkt.epoch),
                    Some(e) if pkt.epoch < e => {
                        self.stats.stale_rx += 1;
                        return (RxEvent::None, Vec::new());
                    }
                    Some(e) if pkt.epoch > e => {
                        // Peer restarted: its stream starts over.
                        self.peer_epoch = Some(pkt.epoch);
                        self.next_release = 0;
                        self.confirmed = 0;
                        self.ooo.clear();
                        event = RxEvent::PeerRestarted(pkt.epoch);
                    }
                    Some(_) => {}
                }
                if seq < self.next_release || self.ooo.contains_key(&seq) {
                    self.stats.dup_rx += 1;
                    // Re-ack so the peer stops retransmitting.
                    self.ack_due = true;
                    return (event, Vec::new());
                }
                self.ooo.insert(seq, frame);
                let mut released = Vec::new();
                while let Some(frame) = self.ooo.remove(&self.next_release) {
                    released.push((self.next_release, frame));
                    self.next_release += 1;
                }
                (event, released)
            }
        }
    }

    /// Marks every released frame as journaled, scheduling a cumulative
    /// ack. Call after durably recording the frames [`Link::on_packet`]
    /// returned — never before.
    pub fn confirm_released(&mut self) {
        if self.confirmed != self.next_release {
            self.confirmed = self.next_release;
            self.ack_due = true;
        }
    }

    /// Emits every datagram due at `tick`: a cumulative ack if one is
    /// pending, and any unacked frame whose retransmission timer
    /// expired. Encoded datagrams are appended to `out` (all destined
    /// for [`Link::peer`]).
    pub fn flush(&mut self, tick: u64, out: &mut Vec<Vec<u8>>) {
        if self.ack_due {
            self.ack_due = false;
            if let Some(pe) = self.peer_epoch {
                out.push(encode_packet(&Packet {
                    src: self.me,
                    epoch: self.my_epoch,
                    kind: PacketKind::Ack {
                        ack_epoch: pe,
                        cum: self.confirmed,
                    },
                }));
            }
        }
        let cfg = self.cfg;
        for o in &mut self.unacked {
            if o.due > tick {
                continue;
            }
            if let Some(max) = cfg.max_attempts {
                if o.attempts > max {
                    self.exhausted = true;
                    continue;
                }
            }
            if o.attempts > 0 {
                self.stats.retransmits += 1;
            }
            out.push(encode_packet(&Packet {
                src: self.me,
                epoch: self.my_epoch,
                kind: PacketKind::Seq {
                    seq: o.seq,
                    frame: o.frame,
                },
            }));
            let shift = o.attempts.min(cfg.backoff_cap);
            let backoff = cfg.base_timeout << shift;
            let jitter = if cfg.jitter == 0 {
                0
            } else {
                retry_seed(self.peer as usize, o.attempts) % (cfg.jitter + 1)
            };
            o.due = tick + backoff + jitter;
            o.attempts += 1;
        }
    }

    /// Frames sent but not yet cumulatively acked.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// True once any frame ran out of retransmission attempts (only
    /// possible with a bounded [`LinkConfig::max_attempts`]).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The peer's epoch as last observed (None before first contact).
    #[must_use]
    pub fn peer_epoch(&self) -> Option<u32> {
        self.peer_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(round: u32) -> SeqFrame {
        SeqFrame::Mark { round }
    }

    fn seq_packet(src: u32, epoch: u32, seq: u64, frame: SeqFrame) -> Packet {
        Packet {
            src,
            epoch,
            kind: PacketKind::Seq { seq, frame },
        }
    }

    #[test]
    fn releases_in_order_and_buffers_gaps() {
        let mut link = Link::new(0, 1, 1, LinkConfig::default());
        let (_, r) = link.on_packet(&seq_packet(1, 1, 1, mark(2)));
        assert!(r.is_empty(), "gap must hold release");
        let (_, r) = link.on_packet(&seq_packet(1, 1, 0, mark(1)));
        assert_eq!(r, vec![(0, mark(1)), (1, mark(2))]);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked() {
        let mut link = Link::new(0, 1, 1, LinkConfig::default());
        let (_, r) = link.on_packet(&seq_packet(1, 1, 0, mark(1)));
        assert_eq!(r.len(), 1);
        link.confirm_released();
        let (_, r) = link.on_packet(&seq_packet(1, 1, 0, mark(1)));
        assert!(r.is_empty());
        assert_eq!(link.stats.dup_rx, 1);
        let mut out = Vec::new();
        link.flush(0, &mut out);
        assert_eq!(out.len(), 1, "duplicate triggers a fresh ack");
    }

    #[test]
    fn retransmits_until_acked_with_backoff() {
        let cfg = LinkConfig {
            base_timeout: 4,
            backoff_cap: 2,
            jitter: 0,
            max_attempts: None,
        };
        let mut link = Link::new(0, 1, 1, cfg);
        link.send(mark(1));
        let mut out = Vec::new();
        link.flush(0, &mut out);
        assert_eq!(out.len(), 1, "first transmission");
        out.clear();
        link.flush(1, &mut out);
        assert!(out.is_empty(), "not due yet");
        link.flush(4, &mut out);
        assert_eq!(out.len(), 1, "first retransmission at base timeout");
        assert_eq!(link.stats.retransmits, 1);
        // Ack for the frame stops retransmission.
        link.on_packet(&Packet {
            src: 1,
            epoch: 9,
            kind: PacketKind::Ack {
                ack_epoch: 1,
                cum: 1,
            },
        });
        assert_eq!(link.in_flight(), 0);
        out.clear();
        link.flush(100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_epoch_acks_do_not_consume_new_stream() {
        let mut link = Link::new(0, 2, 1, LinkConfig::default());
        link.send(mark(1));
        link.on_packet(&Packet {
            src: 1,
            epoch: 1,
            kind: PacketKind::Ack {
                ack_epoch: 1, // acknowledges epoch 1; we are epoch 2
                cum: 5,
            },
        });
        assert_eq!(link.in_flight(), 1, "stale ack ignored");
        assert_eq!(link.stats.stale_rx, 1);
    }

    #[test]
    fn peer_epoch_bump_resets_rx_and_reports_restart() {
        let mut link = Link::new(0, 1, 1, LinkConfig::default());
        let (_, r) = link.on_packet(&seq_packet(1, 1, 0, mark(1)));
        assert_eq!(r.len(), 1);
        link.confirm_released();
        // Peer restarts: epoch 2, stream restarts at seq 0.
        let (ev, r) = link.on_packet(&seq_packet(1, 2, 0, mark(1)));
        assert_eq!(ev, RxEvent::PeerRestarted(2));
        assert_eq!(r, vec![(0, mark(1))]);
        // Old-epoch stragglers are now stale.
        let (ev, r) = link.on_packet(&seq_packet(1, 1, 1, mark(2)));
        assert_eq!(ev, RxEvent::None);
        assert!(r.is_empty());
        assert_eq!(link.stats.stale_rx, 1);
    }

    #[test]
    fn restore_rx_suppresses_journaled_frames() {
        let mut link = Link::new(0, 1, 1, LinkConfig::default());
        link.restore_rx(3, 2); // journal held seqs 0 and 1 of epoch 3
        let (_, r) = link.on_packet(&seq_packet(1, 3, 0, mark(1)));
        assert!(r.is_empty());
        assert_eq!(link.stats.dup_rx, 1);
        let (_, r) = link.on_packet(&seq_packet(1, 3, 2, mark(2)));
        assert_eq!(r, vec![(2, mark(2))]);
    }

    #[test]
    fn bounded_attempts_exhaust() {
        let cfg = LinkConfig {
            base_timeout: 1,
            backoff_cap: 0,
            jitter: 0,
            max_attempts: Some(2),
        };
        let mut link = Link::new(0, 1, 1, cfg);
        link.send(mark(1));
        let mut out = Vec::new();
        for tick in 0..10 {
            link.flush(tick, &mut out);
        }
        assert!(link.exhausted());
    }

    #[test]
    fn jitter_is_deterministic() {
        let cfg = LinkConfig {
            base_timeout: 4,
            backoff_cap: 3,
            jitter: 5,
            max_attempts: None,
        };
        let run = || {
            let mut link = Link::new(0, 1, 1, cfg);
            link.send(mark(1));
            let mut ticks = Vec::new();
            let mut out = Vec::new();
            for tick in 0..200 {
                out.clear();
                link.flush(tick, &mut out);
                if !out.is_empty() {
                    ticks.push(tick);
                }
            }
            ticks
        };
        assert_eq!(run(), run());
    }
}
