//! The networked node runtime: lockstep rounds over reliable links.
//!
//! [`NodeRuntime`] runs one grid node's [`InstanceHost`] — every
//! concurrent broadcast instance the node participates in — over a
//! [`Datagram`] transport, reproducing the simulator's round semantics
//! exactly:
//!
//! * entering round `k`, a node sends each neighbor its round-`k`
//!   deliveries (`Data`) followed by a `Mark(k)` barrier token on the
//!   per-neighbor FIFO [`Link`];
//! * round `k` *completes* once `Mark(k)` arrived from every
//!   non-suspected neighbor — the link's in-order release guarantees
//!   all of a peer's round-`k` data precedes its mark;
//! * completed deliveries are replayed to the host sorted by the
//!   sender's TDMA rank ([`transmission_order`]), per-sender FIFO — the
//!   simulator's exact global delivery order restricted to this
//!   neighborhood. Same inputs, same callbacks, same decisions: the
//!   golden parity tests assert digest equality against the sim oracle.
//!
//! **Degraded mode.** A peer that stays silent past the configured
//! patience is *suspected* and the barrier proceeds without it —
//! quarantine rather than wedging, mirroring the supervisor's
//! degraded-task taxonomy ([`rbcast_core::supervisor::TaskError`]): a
//! dead neighbor costs its input, not the cluster's liveness. A frame
//! from a suspect lifts the suspicion.
//!
//! **Crash recovery.** Every released frame is journaled *before* it is
//! acknowledged and every round completion is journaled before the next
//! round's sends — so a restarted node can deterministically re-run
//! ingestion from its [`NetJournal`], rebuild protocol state and link
//! receive windows, and re-send the (regenerated) rounds its peers may
//! still be missing, under a bumped epoch that tells peers to reset.

use crate::journal::{JournalError, NetJournal, Record};
use crate::link::{Link, LinkConfig, LinkStats};
use crate::transport::Datagram;
use crate::wire::{decode_packet, SeqFrame};
use rbcast_grid::{NeighborTable, NodeId};
use rbcast_protocols::Msg;
use rbcast_sim::driver::{transmission_order, transmission_ranks, InstanceHost, InstanceId};
use rbcast_sim::{Process, Round, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Lockstep runtime parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Delivery rounds to run (rounds `1..=rounds`; round 0 is the
    /// spawn round). Every node in a cluster must agree.
    pub rounds: Round,
    /// Link-layer retransmission policy.
    pub link: LinkConfig,
    /// Ticks without progress (no frame released, no round completed)
    /// before the missing neighbors are suspected and the barrier
    /// proceeds degraded.
    pub patience: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            rounds: 32,
            link: LinkConfig::default(),
            patience: 50_000,
        }
    }
}

/// Runtime-level counters (link counters live in [`LinkStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Datagrams that failed wire decoding (corruption, truncation).
    pub wire_errors: u64,
    /// Datagrams whose header source is not a neighbor.
    pub unknown_src: u64,
    /// Frames delivered into round buffers.
    pub frames_ingested: u64,
    /// Frames dropped as stale (rounds already completed).
    pub stale_frames: u64,
    /// Deliveries addressed to an instance this node does not host.
    pub unknown_instance: u64,
    /// Rounds completed without a full mark set (degraded).
    pub forced_rounds: u64,
}

/// End-of-run summary for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Boot epoch of the reporting incarnation.
    pub epoch: u32,
    /// Rounds closed (including round 0).
    pub rounds_closed: Round,
    /// Per-instance decisions with the round each was made in.
    pub decisions: Vec<(InstanceId, Value, Round)>,
    /// Neighbors still suspected at the end.
    pub suspects: Vec<u32>,
    /// Runtime counters.
    pub stats: RuntimeStats,
    /// Link counters summed over all neighbors.
    pub link_totals: LinkStats,
}

impl NodeReport {
    /// True when the run stayed fully synchronous: no suspected peers
    /// and no force-completed rounds. A degraded (but live) node maps
    /// to the supervisor taxonomy's quarantine outcome instead.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.suspects.is_empty() && self.stats.forced_rounds == 0
    }
}

/// One node of the networked cluster. See the module docs for the
/// protocol; construction is via [`NodeRuntime::open`], which handles
/// both fresh starts and journal-driven resumption.
pub struct NodeRuntime {
    me: NodeId,
    epoch: u32,
    cfg: RuntimeConfig,
    rank_of: Vec<u32>,
    host: InstanceHost<Msg>,
    links: BTreeMap<u32, Link>,
    /// Un-consumed deliveries per round per sending neighbor, in link
    /// release (= sequence) order.
    buffers: BTreeMap<Round, BTreeMap<u32, Vec<(InstanceId, Msg)>>>,
    /// Barrier tokens per round.
    marks: BTreeMap<Round, BTreeSet<u32>>,
    /// Highest epoch ingested per neighbor (restart detection for the
    /// deterministic ingestion path, live and replay alike).
    peer_epochs: BTreeMap<u32, u32>,
    /// Broadcast payloads of the last two closed rounds, keyed by the
    /// round they are delivered in — exactly what a resumed node must
    /// re-send.
    recent_outs: VecDeque<(Round, Vec<(InstanceId, Msg)>)>,
    suspects: BTreeSet<u32>,
    transport: Box<dyn Datagram>,
    journal: Box<dyn NetJournal>,
    replaying: bool,
    tick: u64,
    last_progress: u64,
    /// Counters.
    pub stats: RuntimeStats,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("me", &self.me)
            .field("epoch", &self.epoch)
            .field("round", &self.host.round())
            .field("suspects", &self.suspects)
            .finish_non_exhaustive()
    }
}

impl NodeRuntime {
    /// Starts (or resumes) node `me`. When `journal` already holds
    /// records, the node replays them — rebuilding host state, link
    /// receive windows, and the outboxes peers may still be missing —
    /// and comes back under a bumped epoch; an empty journal is a fresh
    /// start at epoch 1.
    ///
    /// `instances` lists every broadcast instance of the run (the
    /// instance set is static configuration, known to all nodes before
    /// round 0 closes); `spawn` builds this node's process for each.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] when an existing journal is corrupt.
    pub fn open(
        arena: Arc<NeighborTable>,
        me: NodeId,
        instances: &[InstanceId],
        spawn: &mut dyn FnMut(InstanceId) -> Box<dyn Process<Msg>>,
        transport: Box<dyn Datagram>,
        mut journal: Box<dyn NetJournal>,
        cfg: RuntimeConfig,
    ) -> Result<Self, JournalError> {
        let prior = journal.records()?;
        let epoch = 1 + prior
            .iter()
            .filter_map(|r| match r {
                Record::Boot { epoch } => Some(*epoch),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        journal.append(&Record::Boot { epoch });

        let order = transmission_order(&arena);
        let rank_of = transmission_ranks(&order, arena.len());
        let mut host = InstanceHost::new(Arc::clone(&arena), me);
        for &inst in instances {
            host.spawn(inst, spawn(inst));
        }

        let mut rt = NodeRuntime {
            me,
            epoch,
            cfg,
            rank_of,
            host,
            links: BTreeMap::new(),
            buffers: BTreeMap::new(),
            marks: BTreeMap::new(),
            peer_epochs: BTreeMap::new(),
            recent_outs: VecDeque::new(),
            suspects: BTreeSet::new(),
            transport,
            journal,
            replaying: true,
            tick: 0,
            last_progress: 0,
            stats: RuntimeStats::default(),
        };

        // Deterministic re-ingestion: the journal records exactly the
        // frame sequence the previous incarnations processed, so
        // running the live ingestion logic over it reproduces their
        // state — including drops and epoch resets.
        let mut rx_state: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
        for record in &prior {
            match record {
                Record::Boot { .. } => {}
                Record::Frame {
                    peer,
                    peer_epoch,
                    seq,
                    frame,
                } => {
                    let entry = rx_state.entry(*peer).or_insert((*peer_epoch, 0));
                    if *peer_epoch > entry.0 {
                        *entry = (*peer_epoch, 0);
                    }
                    entry.1 = entry.1.max(seq + 1);
                    rt.ingest(*peer, *peer_epoch, *frame);
                }
                Record::Complete { .. } => rt.complete_round(),
            }
        }
        rt.replaying = false;

        // Links come up under the new epoch; receive windows resume
        // where the journal proves delivery (journal-before-ack: every
        // acked frame is journaled, so peers lose nothing).
        let neighbors: Vec<u32> = arena.neighbors(me).iter().map(|n| n.0).collect();
        for &peer in &neighbors {
            let mut link = Link::new(me.0, epoch, peer, cfg.link);
            if let Some(&(pe, count)) = rx_state.get(&peer) {
                link.restore_rx(pe, count);
            }
            rt.links.insert(peer, link);
        }

        if rt.host.round() == 0 {
            // Fresh start (or a crash before round 0 closed): close the
            // spawn round now, which queues round 1 on the links.
            rt.complete_round();
        } else {
            // Peers are provably within [R, R+1] of our last completed
            // round R, so re-sending the regenerated outboxes of those
            // two rounds (plus their barrier marks) under the new epoch
            // covers everything our lost unacked buffers owed them.
            let resend: Vec<_> = rt.recent_outs.iter().cloned().collect();
            for (round, frames) in resend {
                rt.queue_round(round, &frames);
            }
        }
        Ok(rt)
    }

    /// The node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// This incarnation's boot epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Rounds closed so far (including round 0).
    #[must_use]
    pub fn rounds_closed(&self) -> Round {
        self.host.round()
    }

    /// True once every configured round has closed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.host.round() > self.cfg.rounds
    }

    /// True once finished *and* every peer has acknowledged everything
    /// we sent — safe to exit without stranding a slower neighbor.
    #[must_use]
    pub fn quiesced(&self) -> bool {
        self.finished() && self.links.values().all(|l| l.in_flight() == 0)
    }

    /// Sends the given round's deliveries plus its barrier mark to
    /// every neighbor (rounds past the configured horizon are nobody's
    /// input and are skipped).
    fn queue_round(&mut self, round: Round, frames: &[(InstanceId, Msg)]) {
        if round == 0 || round > self.cfg.rounds {
            return;
        }
        for link in self.links.values_mut() {
            for &(instance, msg) in frames {
                link.send(SeqFrame::Data {
                    round,
                    instance,
                    msg,
                });
            }
            link.send(SeqFrame::Mark { round });
        }
    }

    /// Deterministic ingestion of one released frame — shared verbatim
    /// by the live path and journal replay, which is what makes replay
    /// faithful.
    fn ingest(&mut self, peer: u32, peer_epoch: u32, frame: SeqFrame) {
        let seen = self.peer_epochs.entry(peer).or_insert(peer_epoch);
        if peer_epoch > *seen {
            // The peer restarted: whatever it sent of un-completed
            // rounds under the old epoch will be re-sent in full under
            // the new one (its outboxes regenerate deterministically),
            // so partial old-epoch buffers must go.
            *seen = peer_epoch;
            for by_peer in self.buffers.values_mut() {
                by_peer.remove(&peer);
            }
            for marked in self.marks.values_mut() {
                marked.remove(&peer);
            }
        }
        // Any sign of life lifts suspicion; the patience clock re-arms.
        self.suspects.remove(&peer);
        let current = self.host.round();
        match frame {
            SeqFrame::Data {
                round,
                instance,
                msg,
            } => {
                if round < current || round > self.cfg.rounds {
                    self.stats.stale_frames += 1;
                    return;
                }
                self.stats.frames_ingested += 1;
                self.buffers
                    .entry(round)
                    .or_default()
                    .entry(peer)
                    .or_default()
                    .push((instance, msg));
            }
            SeqFrame::Mark { round } => {
                if round < current || round > self.cfg.rounds {
                    self.stats.stale_frames += 1;
                    return;
                }
                self.marks.entry(round).or_default().insert(peer);
            }
        }
    }

    /// Closes the currently collecting round: replays its buffered
    /// deliveries to the host in sim order (sender TDMA rank, FIFO per
    /// sender), runs the round-end callbacks, journals the completion,
    /// and queues the next round's broadcasts.
    fn complete_round(&mut self) {
        let k = self.host.round();
        if let Some(by_peer) = self.buffers.remove(&k) {
            let mut senders: Vec<u32> = by_peer.keys().copied().collect();
            senders.sort_by_key(|&p| self.rank_of[p as usize]);
            for peer in senders {
                let from = NodeId(peer);
                for (instance, msg) in &by_peer[&peer] {
                    if !self.host.deliver(*instance, from, msg) {
                        self.stats.unknown_instance += 1;
                    }
                }
            }
        }
        self.marks.remove(&k);
        let out = self.host.end_round();
        if !self.replaying {
            self.journal.append(&Record::Complete { round: k });
        }
        self.recent_outs.push_back((k + 1, out.clone()));
        if self.recent_outs.len() > 2 {
            self.recent_outs.pop_front();
        }
        if !self.replaying {
            self.queue_round(k + 1, &out);
        }
        self.last_progress = self.tick;
    }

    /// Neighbors whose round-`k` mark the barrier is still waiting on.
    fn missing_marks(&self, k: Round) -> Vec<u32> {
        let marked = self.marks.get(&k);
        self.links
            .keys()
            .filter(|p| !self.suspects.contains(p))
            .filter(|p| !marked.is_some_and(|m| m.contains(p)))
            .copied()
            .collect()
    }

    /// One cooperative scheduling step: drain the transport, advance
    /// the barrier, fire retransmissions. Returns [`Self::finished`].
    pub fn pump(&mut self) -> bool {
        self.tick += 1;
        self.transport.tick(self.tick);

        // Ingest everything the transport has.
        while let Some(bytes) = self.transport.poll() {
            let Ok(pkt) = decode_packet(&bytes) else {
                self.stats.wire_errors += 1;
                continue;
            };
            let Some(link) = self.links.get_mut(&pkt.src) else {
                self.stats.unknown_src += 1;
                continue;
            };
            let (_event, released) = link.on_packet(&pkt);
            if released.is_empty() {
                continue;
            }
            // Journal before ack: once these lines are durable the
            // frames can never be lost, so acknowledging is safe.
            // Only Seq packets release frames, and the link clears its
            // out-of-order buffer on an epoch bump, so every released
            // frame belongs to this packet's header epoch.
            let pe = pkt.epoch;
            for &(seq, frame) in &released {
                self.journal.append(&Record::Frame {
                    peer: pkt.src,
                    peer_epoch: pe,
                    seq,
                    frame,
                });
            }
            self.links
                .get_mut(&pkt.src)
                .expect("link existed a moment ago")
                .confirm_released();
            for (_seq, frame) in released {
                self.ingest(pkt.src, pe, frame);
            }
            self.last_progress = self.tick;
        }

        // Advance the barrier as far as the marks allow.
        while !self.finished() && self.missing_marks(self.host.round()).is_empty() {
            self.complete_round();
        }

        // Patience: a barrier stalled too long proceeds without the
        // silent peers (degraded, not wedged).
        if !self.finished() && self.tick.saturating_sub(self.last_progress) > self.cfg.patience {
            let missing = self.missing_marks(self.host.round());
            if !missing.is_empty() {
                self.suspects.extend(missing);
                self.stats.forced_rounds += 1;
            }
            self.last_progress = self.tick;
            while !self.finished() && self.missing_marks(self.host.round()).is_empty() {
                self.complete_round();
            }
        }

        // Fire acks and due retransmissions.
        let mut out = Vec::new();
        for link in self.links.values_mut() {
            out.clear();
            link.flush(self.tick, &mut out);
            let to = link.peer();
            for bytes in &out {
                self.transport.send(to, bytes);
            }
        }
        self.finished()
    }

    /// The end-of-run summary.
    #[must_use]
    pub fn report(&self) -> NodeReport {
        let mut link_totals = LinkStats::default();
        for l in self.links.values() {
            link_totals.sent += l.stats.sent;
            link_totals.retransmits += l.stats.retransmits;
            link_totals.dup_rx += l.stats.dup_rx;
            link_totals.stale_rx += l.stats.stale_rx;
            link_totals.acks_rx += l.stats.acks_rx;
        }
        NodeReport {
            node: self.me,
            epoch: self.epoch,
            rounds_closed: self.host.round(),
            decisions: self.host.decisions(),
            suspects: self.suspects.iter().copied().collect(),
            stats: self.stats,
            link_totals,
        }
    }
}
