//! Datagram transports: real UDP sockets and an in-process loopback.
//!
//! The runtime is transport-agnostic behind the [`Datagram`] trait —
//! the same [`crate::runtime::NodeRuntime`] drives a UDP cluster of OS
//! processes and a single-threaded loopback cluster used by the golden
//! parity tests. This module is the *only* place in the workspace that
//! touches raw sockets (enforced by the `raw-socket-io` audit rule):
//! everything above it deals in already-framed byte vectors.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::ErrorKind;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::rc::Rc;

/// An unreliable, unordered datagram service between nodes addressed by
/// their grid id. Implementations may drop, duplicate, and reorder —
/// the link layer recovers — but must not corrupt silently (the wire
/// checksum catches in-flight corruption anyway).
pub trait Datagram {
    /// Best-effort send of one datagram to node `to`.
    fn send(&mut self, to: u32, bytes: &[u8]);

    /// Next available datagram, if any (non-blocking).
    fn poll(&mut self) -> Option<Vec<u8>>;

    /// Advances transport-internal time (used by the chaos shim to
    /// release delayed datagrams). The default transport has no clock.
    fn tick(&mut self, _now: u64) {}
}

/// UDP transport for a local cluster: node `i` binds
/// `127.0.0.1:base_port + i` and addresses peers the same way.
///
/// The socket is non-blocking; [`Datagram::poll`] drains at most one
/// datagram per call so the runtime's pump loop stays fair. Datagram
/// source addresses are ignored — sender identity rides in the packet
/// header, mirroring the sim channel's authoritative sender ids (and
/// the chaos shim sits *above* this layer, so it cannot forge them).
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    base_port: u16,
    buf: Box<[u8; 2048]>,
}

impl UdpTransport {
    /// Binds node `me`'s socket on `127.0.0.1:base_port + me`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configure failures (port in use, etc.).
    pub fn bind(me: u32, base_port: u16) -> std::io::Result<Self> {
        let port = base_port
            .checked_add(u16::try_from(me).map_err(|_| {
                std::io::Error::new(ErrorKind::InvalidInput, "node id exceeds port space")
            })?)
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "port overflow"))?;
        let socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            socket,
            base_port,
            buf: Box::new([0u8; 2048]),
        })
    }

    fn addr_of(&self, to: u32) -> Option<SocketAddrV4> {
        let port = self.base_port.checked_add(u16::try_from(to).ok()?)?;
        Some(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }
}

impl Datagram for UdpTransport {
    fn send(&mut self, to: u32, bytes: &[u8]) {
        // Best effort by contract: a failed send is a lost datagram,
        // which the link layer's retransmission already covers.
        if let Some(addr) = self.addr_of(to) {
            let _ = self.socket.send_to(bytes, addr);
        }
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((n, _src)) => Some(self.buf[..n].to_vec()),
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            // Treat transient errors as silence; ARQ recovers.
            Err(_) => None,
        }
    }
}

/// Shared mailbox set for an in-process cluster: one FIFO of datagrams
/// per node id. Single-threaded by design (`Rc`, not `Arc`) — the
/// loopback cluster pumps its nodes round-robin on one thread, which
/// keeps parity tests deterministic without any thread scheduling.
#[derive(Debug, Default)]
pub struct LoopbackHub {
    queues: RefCell<BTreeMap<u32, VecDeque<Vec<u8>>>>,
}

impl LoopbackHub {
    /// A hub with no mailboxes yet (ports create theirs on attach).
    #[must_use]
    pub fn new() -> Rc<Self> {
        Rc::new(LoopbackHub::default())
    }

    /// Attaches node `me`, creating its mailbox.
    #[must_use]
    pub fn attach(self: &Rc<Self>, me: u32) -> LoopbackPort {
        self.queues.borrow_mut().entry(me).or_default();
        LoopbackPort {
            hub: Rc::clone(self),
            me,
        }
    }

    /// Total undelivered datagrams across all mailboxes.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queues.borrow().values().map(VecDeque::len).sum()
    }
}

/// One node's endpoint on a [`LoopbackHub`].
#[derive(Debug)]
pub struct LoopbackPort {
    hub: Rc<LoopbackHub>,
    me: u32,
}

impl Datagram for LoopbackPort {
    fn send(&mut self, to: u32, bytes: &[u8]) {
        // Sends to detached nodes vanish, like UDP to a dead port.
        if let Some(q) = self.hub.queues.borrow_mut().get_mut(&to) {
            q.push_back(bytes.to_vec());
        }
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        self.hub
            .queues
            .borrow_mut()
            .get_mut(&self.me)
            .and_then(VecDeque::pop_front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_fifo_between_ports() {
        let hub = LoopbackHub::new();
        let mut a = hub.attach(0);
        let mut b = hub.attach(1);
        a.send(1, b"one");
        a.send(1, b"two");
        assert_eq!(b.poll().as_deref(), Some(&b"one"[..]));
        assert_eq!(b.poll().as_deref(), Some(&b"two"[..]));
        assert_eq!(b.poll(), None);
        assert_eq!(a.poll(), None);
    }

    #[test]
    fn loopback_sends_to_unknown_nodes_vanish() {
        let hub = LoopbackHub::new();
        let mut a = hub.attach(0);
        a.send(99, b"void");
        assert_eq!(hub.in_flight(), 0);
    }

    #[test]
    fn udp_round_trips_a_datagram() {
        // Two transports on a private base port; packet header identity
        // is out of scope here — raw bytes only.
        let base = 46000;
        let mut a = match UdpTransport::bind(0, base) {
            Ok(t) => t,
            // Sandboxes without loopback sockets skip silently; the
            // cluster smoke in ci.sh exercises UDP end to end.
            Err(_) => return,
        };
        let mut b = match UdpTransport::bind(1, base) {
            Ok(t) => t,
            Err(_) => return,
        };
        a.send(1, b"ping");
        let mut got = None;
        for _ in 0..1000 {
            if let Some(bytes) = b.poll() {
                got = Some(bytes);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.as_deref(), Some(&b"ping"[..]));
        assert_eq!(a.poll(), None);
    }
}
