//! Hand-rolled wire format for the networked runtime.
//!
//! No serde, no external codecs — the container this repo builds in is
//! offline, and the format is small enough that an explicit byte layout
//! is both the simplest and the most auditable option. Layout (all
//! integers little-endian):
//!
//! ```text
//! 0..2    magic  "RB"
//! 2       version (1)
//! 3       kind    0 = ACK, 1 = SEQ
//! 4..8    src     sender node id
//! 8..12   epoch   sender's boot epoch (bumped on every restart)
//! 12..    body    kind-specific (below)
//! end-8.. checksum FNV-1a over every preceding byte
//! ```
//!
//! `ACK` body: `ack_epoch: u32` (the peer stream being acknowledged),
//! `cum: u64` (all sequence numbers `< cum` received *and journaled*).
//! `SEQ` body: `seq: u64` followed by one [`SeqFrame`].
//!
//! Decoding is total: every input either yields a packet or a
//! structured [`WireError`] — never a panic, never a mis-parse. The
//! trailing FNV-1a checksum makes single-bit corruption detectable
//! *provably*: each absorption step `h ← (h ⊕ byte) × prime` is
//! injective in `h` for fixed `byte` (odd prime), so two buffers
//! differing in exactly one byte can never collide. The wire proptests
//! pin both properties down.

use rbcast_grid::NodeId;
use rbcast_protocols::{ChainRepr, Msg, CHAIN_CAP};
use rbcast_sim::driver::InstanceId;
use rbcast_sim::Round;
use std::fmt;

/// Wire protocol version.
pub const VERSION: u8 = 1;
/// Magic prefix of every datagram.
pub const MAGIC: [u8; 2] = *b"RB";
/// Upper bound on an encoded datagram (header + largest frame +
/// checksum, with slack); anything longer is rejected before parsing.
pub const MAX_DATAGRAM: usize = 128;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over `bytes` — the datagram checksum.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structured decode failure. Every malformed input maps to exactly one
/// of these — the decoder has no panicking path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field being read requires.
    Truncated {
        /// Bytes the current field needs.
        need: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown packet kind byte.
    BadKind(u8),
    /// Unknown sequenced-frame tag byte.
    BadFrameTag(u8),
    /// Unknown message tag byte.
    BadMsgTag(u8),
    /// A boolean value byte that is neither 0 nor 1.
    BadValue(u8),
    /// A `HEARD` relay count exceeding [`CHAIN_CAP`].
    ChainTooLong(u8),
    /// Checksum mismatch (corruption).
    BadChecksum {
        /// Checksum recomputed over the received bytes.
        expect: u64,
        /// Checksum carried by the datagram.
        got: u64,
    },
    /// More than [`MAX_DATAGRAM`] bytes.
    Oversized(usize),
    /// Well-formed prefix followed by garbage bytes.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(
                    f,
                    "truncated datagram: field needs {need} bytes, {got} left"
                )
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            WireError::BadFrameTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::BadMsgTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadValue(v) => write!(f, "boolean byte out of range: {v}"),
            WireError::ChainTooLong(n) => write!(f, "relay chain of {n} exceeds CHAIN_CAP"),
            WireError::BadChecksum { expect, got } => {
                write!(
                    f,
                    "checksum mismatch: computed {expect:#x}, carried {got:#x}"
                )
            }
            WireError::Oversized(n) => write!(f, "datagram of {n} bytes exceeds MAX_DATAGRAM"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after a complete packet"),
        }
    }
}

impl std::error::Error for WireError {}

/// One sequenced frame — the reliable, in-order payloads of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqFrame {
    /// A protocol broadcast delivered in round `round` of `instance`.
    Data {
        /// The round this message is to be delivered in.
        round: Round,
        /// The broadcast instance it belongs to.
        instance: InstanceId,
        /// The protocol payload.
        msg: Msg,
    },
    /// Round barrier marker: "all my `Data` for `round` precede this".
    Mark {
        /// The round being closed by the sender.
        round: Round,
    },
}

/// A decoded datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Sender node id (authoritative: the runtime, like the paper's
    /// channel model, assumes link identities cannot be forged; the
    /// chaos shim corrupts packets, it does not impersonate).
    pub src: u32,
    /// Sender's boot epoch.
    pub epoch: u32,
    /// Payload.
    pub kind: PacketKind,
}

/// The two datagram kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Cumulative acknowledgement of a peer's sequenced stream.
    Ack {
        /// The peer epoch whose stream is acknowledged.
        ack_epoch: u32,
        /// Every `seq < cum` has been received and journaled.
        cum: u64,
    },
    /// One sequenced frame.
    Seq {
        /// Position in the sender's per-link FIFO stream.
        seq: u64,
        /// The frame.
        frame: SeqFrame,
    },
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

// The relay count of a Heard chain rides a single wire byte. The chain
// capacity is a protocol-layer constant; if it ever outgrew a u8, the
// `relays.len() as u8` below would silently truncate the count and the
// decoder would mis-frame every following byte. Make that a build
// error instead.
const _: () = assert!(
    CHAIN_CAP <= u8::MAX as usize,
    "relay chains must fit the one-byte wire count"
);

/// Appends the encoding of `msg` to `out`.
fn encode_msg(out: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Source(v) => {
            out.push(0);
            out.push(u8::from(*v));
        }
        Msg::Committed(v) => {
            out.push(1);
            out.push(u8::from(*v));
        }
        Msg::Heard(chain) => {
            out.push(2);
            out.push(u8::from(chain.value()));
            put_u32(out, chain.committer().0);
            let relays = chain.relays();
            // Lossless: relays.len() ≤ CHAIN_CAP ≤ u8::MAX (const
            // assert above).
            out.push(relays.len() as u8);
            for r in relays {
                put_u32(out, r.0);
            }
        }
    }
}

/// Appends the encoding of `frame` to `out`.
pub fn encode_frame(out: &mut Vec<u8>, frame: &SeqFrame) {
    match frame {
        SeqFrame::Data {
            round,
            instance,
            msg,
        } => {
            out.push(0);
            put_u32(out, *round);
            put_u32(out, instance.origin.0);
            put_u32(out, instance.seq);
            encode_msg(out, msg);
        }
        SeqFrame::Mark { round } => {
            out.push(1);
            put_u32(out, *round);
        }
    }
}

/// Encodes a full datagram (header + body + checksum).
#[must_use]
pub fn encode_packet(pkt: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAX_DATAGRAM);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    match &pkt.kind {
        PacketKind::Ack { .. } => out.push(0),
        PacketKind::Seq { .. } => out.push(1),
    }
    put_u32(&mut out, pkt.src);
    put_u32(&mut out, pkt.epoch);
    match &pkt.kind {
        PacketKind::Ack { ack_epoch, cum } => {
            put_u32(&mut out, *ack_epoch);
            put_u64(&mut out, *cum);
        }
        PacketKind::Seq { seq, frame } => {
            put_u64(&mut out, *seq);
            encode_frame(&mut out, frame);
        }
    }
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    debug_assert!(
        out.len() <= MAX_DATAGRAM,
        "encoded packet exceeds MAX_DATAGRAM"
    );
    out
}

/// Checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadValue(v)),
        }
    }
}

fn decode_msg(c: &mut Cursor<'_>) -> Result<Msg, WireError> {
    match c.u8()? {
        0 => Ok(Msg::Source(c.bool()?)),
        1 => Ok(Msg::Committed(c.bool()?)),
        2 => {
            let value = c.bool()?;
            let committer = NodeId(c.u32()?);
            let n = c.u8()?;
            if usize::from(n) > CHAIN_CAP {
                return Err(WireError::ChainTooLong(n));
            }
            let mut relays = [NodeId(0); CHAIN_CAP];
            for slot in relays.iter_mut().take(usize::from(n)) {
                *slot = NodeId(c.u32()?);
            }
            let chain = ChainRepr::try_new(committer, value, &relays[..usize::from(n)])
                .expect("relay count was bounds-checked against CHAIN_CAP");
            Ok(Msg::Heard(chain))
        }
        t => Err(WireError::BadMsgTag(t)),
    }
}

fn decode_frame_at(c: &mut Cursor<'_>) -> Result<SeqFrame, WireError> {
    match c.u8()? {
        0 => {
            let round = c.u32()?;
            let origin = NodeId(c.u32()?);
            let iseq = c.u32()?;
            let msg = decode_msg(c)?;
            Ok(SeqFrame::Data {
                round,
                instance: InstanceId { origin, seq: iseq },
                msg,
            })
        }
        1 => Ok(SeqFrame::Mark { round: c.u32()? }),
        t => Err(WireError::BadFrameTag(t)),
    }
}

/// Decodes one standalone frame (the journal's `body` field). The whole
/// input must be consumed.
pub fn decode_frame(bytes: &[u8]) -> Result<SeqFrame, WireError> {
    let mut c = Cursor::new(bytes);
    let frame = decode_frame_at(&mut c)?;
    if c.remaining() != 0 {
        return Err(WireError::Trailing(c.remaining()));
    }
    Ok(frame)
}

/// Decodes a full datagram, verifying magic, version, structure, and
/// checksum. Total: every input yields `Ok` or a [`WireError`].
pub fn decode_packet(bytes: &[u8]) -> Result<Packet, WireError> {
    if bytes.len() > MAX_DATAGRAM {
        return Err(WireError::Oversized(bytes.len()));
    }
    // The checksum is validated first (over everything before it), so a
    // flipped bit surfaces as BadChecksum even when it would also break
    // a structural field.
    if bytes.len() < MAGIC.len() + 2 + 8 + 8 {
        return Err(WireError::Truncated {
            need: MAGIC.len() + 2 + 8 + 8,
            got: bytes.len(),
        });
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let carried = u64::from_le_bytes(
        <[u8; 8]>::try_from(sum_bytes).expect("split_at(len - 8) yields exactly 8 bytes"),
    );
    let computed = checksum(body);
    if carried != computed {
        return Err(WireError::BadChecksum {
            expect: computed,
            got: carried,
        });
    }
    let mut c = Cursor::new(body);
    let magic = c.take(2)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic([magic[0], magic[1]]));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = c.u8()?;
    let src = c.u32()?;
    let epoch = c.u32()?;
    let kind = match kind {
        0 => PacketKind::Ack {
            ack_epoch: c.u32()?,
            cum: c.u64()?,
        },
        1 => PacketKind::Seq {
            seq: c.u64()?,
            frame: decode_frame_at(&mut c)?,
        },
        k => return Err(WireError::BadKind(k)),
    };
    if c.remaining() != 0 {
        return Err(WireError::Trailing(c.remaining()));
    }
    Ok(Packet { src, epoch, kind })
}

/// Hex encoding of a frame body (journal representation).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Option<Vec<u8>> = s
        .chars()
        .map(|ch| ch.to_digit(16).map(|d| d as u8))
        .collect();
    let digits = digits?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        let inst = InstanceId {
            origin: NodeId(3),
            seq: 7,
        };
        vec![
            Packet {
                src: 4,
                epoch: 1,
                kind: PacketKind::Ack {
                    ack_epoch: 2,
                    cum: 99,
                },
            },
            Packet {
                src: 0,
                epoch: 3,
                kind: PacketKind::Seq {
                    seq: 12,
                    frame: SeqFrame::Mark { round: 5 },
                },
            },
            Packet {
                src: 8,
                epoch: 1,
                kind: PacketKind::Seq {
                    seq: 0,
                    frame: SeqFrame::Data {
                        round: 2,
                        instance: inst,
                        msg: Msg::Source(true),
                    },
                },
            },
            Packet {
                src: 8,
                epoch: 1,
                kind: PacketKind::Seq {
                    seq: 1,
                    frame: SeqFrame::Data {
                        round: 3,
                        instance: inst,
                        msg: Msg::heard(NodeId(9), false, &[NodeId(1), NodeId(2), NodeId(4)]),
                    },
                },
            },
        ]
    }

    #[test]
    fn round_trips() {
        for pkt in sample_packets() {
            let bytes = encode_packet(&pkt);
            assert!(bytes.len() <= MAX_DATAGRAM);
            assert_eq!(decode_packet(&bytes), Ok(pkt), "{pkt:?}");
        }
    }

    #[test]
    fn truncations_error_cleanly() {
        for pkt in sample_packets() {
            let bytes = encode_packet(&pkt);
            for cut in 0..bytes.len() {
                let err = decode_packet(&bytes[..cut]);
                assert!(err.is_err(), "prefix of {cut} bytes decoded: {err:?}");
            }
        }
    }

    #[test]
    fn single_bit_flips_never_decode() {
        for pkt in sample_packets() {
            let bytes = encode_packet(&pkt);
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[i] ^= 1 << bit;
                    assert!(
                        decode_packet(&bad).is_err(),
                        "bit {bit} of byte {i} survived in {pkt:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // A valid packet with appended garbage re-checksums differently,
        // so corruption of *length* is caught too.
        let mut bytes = encode_packet(&sample_packets()[0]);
        bytes.push(0);
        assert!(decode_packet(&bytes).is_err());
    }

    #[test]
    fn oversized_input_is_rejected_before_parsing() {
        let huge = vec![0u8; MAX_DATAGRAM + 1];
        assert_eq!(
            decode_packet(&huge),
            Err(WireError::Oversized(MAX_DATAGRAM + 1))
        );
    }

    #[test]
    fn hex_round_trips() {
        let mut body = Vec::new();
        encode_frame(&mut body, &SeqFrame::Mark { round: 9 });
        let hex = to_hex(&body);
        assert_eq!(from_hex(&hex).as_deref(), Some(body.as_slice()));
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn errors_display_usefully() {
        let e = WireError::BadChecksum { expect: 1, got: 2 };
        assert!(e.to_string().contains("checksum"));
    }
}
