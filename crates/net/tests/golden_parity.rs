//! Golden parity: the networked runtime over in-process loopback must
//! produce decisions — values *and* decision rounds — byte-identical
//! (by commit digest) to the verified simulator running the same
//! configuration, for the paper's protocols at 1, 2, and 8 concurrent
//! broadcast instances.

use rbcast_grid::Metric;
use rbcast_net::{ClusterSpec, LoopbackCluster, NetProtocol, NodeReport, RuntimeConfig};

fn spec(protocol: NetProtocol, instances: u32) -> ClusterSpec {
    ClusterSpec {
        width: 5,
        height: 5,
        radius: 1,
        metric: Metric::Linf,
        protocol,
        t: 1,
        instances,
        rounds: 24,
    }
}

fn assert_parity(spec: ClusterSpec) {
    let oracle = spec.sim_oracle();
    assert!(
        !oracle.decisions.is_empty(),
        "oracle must decide something for {spec:?}"
    );
    let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), None);
    assert!(cluster.run(200_000), "cluster wedged for {spec:?}");
    let report = cluster.report();
    assert!(
        report.nodes.iter().all(NodeReport::healthy),
        "no node may degrade on a reliable transport: {spec:?}"
    );
    // Exact decision-set equality, then the digest both sides publish.
    let mut got = report.decisions.clone();
    let mut want = oracle.decisions.clone();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "decision sets diverge for {spec:?}");
    assert_eq!(report.digest, oracle.digest, "digests diverge for {spec:?}");
}

#[test]
fn indirect_full_matches_oracle_across_instance_counts() {
    for instances in [1, 2, 8] {
        assert_parity(spec(NetProtocol::IndirectFull, instances));
    }
}

#[test]
fn indirect_simplified_matches_oracle() {
    assert_parity(spec(NetProtocol::IndirectSimplified, 2));
}

#[test]
fn cpa_matches_oracle_across_instance_counts() {
    for instances in [1, 2, 8] {
        assert_parity(spec(NetProtocol::Cpa, instances));
    }
}

#[test]
fn parity_holds_on_the_wrapping_3x3_torus() {
    // The smoke-test topology: 3×3 at r = 1 only hosts via the
    // wrapping neighbor builder (every node hears all eight others).
    let spec = ClusterSpec {
        width: 3,
        height: 3,
        radius: 1,
        metric: Metric::Linf,
        protocol: NetProtocol::Cpa,
        t: 1,
        instances: 4,
        rounds: 16,
    };
    assert_parity(spec);
}
