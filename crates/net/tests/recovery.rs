//! Crash-restart recovery: a node killed mid-run and restarted from its
//! journal must re-join the lockstep barrier and the cluster must still
//! commit exactly what the sim oracle commits — under a reliable
//! transport and under seeded chaos.

use rbcast_grid::Metric;
use rbcast_net::{
    ChaosConfig, ClusterSpec, LoopbackCluster, NetProtocol, NodeReport, RuntimeConfig,
};

fn spec(protocol: NetProtocol) -> ClusterSpec {
    ClusterSpec {
        width: 3,
        height: 3,
        radius: 1,
        metric: Metric::Linf,
        protocol,
        t: 1,
        instances: 4,
        rounds: 16,
    }
}

/// Kill `victim` after `kill_after` cluster steps, restart it
/// `outage` steps later, then run to completion and compare digests.
fn kill_restart_run(
    spec: ClusterSpec,
    chaos: Option<ChaosConfig>,
    victim: u32,
    kill_after: u64,
    outage: u64,
) {
    let oracle = spec.sim_oracle();
    let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), chaos);
    for _ in 0..kill_after {
        if cluster.step() {
            break;
        }
    }
    cluster.kill(victim);
    for _ in 0..outage {
        cluster.step();
    }
    assert!(cluster.restart(victim), "intact journal must boot");
    assert!(cluster.run(400_000), "cluster wedged after restart");
    let report = cluster.report();
    assert!(
        report.nodes.iter().all(NodeReport::healthy),
        "patience outlasts the outage, so nobody should be suspected"
    );
    let restarted = report
        .nodes
        .iter()
        .find(|n| n.node.0 == victim)
        .expect("victim reports");
    assert!(
        restarted.epoch >= 2,
        "restart must bump the boot epoch (got {})",
        restarted.epoch
    );
    assert_eq!(
        report.digest, oracle.digest,
        "recovery must reproduce the oracle's commits exactly"
    );
}

#[test]
fn cpa_survives_kill_and_restart() {
    kill_restart_run(spec(NetProtocol::Cpa), None, 4, 6, 40);
}

#[test]
fn indirect_survives_kill_and_restart() {
    kill_restart_run(spec(NetProtocol::IndirectFull), None, 0, 9, 25);
}

#[test]
fn recovery_composes_with_seeded_chaos() {
    // Burst loss + duplication + reordering on every link, plus a
    // mid-run crash: the ARQ links and the journal must still deliver
    // oracle-exact commits (chaos perturbs timing, never outcomes).
    kill_restart_run(
        spec(NetProtocol::Cpa),
        Some(ChaosConfig::smoke(0xC0FFEE)),
        7,
        12,
        30,
    );
}

#[test]
fn double_restart_of_the_same_node_recovers() {
    let spec = spec(NetProtocol::Cpa);
    let oracle = spec.sim_oracle();
    let mut cluster = LoopbackCluster::new(spec, RuntimeConfig::default(), None);
    for kill in 0..2 {
        for _ in 0..(5 + kill * 7) {
            if cluster.step() {
                break;
            }
        }
        cluster.kill(2);
        for _ in 0..15 {
            cluster.step();
        }
        assert!(cluster.restart(2), "intact journal must boot");
    }
    assert!(cluster.run(400_000));
    let report = cluster.report();
    let twice = report
        .nodes
        .iter()
        .find(|n| n.node.0 == 2)
        .expect("node 2 reports");
    assert_eq!(twice.epoch, 3, "two restarts = epoch 3");
    assert_eq!(report.digest, oracle.digest);
}

#[test]
fn unrecovered_crash_degrades_but_does_not_wedge() {
    // A node that never comes back: with finite patience the survivors
    // suspect it, quarantine the barrier slot, and still finish.
    let spec = spec(NetProtocol::Cpa);
    let cfg = RuntimeConfig {
        patience: 400,
        ..RuntimeConfig::default()
    };
    let mut cluster = LoopbackCluster::new(spec, cfg, None);
    for _ in 0..6 {
        cluster.step();
    }
    cluster.kill(8);
    assert!(
        cluster.run(400_000),
        "survivors must finish without the dead node"
    );
    let report = cluster.report();
    assert_eq!(report.nodes.len(), 8, "the dead node does not report");
    let degraded = report
        .nodes
        .iter()
        .filter(|n| n.suspects.contains(&8))
        .count();
    assert!(
        degraded > 0,
        "neighbors of the dead node must quarantine it"
    );
}
