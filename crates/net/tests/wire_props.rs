//! Property tests for the wire format: round-trip fidelity, and total
//! decoding — arbitrary, truncated, or bit-flipped datagrams must
//! produce a structured error, never a panic and never a mis-parse.

use proptest::prelude::*;
use rbcast_grid::NodeId;
use rbcast_net::wire::{decode_frame, encode_frame, WireError};
use rbcast_net::wire::{decode_packet, encode_packet, Packet, PacketKind, SeqFrame, MAX_DATAGRAM};
use rbcast_protocols::{ChainRepr, Msg, CHAIN_CAP};
use rbcast_sim::driver::InstanceId;

/// Deterministically expands a compact tuple of generator inputs into a
/// packet — cheaper for the vendored proptest than a recursive
/// strategy, and covers every constructor arm.
fn build_packet(
    shape: u8,
    src: u32,
    epoch: u32,
    a: u64,
    b: u32,
    c: u32,
    value: bool,
    relays: u8,
) -> Packet {
    let instance = InstanceId {
        origin: NodeId(b),
        seq: c,
    };
    let n = usize::from(relays) % (CHAIN_CAP + 1);
    let relay_ids: Vec<NodeId> = (0..n).map(|i| NodeId(b.wrapping_add(i as u32))).collect();
    let msg = match shape % 3 {
        0 => Msg::Source(value),
        1 => Msg::Committed(value),
        _ => Msg::Heard(
            ChainRepr::try_new(NodeId(c), value, &relay_ids)
                .expect("relay count bounded by CHAIN_CAP"),
        ),
    };
    let kind = match shape % 4 {
        0 => PacketKind::Ack {
            ack_epoch: b,
            cum: a,
        },
        1 => PacketKind::Seq {
            seq: a,
            frame: SeqFrame::Mark { round: b },
        },
        _ => PacketKind::Seq {
            seq: a,
            frame: SeqFrame::Data {
                round: b % 10_000,
                instance,
                msg,
            },
        },
    };
    Packet { src, epoch, kind }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encoding then decoding is the identity, and stays within the
    /// datagram bound.
    #[test]
    fn round_trip(
        shape in 0u8..12, src in 0u32..u32::MAX, epoch in 0u32..u32::MAX,
        a in 0u64..u64::MAX, b in 0u32..u32::MAX, c in 0u32..u32::MAX,
        value in 0u8..2, relays in 0u8..8,
    ) {
        let pkt = build_packet(shape, src, epoch, a, b, c, value == 1, relays);
        let bytes = encode_packet(&pkt);
        prop_assert!(bytes.len() <= MAX_DATAGRAM);
        prop_assert_eq!(decode_packet(&bytes), Ok(pkt));
    }

    /// Every strict prefix of a valid datagram fails cleanly.
    #[test]
    fn truncation_is_an_error(
        shape in 0u8..12, a in 0u64..u64::MAX, b in 0u32..u32::MAX,
        cut_frac in 0u32..1000,
    ) {
        let pkt = build_packet(shape, 7, 1, a, b, b, true, 3);
        let bytes = encode_packet(&pkt);
        let cut = (cut_frac as usize * bytes.len()) / 1000; // 0..len-1
        prop_assert!(decode_packet(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }

    /// Any single flipped bit is detected (the FNV-1a absorption step is
    /// injective per byte, so this is exhaustive certainty, sampled).
    #[test]
    fn bit_flip_is_an_error(
        shape in 0u8..12, a in 0u64..u64::MAX, b in 0u32..u32::MAX,
        byte_frac in 0u32..1000, bit in 0u8..8,
    ) {
        let pkt = build_packet(shape, 3, 2, a, b, b, false, 2);
        let mut bytes = encode_packet(&pkt);
        let i = ((byte_frac as usize * bytes.len()) / 1000).min(bytes.len() - 1);
        bytes[i] ^= 1 << bit;
        prop_assert!(decode_packet(&bytes).is_err());
    }

    /// Arbitrary byte soup never panics and never mis-parses into a
    /// valid packet (the 64-bit checksum makes accidental validity
    /// vanishingly unlikely; the magic check rejects the rest).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        if let Ok(pkt) = decode_packet(&bytes) {
            // If it decoded, it must re-encode to the same datagram
            // (i.e., only genuine encodings are accepted).
            prop_assert_eq!(encode_packet(&pkt), bytes);
        }
    }

    /// The standalone frame codec (journal bodies) is total too.
    #[test]
    fn arbitrary_frame_bodies_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        if let Ok(frame) = decode_frame(&bytes) {
            let mut out = Vec::new();
            encode_frame(&mut out, &frame);
            prop_assert_eq!(out, bytes);
        }
    }

    /// Regression for the relay-count wire byte: a chain at exactly
    /// CHAIN_CAP relays — the count the one-byte field must represent
    /// losslessly (enforced at compile time in the codec) — round-trips
    /// through both the packet and the frame codec.
    #[test]
    fn max_relay_chain_round_trips(
        src in 0u32..u32::MAX, a in 0u64..u64::MAX, b in 0u32..u32::MAX, value in 0u8..2,
    ) {
        let relay_ids: Vec<NodeId> = (0..CHAIN_CAP).map(|i| NodeId(b.wrapping_add(i as u32))).collect();
        let chain = ChainRepr::try_new(NodeId(b), value == 1, &relay_ids)
            .expect("CHAIN_CAP relays fit");
        let frame = SeqFrame::Data {
            round: b % 10_000,
            instance: InstanceId { origin: NodeId(b), seq: src },
            msg: Msg::Heard(chain),
        };
        let pkt = Packet { src, epoch: 1, kind: PacketKind::Seq { seq: a, frame } };
        let bytes = encode_packet(&pkt);
        prop_assert_eq!(decode_packet(&bytes), Ok(pkt));
    }

    /// Regression for the decode side of the same byte: a hand-built
    /// frame body claiming more than CHAIN_CAP relays is rejected as
    /// ChainTooLong — never accepted, never mis-framed into a shorter
    /// chain by count truncation.
    #[test]
    fn oversized_relay_count_is_rejected(
        n in (CHAIN_CAP as u8 + 1)..=u8::MAX, round in 0u32..10_000,
    ) {
        // SeqFrame::Data { round, instance, Msg::Heard { .. } }, relay
        // count forged to n.
        let mut body = Vec::new();
        body.push(0); // Data
        body.extend_from_slice(&round.to_le_bytes());
        body.extend_from_slice(&7u32.to_le_bytes()); // origin
        body.extend_from_slice(&3u32.to_le_bytes()); // seq
        body.push(2); // Heard
        body.push(1); // value = true
        body.extend_from_slice(&9u32.to_le_bytes()); // committer
        body.push(n);
        for i in 0..u32::from(n) {
            body.extend_from_slice(&i.to_le_bytes());
        }
        prop_assert_eq!(decode_frame(&body), Err(WireError::ChainTooLong(n)));
    }
}
