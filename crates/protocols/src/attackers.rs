//! Byzantine node behaviours.
//!
//! Faithful to the model of §II/§V: a Byzantine node may send arbitrary
//! *content*, but it cannot spoof its identity (every transmission is
//! attributed to it), cannot send different bits to different neighbors
//! in one broadcast, and cannot cause collisions. These constraints shape
//! the attacks:
//!
//! * [`silent`] — contributes nothing (subsumes crash behaviour for the
//!   Byzantine budget).
//! * [`liar`] — behaves like a committer of the wrong value and corrupts
//!   every report chain it relays.
//! * [`forger`] — additionally fabricates `HEARD` chains attributing the
//!   wrong value to every nearby node, with invented deep relays. Because
//!   it must affix its own (true) identifier as the last relay, all of
//!   one forger's fabrications share that relay and count at most once in
//!   any disjoint-evidence set — the structural reason `t` forgers cannot
//!   defeat the `t+1` disjoint-chain rule.

use crate::chain::ChainRepr;
use crate::Msg;
use rbcast_grid::NodeId;
use rbcast_sim::{Ctx, Process, Value};
use std::collections::BTreeSet;

/// A node that exploits the §X *spoofing* relaxation: it announces the
/// wrong value impersonating every honest neighbor in turn. Against a
/// channel with spoofing enabled this forges an apparently independent
/// quorum of committers; against the baseline channel the forged
/// identities are corrected back and the attack collapses to a liar's.
#[must_use]
pub fn spoofer(wrong: Value) -> Box<dyn Process<Msg>> {
    Box::new(Spoofer { wrong })
}

struct Spoofer {
    wrong: Value,
}

impl Process<Msg> for Spoofer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // impersonate every neighbor announcing the wrong value (the
        // arena slice matches `torus.neighborhood` order exactly)
        let neighbors = ctx.neighbors();
        for &n in neighbors {
            ctx.broadcast_as(n, Msg::Committed(self.wrong));
        }
        ctx.broadcast(Msg::Committed(self.wrong));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}

    // Fires everything in `on_start`; no round-end behaviour.
    fn needs_round_end(&self) -> bool {
        false
    }
}

/// A node that never transmits anything.
#[must_use]
pub fn silent() -> Box<dyn Process<Msg>> {
    Box::new(Silent)
}

struct Silent;

impl Process<Msg> for Silent {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}

    // Does nothing, ever — certainly not at round end.
    fn needs_round_end(&self) -> bool {
        false
    }
}

/// A node that announces having committed to `wrong` and relays every
/// report chain with the value flipped to `wrong`.
#[must_use]
pub fn liar(wrong: Value) -> Box<dyn Process<Msg>> {
    Box::new(Liar {
        wrong,
        announced: false,
        relayed: BTreeSet::new(),
    })
}

struct Liar {
    wrong: Value,
    announced: bool,
    /// Chains already corrupted, keyed on the repacked (committer,
    /// relays) pair — the value is always `wrong`, so it carries no
    /// extra information; `Copy` keys mean dedup allocates nothing.
    relayed: BTreeSet<ChainRepr>,
}

impl Process<Msg> for Liar {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Announce immediately: a liar wants its vote in early.
        self.announced = true;
        ctx.broadcast(Msg::Committed(self.wrong));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        match msg {
            Msg::Source(_) | Msg::Committed(_) => {
                // Relay a corrupted report: claim `from` committed wrong.
                let lie = ChainRepr::direct(from, self.wrong);
                if self.relayed.insert(lie) {
                    ctx.broadcast(Msg::Heard(lie.extended(ctx.id())));
                }
            }
            Msg::Heard(chain) => {
                // Forward the chain with the value flipped (the liar must
                // still affix its true identifier).
                let committer = chain.committer();
                if chain.len() < 3 && !chain.contains_relay(ctx.id()) && committer != ctx.id() {
                    let lie = ChainRepr::new(committer, self.wrong, chain.relays());
                    if self.relayed.insert(lie) {
                        ctx.broadcast(Msg::Heard(lie.extended(ctx.id())));
                    }
                }
            }
        }
    }

    // All lying happens in `on_start`/`on_message`; no round-end logic.
    fn needs_round_end(&self) -> bool {
        false
    }
}

/// A node that floods fabricated evidence for `wrong`: claims every node
/// within two hops committed it, inventing one-deep and two-deep relay
/// chains through every neighbor.
#[must_use]
pub fn forger(wrong: Value) -> Box<dyn Process<Msg>> {
    Box::new(Forger {
        wrong,
        fired: false,
    })
}

struct Forger {
    wrong: Value,
    fired: bool,
}

impl Process<Msg> for Forger {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.fired = true;
        let me = ctx.id();
        ctx.broadcast(Msg::Committed(self.wrong));
        // Fabricate: every neighbor "committed" wrong (observed by us).
        // The arena slice matches `torus.neighborhood` order exactly.
        let neighbors = ctx.neighbors();
        for &n in neighbors {
            ctx.broadcast(Msg::Heard(ChainRepr::direct(n, self.wrong).extended(me)));
        }
        // Deep fabrications: invent a relay between a committer and us.
        // (Bounded to keep the message volume proportional to a node's
        // honest traffic.)
        for (i, &c) in neighbors.iter().enumerate() {
            let relay = neighbors[(i + 1) % neighbors.len()];
            if relay != c {
                ctx.broadcast(Msg::Heard(
                    ChainRepr::direct(c, self.wrong)
                        .extended(relay)
                        .extended(me),
                ));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        // Also corrupt genuine chains passing by, like the liar.
        if let Msg::Heard(chain) = msg {
            let committer = chain.committer();
            if chain.len() < 3 && !chain.contains_relay(ctx.id()) && committer != ctx.id() {
                ctx.broadcast(Msg::Heard(
                    ChainRepr::new(committer, self.wrong, chain.relays()).extended(ctx.id()),
                ));
            }
        }
        let _ = from;
    }

    // Forges on start and on delivery only; no round-end behaviour.
    fn needs_round_end(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::{Coord, Metric, Torus};
    use rbcast_sim::Network;

    #[test]
    fn silent_node_sends_nothing() {
        let torus = Torus::for_radius(1);
        let mut net = Network::new(torus, 1, Metric::Linf, |_| silent());
        let stats = net.run(10);
        assert_eq!(stats.messages_sent, 0);
        assert!(stats.quiescent());
    }

    #[test]
    fn liar_announces_immediately() {
        let torus = Torus::for_radius(1);
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |id| {
            if id == torus.id(Coord::ORIGIN) {
                liar(false)
            } else {
                silent()
            }
        });
        let stats = net.run(10);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn forger_floods_fabrications() {
        let torus = Torus::for_radius(1);
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |id| {
            if id == torus.id(Coord::ORIGIN) {
                forger(true)
            } else {
                silent()
            }
        });
        let stats = net.run(10);
        // 1 COMMITTED + 8 shallow + 8 deep fabrications
        assert_eq!(stats.messages_sent, 17);
    }

    #[test]
    fn liar_corrupts_relayed_chains_with_its_own_id() {
        // A liar relaying a chain must appear as the last relay — honest
        // receivers can therefore discount anything passing through it
        // once identified; structurally, all its chains share it.
        let torus = Torus::for_radius(1);
        let origin = torus.id(Coord::ORIGIN);
        let lid = torus.id(Coord::new(1, 0));
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |id| {
            if id == origin {
                // an honest-ish committer: just announce true once
                struct Announcer;
                impl Process<Msg> for Announcer {
                    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                        ctx.broadcast(Msg::Committed(true));
                    }
                    fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: &Msg) {}
                }
                Box::new(Announcer)
            } else if id == lid {
                liar(false)
            } else {
                silent()
            }
        });
        let stats = net.run(10);
        // announcer's COMMITTED + liar's initial COMMITTED + liar's
        // corrupted relay of the announcement
        assert_eq!(stats.messages_sent, 3);
    }
}
