//! Packed relay-chain representation for `HEARD` reports.
//!
//! §VI chains are bounded — at most `max_relays ≤ 3` affixed relays,
//! all within an O(r)-radius ball of the committer — so the wire form
//! inlines committer + relays + value into a fixed array instead of a
//! heap `Vec<NodeId>`. The repr is `Copy`: re-broadcasting a chain and
//! keying dedup sets on it allocate nothing.

use rbcast_grid::NodeId;
use rbcast_sim::Value;

/// Inline relay capacity of a [`ChainRepr`].
///
/// Honest nodes affix at most `max_relays ≤ 3` relays; the extra slot
/// leaves headroom for adversarial over-length reports, which receivers
/// must observe (and drop) rather than fail to parse.
pub const CHAIN_CAP: usize = 4;

/// A packed `HEARD(k_m, …, k_1, i, v)` report: committer `i`, value
/// `v`, and up to [`CHAIN_CAP`] relays committer-side first.
///
/// Unused relay slots are zero-filled in the constructor, so derived
/// `Eq`/`Ord`/`Hash` see a canonical form: two chains compare equal iff
/// their committer, value, and *live* relay prefixes match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainRepr {
    committer: NodeId,
    value: Value,
    len: u8,
    relays: [NodeId; CHAIN_CAP],
}

impl ChainRepr {
    /// Packs a chain.
    ///
    /// # Panics
    ///
    /// Panics if `relays` exceeds [`CHAIN_CAP`]; use
    /// [`ChainRepr::try_new`] for untrusted lengths.
    #[must_use]
    pub fn new(committer: NodeId, value: Value, relays: &[NodeId]) -> Self {
        ChainRepr::try_new(committer, value, relays).expect("relay chain exceeds CHAIN_CAP")
    }

    /// Packs a chain, or `None` if `relays` exceeds [`CHAIN_CAP`].
    #[must_use]
    pub fn try_new(committer: NodeId, value: Value, relays: &[NodeId]) -> Option<Self> {
        if relays.len() > CHAIN_CAP {
            return None;
        }
        let mut inline = [NodeId(0); CHAIN_CAP];
        inline[..relays.len()].copy_from_slice(relays);
        Some(ChainRepr {
            committer,
            value,
            len: relays.len() as u8,
            relays: inline,
        })
    }

    /// A direct report: no relays yet (the committer's own announcement
    /// as observed by a neighbor about to affix itself).
    #[must_use]
    pub fn direct(committer: NodeId, value: Value) -> Self {
        ChainRepr::new(committer, value, &[])
    }

    /// The node whose commit is being reported.
    #[must_use]
    pub fn committer(&self) -> NodeId {
        self.committer
    }

    /// The reported committed value.
    #[must_use]
    pub fn value(&self) -> Value {
        self.value
    }

    /// The relay chain, committer-side first, transmitter last.
    #[must_use]
    pub fn relays(&self) -> &[NodeId] {
        &self.relays[..self.len as usize]
    }

    /// Number of affixed relays.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff no relay has been affixed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most recent relay — the node that must match the true
    /// transmitter for the report to be credible.
    #[must_use]
    pub fn last_relay(&self) -> Option<NodeId> {
        self.relays().last().copied()
    }

    /// True iff `id` appears anywhere in the relay chain.
    #[must_use]
    pub fn contains_relay(&self, id: NodeId) -> bool {
        self.relays().contains(&id)
    }

    /// The chain with `relay` affixed — the forwarding step. Pure copy,
    /// no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the chain is already at [`CHAIN_CAP`] — callers gate on
    /// `len() < max_relays` first.
    #[must_use]
    pub fn extended(&self, relay: NodeId) -> ChainRepr {
        assert!((self.len as usize) < CHAIN_CAP, "chain already full");
        let mut next = *self;
        next.relays[next.len as usize] = relay;
        next.len += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_and_unpacks() {
        let c = ChainRepr::new(NodeId(7), true, &[NodeId(1), NodeId(2)]);
        assert_eq!(c.committer(), NodeId(7));
        assert!(c.value());
        assert_eq!(c.relays(), &[NodeId(1), NodeId(2)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.last_relay(), Some(NodeId(2)));
        assert!(c.contains_relay(NodeId(1)));
        assert!(!c.contains_relay(NodeId(3)));
    }

    #[test]
    fn direct_has_no_relays() {
        let d = ChainRepr::direct(NodeId(5), false);
        assert!(d.is_empty());
        assert_eq!(d.last_relay(), None);
        assert_eq!(d.relays(), &[] as &[NodeId]);
    }

    #[test]
    fn extend_affixes_last() {
        let c = ChainRepr::direct(NodeId(5), true).extended(NodeId(9));
        assert_eq!(c.relays(), &[NodeId(9)]);
        let c2 = c.extended(NodeId(11));
        assert_eq!(c2.relays(), &[NodeId(9), NodeId(11)]);
        // the original is untouched (Copy semantics)
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn equality_ignores_dead_slots() {
        let a = ChainRepr::new(NodeId(1), true, &[NodeId(2)]);
        let b = ChainRepr::direct(NodeId(1), true).extended(NodeId(2));
        assert_eq!(a, b);
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        assert!(set.insert(a));
        assert!(!set.insert(b));
    }

    #[test]
    fn try_new_caps_length() {
        let four = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        assert!(ChainRepr::try_new(NodeId(0), true, &four).is_some());
        let five = [NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5)];
        assert!(ChainRepr::try_new(NodeId(0), true, &five).is_none());
    }

    #[test]
    #[should_panic(expected = "chain already full")]
    fn extend_past_cap_panics() {
        let four = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let _ = ChainRepr::new(NodeId(0), true, &four).extended(NodeId(5));
    }
}
