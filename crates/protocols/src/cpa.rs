//! The simple protocol of §IX — Koo's protocol, named the *Certified
//! Propagation Algorithm* (CPA) by Pelc & Peleg.
//!
//! Source neighbors commit on hearing the source directly; every other
//! node commits once `t+1` distinct neighbors have announced the same
//! committed value (at most `t` of which can be faulty, so at least one
//! honest vouch exists). Each node rebroadcasts its committed value once
//! and terminates. Theorem 6 proves this tolerates every `t ≤ ⅔·r²` in
//! the L∞ metric.

use crate::{Msg, ProtocolParams};
use rbcast_grid::NodeId;
use rbcast_sim::{Ctx, Process, Value};
use std::collections::BTreeMap;

/// CPA process state.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, NodeId, Torus};
/// use rbcast_protocols::{Cpa, Msg, ProtocolParams};
/// use rbcast_sim::Harness;
///
/// let torus = Torus::for_radius(1);
/// let me = torus.id(Coord::new(4, 4));
/// let params = ProtocolParams { source: torus.id(Coord::ORIGIN), value: true, t: 1 };
/// let mut cpa = Cpa::new(params);
/// let mut h = Harness::new(torus.clone(), 1, Metric::Linf, me);
/// // two distinct neighbors announce the same value: t+1 votes → commit
/// h.deliver(&mut cpa, torus.id(Coord::new(5, 4)), &Msg::Committed(true));
/// h.deliver(&mut cpa, torus.id(Coord::new(4, 5)), &Msg::Committed(true));
/// assert_eq!(h.decision(), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Cpa {
    params: ProtocolParams,
    /// First value announced by each neighbor (later contradictions from
    /// a duplicitous neighbor are ignored, per §V).
    announced: BTreeMap<NodeId, Value>,
    /// Votes per value from distinct neighbors.
    votes: [usize; 2],
    committed: bool,
}

impl Cpa {
    /// Creates the process.
    #[must_use]
    pub fn new(params: ProtocolParams) -> Self {
        Cpa {
            params,
            announced: BTreeMap::new(),
            votes: [0, 0],
            committed: false,
        }
    }

    /// Number of distinct neighbors that have announced `v`.
    #[must_use]
    pub fn votes_for(&self, v: Value) -> usize {
        self.votes[usize::from(v)]
    }

    fn commit(&mut self, ctx: &mut Ctx<'_, Msg>, v: Value) {
        if !self.committed {
            self.committed = true;
            // Trace the vote count behind the commit (0 when the commit
            // came straight from the source's own broadcast).
            ctx.note("commit-votes", self.votes[usize::from(v)] as u64);
            ctx.decide(v);
            ctx.broadcast(Msg::Committed(v));
        }
    }
}

impl Process<Msg> for Cpa {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if ctx.id() == self.params.source {
            self.committed = true;
            ctx.decide(self.params.value);
            ctx.broadcast(Msg::Source(self.params.value));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        match msg {
            Msg::Source(v) => {
                // Only the designated source can originate the broadcast
                // (identities cannot be spoofed, so `from` is authentic).
                if from == self.params.source {
                    self.commit(ctx, *v);
                }
            }
            Msg::Committed(v) => {
                if self.committed {
                    return;
                }
                // First announcement per neighbor only.
                if self.announced.contains_key(&from) {
                    return;
                }
                self.announced.insert(from, *v);
                self.votes[usize::from(*v)] += 1;
                if self.votes[usize::from(*v)] > self.params.t {
                    self.commit(ctx, *v);
                }
            }
            // CPA ignores indirect reports entirely.
            Msg::Heard(_) => {}
        }
    }

    // CPA's commit rule fires inside `on_message`; with no deliveries
    // its state cannot change, so round-end polling is unnecessary.
    fn needs_round_end(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::{Coord, Metric, Torus};
    use rbcast_sim::Network;

    fn run_cpa(torus: &Torus, r: u32, t: usize, silent: &[NodeId]) -> Network<Msg> {
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t,
        };
        let silent = silent.to_vec();
        let mut net = Network::new(torus.clone(), r, Metric::Linf, move |id| {
            if silent.contains(&id) {
                crate::attackers::silent()
            } else {
                Box::new(Cpa::new(params)) as Box<dyn Process<Msg>>
            }
        });
        net.run(5_000);
        net
    }

    #[test]
    fn fault_free_cpa_completes_at_theorem6_budget() {
        for r in 1..=2u32 {
            let torus = Torus::for_radius(r);
            let t = rbcast_core::thresholds::cpa_guaranteed_t(r) as usize;
            let net = run_cpa(&torus, r, t, &[]);
            for id in torus.node_ids() {
                assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "r={r} {id}");
            }
        }
    }

    #[test]
    fn tolerates_theorem6_silent_cluster() {
        // r = 2: t = ⌊8/3⌋ = 2; a cluster of 2 silent faults on the
        // wavefront must not stop CPA.
        let r = 2;
        let torus = Torus::for_radius(r);
        let f = [torus.id(Coord::new(4, 0)), torus.id(Coord::new(4, 1))];
        let net = run_cpa(&torus, r, 2, &f);
        for id in torus.node_ids() {
            if !f.contains(&id) {
                assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
            }
        }
    }

    #[test]
    fn votes_count_distinct_neighbors_only() {
        let params = ProtocolParams {
            source: NodeId(999_999),
            value: true,
            t: 2,
        };
        let mut cpa = Cpa::new(params);
        assert_eq!(cpa.votes_for(true), 0);
        // simulate two announcements from the same neighbor: only one
        // should count — exercised through the public run API in
        // `equivocating_neighbor_counts_once` below; here check initial
        // state invariants.
        assert!(!cpa.committed);
        cpa.votes[1] = 3;
        assert_eq!(cpa.votes_for(true), 3);
    }

    #[test]
    fn never_commits_wrong_value_under_liars() {
        // t liars per neighborhood pushing `false` cannot reach t+1 votes.
        let r = 2;
        let torus = Torus::for_radius(r);
        let t = 2;
        let liars = [torus.id(Coord::new(4, 0)), torus.id(Coord::new(5, 0))];
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t,
        };
        let mut net = Network::new(torus.clone(), r, Metric::Linf, move |id| {
            if liars.contains(&id) {
                crate::attackers::liar(false)
            } else {
                Box::new(Cpa::new(params)) as Box<dyn Process<Msg>>
            }
        });
        net.run(5_000);
        for id in torus.node_ids() {
            if !liars.contains(&id) {
                if let Some((v, _)) = net.decision(id) {
                    assert!(v, "{id} committed the liars' value");
                }
            }
        }
    }

    #[test]
    fn stalls_when_cluster_exceeds_its_guarantee() {
        // Pack a full wavefront neighborhood with silent faults far above
        // the CPA threshold: nodes beyond the wall starve. This documents
        // CPA's weakness relative to the indirect protocol rather than a
        // tight bound (CPA's exact empirical frontier is mapped in the
        // thresh_cpa experiment).
        let r = 2;
        let torus = Torus::for_radius(r); // 20x20
                                          // full-width vertical wall of silent nodes, 3 columns thick, away
                                          // from the source so its neighbors still commit
        let mut wall = Vec::new();
        for y in 0..torus.height() {
            for x in 7..10 {
                wall.push(torus.id(Coord::new(x, i64::from(y))));
            }
        }
        // mirror wall on the other side of the torus
        for y in 0..torus.height() {
            for x in 14..17 {
                wall.push(torus.id(Coord::new(x, i64::from(y))));
            }
        }
        let net = run_cpa(&torus, r, 2, &wall);
        // a node in the enclosed band never decides
        let starved = torus.id(Coord::new(12, 5));
        assert_eq!(net.decision(starved), None);
        // but source-side nodes do
        assert!(net.decision(torus.id(Coord::new(1, 0))).is_some());
    }
}
