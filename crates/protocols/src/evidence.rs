//! Commit-rule evidence evaluation for the indirect-report protocol.
//!
//! A node accumulates *report chains* about committers: hearing
//! `COMMITTED(i, v)` directly is the empty chain; a
//! `HEARD(k_m, …, k_1, i, v)` message is the chain `[k_1, …, k_m]`. The
//! commit rules of §VI / §VI-B evaluate this evidence:
//!
//! * [`CommitRule::TwoLevel`] — the paper's §VI rule. First, *reliable
//!   determination*: committer `i` is determined to have committed `v`
//!   when heard directly, or when `t+1` pairwise node-disjoint chains
//!   about `(i, v)` lie inside one neighborhood (at most `t` of them can
//!   contain a faulty relay, and an all-honest chain is a telescoping
//!   attestation that `i` really transmitted `COMMITTED(i, v)`). Second,
//!   *commitment*: commit to `v` once `t+1` determined committers of `v`
//!   lie inside one neighborhood (at most `t` faulty, and honest commits
//!   are correct by induction).
//! * [`CommitRule::OneLevel`] — the §VI-B-style collapsed rule: commit to
//!   `v` once `t+1` pairwise node-disjoint chains — *including their
//!   committers* in the disjointness — lie inside one neighborhood, all
//!   reporting `v`. One of them is then all-honest end to end.
//!
//! Both rules are *safe* for any fault placement within the local bound;
//! they differ in liveness/latency and in evaluation cost (benched in
//! `rbcast-bench`).

use rbcast_flow::{ChainPacker, PackScratch, MAX_CHAIN_KEYS};
use rbcast_grid::{Coord, LocalFrame, NeighborTable, NodeId};
use rbcast_sim::Value;
use std::collections::BTreeMap;

/// Which commit rule the indirect protocol evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitRule {
    /// The paper's §VI two-level rule (determine committers, then count
    /// determined committers per neighborhood).
    #[default]
    TwoLevel,
    /// The collapsed one-level rule (count disjoint chains per
    /// neighborhood directly), as in the §VI-B simplified protocol.
    OneLevel,
}

/// Network geometry needed by the evidence evaluation, backed by the
/// shared topology arena (so the per-round center scans read
/// precomputed stencils instead of re-deriving the commit geometry).
#[derive(Debug, Clone, Copy)]
pub struct Geometry<'a> {
    arena: &'a NeighborTable,
    me: Coord,
}

impl<'a> Geometry<'a> {
    /// Geometry for the evaluating node at coordinate `me`, over the
    /// network's topology arena.
    #[must_use]
    pub fn new(arena: &'a NeighborTable, me: Coord) -> Self {
        Geometry { arena, me }
    }

    /// Closed-ball membership: is `node` within `r` of `center`?
    fn covers(&self, center: Coord, node: Coord) -> bool {
        self.arena
            .torus()
            .within(center, node, self.arena.radius(), self.arena.metric())
    }

    /// Candidate neighborhood centers within distance `d` of `around`,
    /// streamed from the arena's precomputed closed-ball stencil — no
    /// per-call geometry scan (this runs per evaluation, per candidate
    /// center scan, on the simulator hot path).
    fn centers_within(self, around: Coord, d: u32) -> impl Iterator<Item = Coord> + 'a {
        let torus = self.arena.torus();
        self.arena
            .ball_offsets(d)
            .iter()
            .map(move |&off| torus.canonical(around + off))
    }
}

/// Accumulated report-chain evidence and rule evaluation for one node.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, NeighborTable, Torus};
/// use rbcast_protocols::{CommitRule, EvidenceStore, Geometry};
///
/// let torus = Torus::new(24, 24);
/// let table = NeighborTable::build(&torus, 2, Metric::Linf);
/// let geo = Geometry::new(&table, Coord::new(10, 10));
/// let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
/// // two committers in one neighborhood heard directly: t+1 = 2 → commit
/// ev.record_direct(torus.id(Coord::new(9, 9)), true);
/// ev.record_direct(torus.id(Coord::new(11, 9)), true);
/// assert_eq!(ev.evaluate(&geo), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct EvidenceStore {
    t: usize,
    rule: CommitRule,
    /// Ball-local committer frame (span `3r`), bound once per run by
    /// the protocol's `on_start` via [`EvidenceStore::bind`]. When
    /// bound, two-level evidence lives in dense slot-indexed vectors;
    /// unbound stores (harness-driven tests) spill to the ordered map
    /// with identical semantics.
    frame: Option<LocalFrame>,
    /// Dense per-(slot, value) chain packers for the bound two-level
    /// rule: `slots[2 * slot + value]`.
    slots: Vec<ChainPacker>,
    /// Ordered spill: unbound stores and out-of-frame committers
    /// (relays only, two-level rule).
    packers: BTreeMap<(NodeId, Value), ChainPacker>,
    /// Per-value chains with the committer prefixed (one-level rule) —
    /// already dense: two packers, no keying at all.
    combined: [ChainPacker; 2],
    /// Pairs whose evidence changed since the last evaluation.
    /// Unsorted and possibly duplicated; drained sorted + deduped so
    /// the refresh order matches the old ordered-set drain exactly.
    dirty: Vec<(NodeId, Value)>,
    /// Committers reliably determined (first value wins).
    determined: BTreeMap<NodeId, Value>,
    /// Set when a commit re-evaluation is warranted.
    commit_dirty: bool,
    /// Reusable packing-query buffers (never affects answers).
    scratch: PackScratch,
}

/// Inline key buffer for packer insertions: an optional committer
/// prefix followed by the relay keys, no heap.
struct KeyBuf {
    buf: [u64; MAX_CHAIN_KEYS],
    len: usize,
}

impl KeyBuf {
    /// Packs `prefix` (if any) followed by `relays`, or `None` when the
    /// combined chain exceeds [`MAX_CHAIN_KEYS`] — such a chain could
    /// never enter a packer anyway (`ChainPacker::insert` rejects
    /// over-length chains).
    fn pack(prefix: Option<NodeId>, relays: &[NodeId]) -> Option<KeyBuf> {
        if relays.len() + usize::from(prefix.is_some()) > MAX_CHAIN_KEYS {
            return None;
        }
        let mut buf = [0u64; MAX_CHAIN_KEYS];
        let mut len = 0;
        if let Some(p) = prefix {
            buf[0] = u64::from(p.0);
            len = 1;
        }
        for &k in relays {
            buf[len] = u64::from(k.0);
            len += 1;
        }
        Some(KeyBuf { buf, len })
    }

    fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }
}

impl EvidenceStore {
    /// Creates an empty store for fault budget `t` under `rule`.
    #[must_use]
    pub fn new(t: usize, rule: CommitRule) -> Self {
        EvidenceStore {
            t,
            rule,
            ..EvidenceStore::default()
        }
    }

    /// Binds the store to its node's ball-local committer frame. Every
    /// legal committer lies within L∞ distance `3r` of the receiver (at
    /// most `2r` from the last relay — they share a radius-`r` ball —
    /// which itself is within `r`), so a span-`3r` frame indexes all of
    /// them; two-level evidence then lives in dense slot vectors
    /// instead of an ordered map.
    ///
    /// Call before recording any evidence (the protocol binds in
    /// `on_start`). Stores that never bind, and committers outside the
    /// frame, use the ordered spill map with identical semantics.
    pub fn bind(&mut self, frame: LocalFrame) {
        debug_assert_eq!(self.chain_count(), 0, "bind() after evidence was recorded");
        if self.rule == CommitRule::TwoLevel {
            // audit:allow(checked-threshold-arith): slot-vector sizing, not bound arithmetic
            self.slots.resize_with(2 * frame.slots(), ChainPacker::new);
            self.frame = Some(frame);
        }
    }

    /// Dense slot of `committer` when the store is bound and the
    /// committer is inside the frame.
    fn slot_index(&self, committer: NodeId) -> Option<usize> {
        self.frame.as_ref()?.slot_of_id(committer)
    }

    /// Records that the committer was heard announcing `v` directly.
    pub fn record_direct(&mut self, committer: NodeId, v: Value) {
        self.record_chain(committer, v, &[]);
    }

    /// Records a report chain (`relays` committer-side first, excluding
    /// the committer and the receiving node). Returns `true` if the chain
    /// was new and undominated (dominated chains can never matter — see
    /// `ChainPacker::insert`).
    ///
    /// Only the structures the configured rule needs are maintained.
    pub fn record_chain(&mut self, committer: NodeId, v: Value, relays: &[NodeId]) -> bool {
        match self.rule {
            CommitRule::TwoLevel => {
                let Some(keys) = KeyBuf::pack(None, relays) else {
                    return false;
                };
                let packer = match self.slot_index(committer) {
                    // audit:allow(checked-threshold-arith): dense slot indexing, not bound arithmetic
                    Some(slot) => &mut self.slots[2 * slot + usize::from(v)],
                    None => self.packers.entry((committer, v)).or_default(),
                };
                let new = packer.insert(keys.as_slice());
                if new && !self.determined.contains_key(&committer) {
                    self.dirty.push((committer, v));
                }
                new
            }
            CommitRule::OneLevel => {
                let Some(keys) = KeyBuf::pack(Some(committer), relays) else {
                    return false;
                };
                let new = self.combined[usize::from(v)].insert(keys.as_slice());
                if new {
                    self.commit_dirty = true;
                }
                new
            }
        }
    }

    /// Committers reliably determined so far (two-level rule).
    #[must_use]
    pub fn determined(&self) -> &BTreeMap<NodeId, Value> {
        &self.determined
    }

    /// Total stored (undominated) chains across all committers and
    /// values.
    #[must_use]
    pub fn chain_count(&self) -> usize {
        self.packers.values().map(ChainPacker::len).sum::<usize>()
            + self.slots.iter().map(ChainPacker::len).sum::<usize>()
            + self.combined.iter().map(ChainPacker::len).sum::<usize>()
    }

    /// Deterministic FNV-1a fingerprint of every stored chain — traced
    /// alongside the chain count when a commit fires, so two runs can
    /// be compared on *what* evidence produced each decision, not just
    /// how much. Folds packers in storage order (dense slots, then the
    /// spill map, then the combined per-value packers); empty packers
    /// contribute nothing, so the digest is independent of how many
    /// unused slots the frame reserved.
    #[must_use]
    pub fn digest(&self) -> u64 {
        use rbcast_sim::trace::{fold_words, FNV_OFFSET};
        let mut hash = FNV_OFFSET;
        let fold_packer = |hash: &mut u64, key: u64, p: &ChainPacker| {
            if p.is_empty() {
                return;
            }
            fold_words(hash, &[key, u64::from(p.has_direct())]);
            for c in p.iter() {
                fold_words(hash, &[c.relays().len() as u64]);
                fold_words(hash, c.relays());
            }
        };
        for (slot, p) in self.slots.iter().enumerate() {
            fold_packer(&mut hash, slot as u64, p);
        }
        for (&(id, v), p) in &self.packers {
            fold_packer(&mut hash, (u64::from(id.0) << 1) | u64::from(v), p);
        }
        for (v, p) in self.combined.iter().enumerate() {
            fold_packer(&mut hash, v as u64, p);
        }
        hash
    }

    /// Evaluates the commit rule against the current evidence. Returns
    /// the value to commit to, if the rule fires.
    ///
    /// Called at round boundaries; incremental (only dirty evidence is
    /// re-examined).
    pub fn evaluate(&mut self, geo: &Geometry<'_>) -> Option<Value> {
        match self.rule {
            CommitRule::TwoLevel => self.evaluate_two_level(geo),
            CommitRule::OneLevel => self.evaluate_one_level(geo),
        }
    }

    fn evaluate_two_level(&mut self, geo: &Geometry<'_>) -> Option<Value> {
        // Level 1: refresh determinations for dirty (committer, value)
        // pairs. A pair failing now is re-marked dirty by the next chain
        // arrival for it.
        // Sorted + deduped drain: reproduces the (committer, value)
        // iteration order of the ordered set this list replaced, so
        // refresh order is identical on every run with the same seed.
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        // Take the scratch out so packing queries can borrow it mutably
        // alongside `&self` reads of the packers; put it back after.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut newly = false;
        for (committer, v) in dirty {
            if self.determined.contains_key(&committer) {
                continue;
            }
            if self.is_determined(geo, &mut scratch, committer, v) {
                self.determined.insert(committer, v);
                newly = true;
            }
        }
        self.scratch = scratch;
        // The commit threshold can only newly pass when a determination
        // was added.
        if !newly {
            return None;
        }

        // Level 2: a neighborhood holding t+1 determined committers of v.
        let need = self.t + 1;
        let commits: Vec<(Coord, Value)> = self
            .determined
            .iter()
            .map(|(&id, &v)| (geo.arena.torus().coord(id), v))
            .collect();
        for center in geo.centers_within(geo.me, geo.arena.radius() + 1) {
            let mut counts = [0usize; 2];
            for &(c, v) in &commits {
                if geo.covers(center, c) {
                    counts[usize::from(v)] += 1;
                }
            }
            for v in [false, true] {
                if counts[usize::from(v)] >= need {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Level-1 determination: direct observation, or `t+1` disjoint
    /// chains inside a single neighborhood covering the committer.
    fn is_determined(
        &self,
        geo: &Geometry<'_>,
        scratch: &mut PackScratch,
        committer: NodeId,
        v: Value,
    ) -> bool {
        let packer = match self.slot_index(committer) {
            // audit:allow(checked-threshold-arith): dense slot indexing, not bound arithmetic
            Some(slot) => &self.slots[2 * slot + usize::from(v)],
            None => match self.packers.get(&(committer, v)) {
                Some(p) => p,
                None => return false,
            },
        };
        if packer.has_direct() {
            return true;
        }
        let need = (self.t + 1) as u32;
        if packer.len() < need as usize {
            return false;
        }
        let committer_coord = geo.arena.torus().coord(committer);
        for center in geo.centers_within(committer_coord, geo.arena.radius()) {
            let admit = |k: u64| geo.covers(center, geo.arena.torus().coord(NodeId(k as u32)));
            if packer.max_disjoint_reusing(scratch, admit, need) >= need {
                return true;
            }
        }
        false
    }

    fn evaluate_one_level(&mut self, geo: &Geometry<'_>) -> Option<Value> {
        if !self.commit_dirty {
            return None;
        }
        self.commit_dirty = false;
        self.dirty.clear();
        let need = (self.t + 1) as u32;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut committed = None;
        'scan: for center in geo.centers_within(geo.me, geo.arena.radius() + 1) {
            for v in [true, false] {
                let packer = &self.combined[usize::from(v)];
                if packer.len() < need as usize {
                    continue;
                }
                let admit = |k: u64| geo.covers(center, geo.arena.torus().coord(NodeId(k as u32)));
                if packer.max_disjoint_reusing(&mut scratch, admit, need) >= need {
                    committed = Some(v);
                    break 'scan;
                }
            }
        }
        self.scratch = scratch;
        committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rbcast_grid::{Metric, Torus};
    use std::collections::BTreeSet;

    fn table(torus: &Torus) -> NeighborTable {
        NeighborTable::build(torus, 2, Metric::Linf)
    }

    fn id(torus: &Torus, x: i64, y: i64) -> NodeId {
        torus.id(Coord::new(x, y))
    }

    #[test]
    fn direct_observations_determine_immediately() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(2, CommitRule::TwoLevel);
        ev.record_direct(id(&torus, 9, 9), true);
        let _ = ev.evaluate(&geo);
        assert_eq!(ev.determined().len(), 1);
    }

    #[test]
    fn two_level_commits_on_t_plus_1_determined_neighbors() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let t = 2;
        let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
        // three committers inside one neighborhood of `me`, all heard
        // directly
        for x in 0..3 {
            ev.record_direct(id(&torus, 9 + x, 9), true);
        }
        assert_eq!(ev.evaluate(&geo), Some(true));
    }

    #[test]
    fn two_level_needs_strictly_more_than_t() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(2, CommitRule::TwoLevel);
        ev.record_direct(id(&torus, 9, 9), true);
        ev.record_direct(id(&torus, 10, 9), true);
        assert_eq!(ev.evaluate(&geo), None);
    }

    #[test]
    fn determination_via_disjoint_chains() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let t = 1;
        let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12); // not a direct neighbor of me
                                            // two disjoint chains through distinct relays near the committer
        ev.record_chain(committer, true, &[id(&torus, 11, 12)]);
        ev.record_chain(committer, true, &[id(&torus, 12, 11)]);
        let _ = ev.evaluate(&geo);
        assert_eq!(ev.determined().get(&committer), Some(&true));
    }

    #[test]
    fn conflicting_chains_do_not_determine() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12);
        let shared_relay = id(&torus, 11, 12);
        ev.record_chain(committer, true, &[shared_relay]);
        ev.record_chain(committer, true, &[shared_relay, id(&torus, 11, 11)]);
        let _ = ev.evaluate(&geo);
        assert!(ev.determined().is_empty());
    }

    #[test]
    fn chains_outside_any_single_neighborhood_do_not_count() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12);
        // relays too far apart to share a ball with the committer
        ev.record_chain(committer, true, &[id(&torus, 10, 12)]);
        ev.record_chain(committer, true, &[id(&torus, 14, 18)]);
        let _ = ev.evaluate(&geo);
        assert!(ev.determined().is_empty());
    }

    #[test]
    fn one_level_commits_on_disjoint_committer_chains() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let t = 1;
        let mut ev = EvidenceStore::new(t, CommitRule::OneLevel);
        // two chains with distinct committers and distinct relays, all
        // within the ball centered at (10, 10)
        ev.record_chain(id(&torus, 9, 9), true, &[id(&torus, 10, 9)]);
        ev.record_chain(id(&torus, 11, 11), true, &[id(&torus, 11, 10)]);
        assert_eq!(ev.evaluate(&geo), Some(true));
    }

    #[test]
    fn one_level_shared_committer_counts_once() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(1, CommitRule::OneLevel);
        let committer = id(&torus, 9, 9);
        ev.record_chain(committer, true, &[id(&torus, 10, 9)]);
        ev.record_chain(committer, true, &[id(&torus, 9, 10)]);
        assert_eq!(ev.evaluate(&geo), None);
    }

    #[test]
    fn duplicate_chains_are_ignored() {
        let torus = Torus::new(24, 24);
        let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12);
        assert!(ev.record_chain(committer, true, &[id(&torus, 11, 12)]));
        assert!(!ev.record_chain(committer, true, &[id(&torus, 11, 12)]));
        assert_eq!(ev.chain_count(), 1);
    }

    #[test]
    fn evaluation_is_idempotent_when_clean() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(0, CommitRule::TwoLevel);
        ev.record_direct(id(&torus, 9, 9), false);
        assert_eq!(ev.evaluate(&geo), Some(false));
        // no new evidence: second call must be cheap and return None
        assert_eq!(ev.evaluate(&geo), None);
    }

    #[test]
    fn values_kept_separate() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
        ev.record_direct(id(&torus, 9, 9), true);
        ev.record_direct(id(&torus, 10, 9), false);
        // one vote each: neither reaches t+1 = 2
        assert_eq!(ev.evaluate(&geo), None);
        ev.record_direct(id(&torus, 11, 9), true);
        assert_eq!(ev.evaluate(&geo), Some(true));
    }

    #[test]
    fn coalition_of_t_forgers_cannot_fabricate_a_determination() {
        // t faulty nodes inside one neighborhood each fabricate one
        // report chain claiming an honest committer committed `false`.
        // Chains from distinct forgers are disjoint (each ends at its
        // own forger), but there are only t of them — one short of the
        // t+1 the rule demands.
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let t = 3;
        let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
        let victim = id(&torus, 12, 12);
        for k in 0..t {
            let forger = id(&torus, 11, 11 + k as i64 - 1);
            ev.record_chain(victim, false, &[forger]);
        }
        let _ = ev.evaluate(&geo);
        assert!(ev.determined().is_empty());
    }

    #[test]
    fn forged_deep_chains_share_their_forger_and_collapse() {
        // One forger fabricating many deep chains gains nothing: all its
        // chains end with its own (unforgeable) identifier, so any
        // disjoint family contains at most one of them.
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(1, CommitRule::TwoLevel);
        let victim = id(&torus, 12, 12);
        let forger = id(&torus, 11, 12);
        for k in 0..6i64 {
            ev.record_chain(victim, false, &[id(&torus, 12, 11 + (k % 2)), forger]);
        }
        let _ = ev.evaluate(&geo);
        assert!(ev.determined().is_empty());
    }

    #[test]
    fn one_honest_chain_tips_the_balance_for_the_truth() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let t = 2;
        let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12);
        // t disjoint chains (possibly faulty relays) plus one more —
        // t+1 disjoint chains within one ball determine the value.
        for k in 0..=t {
            ev.record_chain(committer, true, &[id(&torus, 11, 11 + k as i64)]);
        }
        let _ = ev.evaluate(&geo);
        assert_eq!(ev.determined().get(&committer), Some(&true));
    }

    #[test]
    fn level2_centers_reach_the_frontier_distance() {
        // A frontier node sits r+1 from the neighborhood center whose
        // committers it counts; the level-2 scan must find that center.
        let torus = Torus::new(24, 24);
        let t = 1;
        // me at (10, 10); committers clustered in the ball centered at
        // (10, 13) — distance r+1 = 3 from me (r = 2).
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
        ev.record_direct(id(&torus, 10, 12), true);
        ev.record_direct(id(&torus, 9, 12), true);
        assert_eq!(ev.evaluate(&geo), Some(true));
    }

    proptest::prelude::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Theorem 2 safety, adversarially: under any locally-bounded
        /// fault set (at most `t` faults in total, hence at most `t` in
        /// every neighborhood), no stream of model-consistent evidence
        /// ever makes either commit rule fire for the wrong value, and
        /// the two-level rule never wrongly determines an honest
        /// committer.
        ///
        /// Model consistency is the one constraint the radio network
        /// enforces for free (identities are unforgeable, honest relays
        /// only attest what they heard): a `false` report about an
        /// *honest* committer must pass through at least one faulty
        /// relay. Everything else — chain shapes, committer choices,
        /// interleaving with truthful evidence — is adversarial.
        #[test]
        fn bounded_faults_never_produce_a_wrong_commit(
            t in 1usize..=3,
            fault_pts in proptest::collection::vec((0i64..24, 0i64..24), 0..4),
            truth_pts in proptest::collection::vec((0i64..24, 0i64..24), 0..6),
            chain_spec in proptest::collection::vec(
                ((0i64..24, 0i64..24), proptest::collection::vec((0i64..24, 0i64..24), 0..4)),
                0..32,
            ),
        ) {
            use proptest::prelude::{prop_assert, prop_assert_ne};

            let torus = Torus::new(24, 24);
            let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
            let at = |&(x, y): &(i64, i64)| torus.id(Coord::new(x, y));
            // At most `t` faults in total, so every neighborhood holds at
            // most `t` of them: the placement is locally bounded by
            // construction.
            let faulty: BTreeSet<NodeId> = fault_pts.iter().take(t).map(at).collect();

            for rule in [CommitRule::TwoLevel, CommitRule::OneLevel] {
                let mut ev = EvidenceStore::new(t, rule);
                // Truthful background: direct announcements of the true
                // value, which must never help a wrong commit.
                for p in &truth_pts {
                    ev.record_direct(at(p), true);
                    prop_assert_ne!(ev.evaluate(&geo), Some(false));
                }
                for (committer_pt, relay_pts) in &chain_spec {
                    let committer = at(committer_pt);
                    let mut relays: Vec<NodeId> = relay_pts.iter().map(at).collect();
                    if !faulty.contains(&committer)
                        && !relays.iter().any(|r| faulty.contains(r))
                    {
                        // Repair the chain to be model-consistent: route
                        // the fabrication through a faulty relay. With no
                        // faults at all, wrong reports cannot exist.
                        match faulty.iter().next() {
                            Some(&f) => relays.push(f),
                            None => continue,
                        }
                    }
                    ev.record_chain(committer, false, &relays);
                    prop_assert_ne!(
                        ev.evaluate(&geo),
                        Some(false),
                        "wrong commit under {:?} with t={}, faults={:?}",
                        rule, t, faulty
                    );
                }
                if rule == CommitRule::TwoLevel {
                    for (c, v) in ev.determined() {
                        prop_assert!(
                            faulty.contains(c) || *v,
                            "honest committer {:?} wrongly determined under t={}",
                            c, t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_frame_committer_spills_and_matches_unbound_semantics() {
        // A forged chain can name a committer far beyond the 3r frame a
        // bound store indexes densely (no *valid* chain can — 2r from
        // the last relay, which is within r of us — but a liar is not
        // bound by validity). Such a committer must take the ordered
        // spill path, and the spill path must be observably identical
        // to the unbound store's: same insertion verdicts, same chain
        // counts, same determinations, same commit decision.
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let me = Coord::new(10, 10);
        let geo = Geometry::new(&table, me);
        let t = 1;

        let near = id(&torus, 12, 12); // inside the frame: dense slots
        let far = id(&torus, 22, 22); // wrap displacement (±12, ±12) > 3r = 6
        let frame = table.local_frame(me, 6);
        assert!(frame.slot_of_id(near).is_some(), "near committer indexed");
        assert!(frame.slot_of_id(far).is_none(), "forged committer spills");

        // Identical evidence stream for both stores: an honestly
        // determined in-frame committer, then forged chains about the
        // out-of-frame one (including an exact duplicate).
        let feed = |ev: &mut EvidenceStore| {
            vec![
                ev.record_chain(near, true, &[id(&torus, 11, 12)]),
                ev.record_chain(near, true, &[id(&torus, 12, 11)]),
                ev.record_chain(far, false, &[id(&torus, 11, 11)]),
                ev.record_chain(far, false, &[id(&torus, 11, 11)]),
                ev.record_chain(far, false, &[id(&torus, 13, 11)]),
            ]
        };
        let mut bound = EvidenceStore::new(t, CommitRule::TwoLevel);
        bound.bind(table.local_frame(me, 6));
        let mut unbound = EvidenceStore::new(t, CommitRule::TwoLevel);
        let verdicts = feed(&mut bound);
        assert_eq!(verdicts, feed(&mut unbound), "insertion verdicts agree");
        assert_eq!(verdicts, [true, true, true, false, true], "dup dominated");
        assert_eq!(bound.chain_count(), unbound.chain_count());

        // The forged chains are stored but inert: the far committer
        // shares no ball with its claimed relays, so only the honest
        // in-frame committer is determined — identically in both
        // stores — and neither store commits (one determination < t+1).
        assert_eq!(bound.evaluate(&geo), unbound.evaluate(&geo));
        assert_eq!(bound.determined(), unbound.determined());
        assert_eq!(bound.determined().get(&near), Some(&true));
        assert!(!bound.determined().contains_key(&far));

        // The spill map participates in the evidence digest: replaying
        // the stream into a fresh bound store reproduces it exactly,
        // and dropping the forged chains changes it.
        let mut replay = EvidenceStore::new(t, CommitRule::TwoLevel);
        replay.bind(table.local_frame(me, 6));
        let _ = feed(&mut replay);
        assert_eq!(bound.digest(), replay.digest());
        let mut clean = EvidenceStore::new(t, CommitRule::TwoLevel);
        clean.bind(table.local_frame(me, 6));
        clean.record_chain(near, true, &[id(&torus, 11, 12)]);
        clean.record_chain(near, true, &[id(&torus, 12, 11)]);
        assert_ne!(clean.digest(), bound.digest(), "spill chains are folded");
    }

    #[test]
    fn first_determination_wins_per_committer() {
        let torus = Torus::new(24, 24);
        let table = table(&torus);
        let geo = Geometry::new(&table, Coord::new(10, 10));
        let mut ev = EvidenceStore::new(0, CommitRule::TwoLevel);
        let committer = id(&torus, 12, 12);
        ev.record_chain(committer, true, &[id(&torus, 11, 12)]);
        let _ = ev.evaluate(&geo);
        assert_eq!(ev.determined().get(&committer), Some(&true));
        // later contradictory evidence cannot flip it
        ev.record_chain(committer, false, &[id(&torus, 12, 11)]);
        let _ = ev.evaluate(&geo);
        assert_eq!(ev.determined().get(&committer), Some(&true));
    }
}
