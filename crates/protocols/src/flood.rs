//! The crash-stop protocol of §VII: pure flooding.
//!
//! "When only crash-stop failures are admissible, no special protocol is
//! required. Each node that receives a value, commits to it,
//! re-broadcasts it once for the benefit of others, and then may
//! terminate local execution." Reachability is the sole criterion;
//! Theorems 4–5 establish the exact L∞ threshold `t < r(2r+1)`.

use crate::{Msg, ProtocolParams};
use rbcast_grid::NodeId;
use rbcast_sim::{Ctx, Process};

/// Flooding process for the crash-stop fault model.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, Torus};
/// use rbcast_protocols::{Flood, Msg, ProtocolParams};
/// use rbcast_sim::{Network, Process};
///
/// let torus = Torus::for_radius(1);
/// let params = ProtocolParams {
///     source: torus.id(Coord::ORIGIN),
///     value: true,
///     t: 0,
/// };
/// let mut net = Network::new(torus.clone(), 1, Metric::Linf, |_| {
///     Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
/// });
/// net.run(100);
/// assert!(torus.node_ids().all(|id| net.decision(id).is_some()));
/// ```
#[derive(Debug, Clone)]
pub struct Flood {
    params: ProtocolParams,
    done: bool,
}

impl Flood {
    /// Creates the process; the node identified by `params.source` seeds
    /// the broadcast.
    #[must_use]
    pub fn new(params: ProtocolParams) -> Self {
        Flood {
            params,
            done: false,
        }
    }
}

impl Process<Msg> for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if ctx.id() == self.params.source {
            self.done = true;
            ctx.decide(self.params.value);
            ctx.broadcast(Msg::Source(self.params.value));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: &Msg) {
        if self.done {
            return;
        }
        // Under crash-stop faults every received value is genuine; commit
        // to the first and relay it once.
        self.done = true;
        ctx.decide(msg.value());
        ctx.broadcast(Msg::Committed(msg.value()));
    }

    // Flood acts only on deliveries; it has no round-end behaviour, so
    // the sparse engine never needs to poll it.
    fn needs_round_end(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::{Coord, Metric, Torus};
    use rbcast_sim::Network;

    fn run_flood(torus: &Torus, r: u32, crashed: &[NodeId]) -> rbcast_sim::Network<Msg> {
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t: 0,
        };
        let mut net = Network::new(torus.clone(), r, Metric::Linf, |_| {
            Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
        });
        for &c in crashed {
            net.crash_at(c, 0);
        }
        net.run(1_000);
        net
    }

    #[test]
    fn fault_free_flood_reaches_everyone() {
        let torus = Torus::for_radius(2);
        let net = run_flood(&torus, 2, &[]);
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
        }
    }

    #[test]
    fn each_node_broadcasts_exactly_once() {
        let torus = Torus::for_radius(1);
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: false,
            t: 0,
        };
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |_| {
            Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
        });
        let stats = net.run(1_000);
        assert_eq!(stats.messages_sent, torus.len() as u64);
        assert!(stats.quiescent());
    }

    #[test]
    fn crashed_nodes_do_not_decide() {
        let torus = Torus::for_radius(2);
        let victim = torus.id(Coord::new(3, 3));
        let net = run_flood(&torus, 2, &[victim]);
        assert_eq!(net.decision(victim), None);
        // everyone else still decides (a single crash cannot partition)
        for id in torus.node_ids() {
            if id != victim {
                assert!(net.decision(id).is_some(), "{id}");
            }
        }
    }

    #[test]
    fn value_false_propagates_too() {
        let torus = Torus::for_radius(1);
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: false,
            t: 0,
        };
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |_| {
            Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
        });
        net.run(1_000);
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(false));
        }
    }

    #[test]
    fn rounds_scale_with_distance() {
        // On a 4(2r+1) torus the farthest node is ~2(2r+1) away; flooding
        // covers distance r per round, so expect ≳ torus_width/(2r) rounds.
        let torus = Torus::for_radius(2);
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t: 0,
        };
        let mut net = Network::new(torus.clone(), 2, Metric::Linf, |_| {
            Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
        });
        let stats = net.run(1_000);
        assert!(stats.rounds >= 5, "rounds={}", stats.rounds);
        assert!(stats.rounds <= 20, "rounds={}", stats.rounds);
    }
}
