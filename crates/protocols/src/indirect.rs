//! The Bhandari–Vaidya indirect-report protocol (§VI) and its simplified
//! two-hop variant (§VI-B).
//!
//! Message flow:
//!
//! 1. the source locally broadcasts its value;
//! 2. source neighbors commit immediately and broadcast
//!    `COMMITTED(i, v)` once;
//! 3. every node relays commit reports as `HEARD(…)` chains, each relay
//!    affixing its identifier, up to `max_relays` hops (3 in the full
//!    protocol — reports travel four hops from the committer; 1 in the
//!    simplified protocol);
//! 4. nodes evaluate the commit rule ([`CommitRule`]) at round
//!    boundaries; on committing they broadcast `COMMITTED` once and keep
//!    relaying for the benefit of others.
//!
//! Relay hygiene (all checkable locally, faithful to the model):
//! a `HEARD` whose last affixed relay differs from the true transmitter
//! is proof of fault and is dropped; chains with repeated nodes are
//! degenerate and dropped; chains that no longer fit inside any single
//! neighborhood can never serve as evidence and are pruned ("earmarking
//! exact messages that a node should look out for", §VI).

use crate::chain::{ChainRepr, CHAIN_CAP};
use crate::evidence::{CommitRule, EvidenceStore, Geometry};
use crate::{Msg, ProtocolParams};
use rbcast_grid::{Coord, Metric, NodeId};
use rbcast_sim::{Ctx, Process, Value};
use std::collections::BTreeMap;

/// Slots in the per-node duplicate-`HEARD` cache. Direct-mapped and
/// deliberately tiny: the cache only needs to absorb the bursty
/// re-deliveries of one wavefront, not remember every chain ever seen
/// (an unbounded set is exactly the memory hog this module removes).
const SEEN_SLOTS: usize = 8;

/// Duplicate-`HEARD` short-circuit: a direct-mapped cache keyed by an
/// FNV hash of the packed chain. Pure cache semantics — a hit skips
/// work whose outcome is already known (an exact duplicate can neither
/// enter the evidence store nor be re-forwarded); a miss falls through
/// to the store's dominance check, which rejects duplicates
/// identically. Eviction therefore never changes behavior, only cost.
#[derive(Debug)]
struct SeenCache([Option<ChainRepr>; SEEN_SLOTS]);

impl SeenCache {
    fn new() -> Self {
        SeenCache([None; SEEN_SLOTS])
    }

    fn slot(chain: &ChainRepr) -> usize {
        // FNV-1a over the live chain words.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        fold(chain.committer().index() as u64);
        fold(u64::from(chain.value()));
        for &k in chain.relays() {
            fold(k.index() as u64);
        }
        (h as usize) % SEEN_SLOTS
    }

    /// True iff `chain` is already cached; caches it otherwise.
    fn check_and_insert(&mut self, chain: &ChainRepr) -> bool {
        let i = Self::slot(chain);
        if self.0[i].as_ref() == Some(chain) {
            return true;
        }
        self.0[i] = Some(*chain);
        false
    }
}

/// Configuration of the indirect-report protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectConfig {
    /// Maximum relays a report chain may accumulate (3 = full §VI
    /// protocol, 1 = simplified §VI-B protocol).
    pub max_relays: usize,
    /// The commit rule to evaluate.
    pub rule: CommitRule,
}

impl IndirectConfig {
    /// The full §VI protocol: four-hop reports, two-level rule.
    #[must_use]
    pub fn full() -> Self {
        IndirectConfig {
            max_relays: 3,
            rule: CommitRule::TwoLevel,
        }
    }

    /// The simplified §VI-B protocol: two-hop reports, one-level rule.
    #[must_use]
    pub fn simplified() -> Self {
        IndirectConfig {
            max_relays: 1,
            rule: CommitRule::OneLevel,
        }
    }
}

impl Default for IndirectConfig {
    fn default() -> Self {
        IndirectConfig::full()
    }
}

/// A node running the indirect-report protocol.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, Torus};
/// use rbcast_protocols::{Indirect, IndirectConfig, Msg, ProtocolParams};
/// use rbcast_sim::{Network, Process};
///
/// let torus = Torus::for_radius(1);
/// let params = ProtocolParams {
///     source: torus.id(Coord::ORIGIN),
///     value: true,
///     t: 1, // the exact maximum for r = 1 (Theorem 1)
/// };
/// let mut net = Network::new(torus.clone(), 1, Metric::Linf, |_| {
///     Box::new(Indirect::new(params, IndirectConfig::simplified()))
///         as Box<dyn Process<Msg>>
/// });
/// net.run(10_000);
/// assert!(torus
///     .node_ids()
///     .all(|id| net.decision(id).map(|(v, _)| v) == Some(true)));
/// ```
#[derive(Debug)]
pub struct Indirect {
    params: ProtocolParams,
    config: IndirectConfig,
    evidence: EvidenceStore,
    /// First `COMMITTED` value heard per neighbor (§V: on contradiction,
    /// accept only the first).
    first_commit: BTreeMap<NodeId, Value>,
    /// Duplicate-`HEARD` short-circuit cache.
    seen: SeenCache,
    committed: bool,
}

impl Indirect {
    /// Creates the process.
    #[must_use]
    pub fn new(params: ProtocolParams, config: IndirectConfig) -> Self {
        Indirect {
            params,
            config,
            evidence: EvidenceStore::new(params.t, config.rule),
            first_commit: BTreeMap::new(),
            seen: SeenCache::new(),
            committed: false,
        }
    }

    /// Read-only access to the evidence store (for experiments).
    #[must_use]
    pub fn evidence(&self) -> &EvidenceStore {
        &self.evidence
    }

    /// Whether this node has committed.
    #[must_use]
    pub fn committed(&self) -> bool {
        self.committed
    }

    fn commit(&mut self, ctx: &mut Ctx<'_, Msg>, v: Value) {
        if !self.committed {
            self.committed = true;
            ctx.decide(v);
            ctx.broadcast(Msg::Committed(v));
        }
    }

    /// Handles an observed commit announcement by `committer` (either a
    /// direct `COMMITTED`, or the source's initial broadcast which
    /// doubles as its commit announcement).
    fn observe_commit(&mut self, ctx: &mut Ctx<'_, Msg>, committer: NodeId, v: Value) {
        // First announcement per neighbor only (duplicity is detectable
        // on a broadcast channel; everyone keeps the first).
        if self.first_commit.contains_key(&committer) {
            return;
        }
        self.first_commit.insert(committer, v);
        self.evidence.record_direct(committer, v);
        // Relay the report one hop, affixing our identifier.
        if self.config.max_relays >= 1 {
            ctx.broadcast(Msg::Heard(
                ChainRepr::direct(committer, v).extended(ctx.id()),
            ));
        }
    }

    /// Whether the chain (committer + relays + optionally us) can still
    /// fit inside a single neighborhood — if not, it can never be
    /// evidence and is not worth relaying or storing.
    fn fits_single_neighborhood(
        ctx: &Ctx<'_, Msg>,
        committer: Coord,
        relays: &[NodeId],
        include_self: bool,
    ) -> bool {
        let torus = ctx.torus();
        let r = ctx.radius();
        let metric = ctx.metric();
        // Work in displacement space relative to the committer (chain
        // members are always within a few hops, far from the wrap seam).
        // Chains are bounded at CHAIN_CAP relays, so the member list
        // (origin + relays + optionally us) lives on the stack.
        let mut members = [Coord::ORIGIN; CHAIN_CAP + 2];
        let mut n = 1;
        for &k in relays {
            members[n] = torus.displacement(committer, torus.coord(k));
            n += 1;
        }
        if include_self {
            members[n] = torus.displacement(committer, ctx.coord());
            n += 1;
        }
        let members = &members[..n];
        match metric {
            Metric::Linf => {
                // A lattice center within r of every member exists iff the
                // bounding box spans at most 2r per axis.
                let (mut min_x, mut max_x, mut min_y, mut max_y) = (0i64, 0i64, 0i64, 0i64);
                for m in members {
                    min_x = min_x.min(m.x);
                    max_x = max_x.max(m.x);
                    min_y = min_y.min(m.y);
                    max_y = max_y.max(m.y);
                }
                let span = 2 * i64::from(r);
                max_x - min_x <= span && max_y - min_y <= span
            }
            Metric::L2 => {
                // Scan candidate centers within r of the committer.
                let ri = i64::from(r);
                for dy in -ri..=ri {
                    for dx in -ri..=ri {
                        let c = Coord::new(dx, dy);
                        if !metric.within(Coord::ORIGIN, c, r) {
                            continue;
                        }
                        if members.iter().all(|&m| metric.within(c, m, r)) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }
}

impl Process<Msg> for Indirect {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Bind the evidence store to this node's ball-local committer
        // frame: any committer a valid chain can name is within 3r (2r
        // from the last relay, which is within r of us).
        self.evidence
            .bind(ctx.arena().local_frame(ctx.coord(), 3 * ctx.radius()));
        if ctx.id() == self.params.source {
            self.committed = true;
            ctx.decide(self.params.value);
            // The source's initial broadcast doubles as its commit
            // announcement; neighbors treat it as COMMITTED(source, v).
            ctx.broadcast(Msg::Source(self.params.value));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        match msg {
            Msg::Source(v) => {
                if from != self.params.source {
                    return; // only the designated source originates
                }
                // Source neighbors commit immediately (base case).
                self.commit(ctx, *v);
                self.observe_commit(ctx, from, *v);
            }
            Msg::Committed(v) => {
                self.observe_commit(ctx, from, *v);
            }
            Msg::Heard(chain) => {
                // Once committed, a maximum-length chain is dead on
                // arrival: it cannot be forwarded (forwarding requires
                // `len < max_relays`) and recording it is unreadable
                // (`on_round_end` never evaluates again; the commit
                // notes fired at commit time). Skipping it cannot
                // perturb a later forwardable chain's novelty either —
                // dominance needs the dominator's relay set contained
                // in the other's, so a longer chain never dominates a
                // shorter one. Shorter chains still record below, since
                // their extensions may serve nodes yet to commit. In a
                // fault-free run most deliveries are post-commit
                // re-reports, so this gate is the difference between
                // O(1) and a packer scan for the bulk of the traffic.
                if self.committed && chain.len() >= self.config.max_relays {
                    return;
                }
                // Validate: the last affixed relay must be the true
                // transmitter (mismatch = detectable forgery), the chain
                // must be sane, and we must not appear in it.
                if chain.last_relay() != Some(from) {
                    return;
                }
                if chain.len() > self.config.max_relays {
                    return;
                }
                let me = ctx.id();
                let committer = chain.committer();
                if committer == me || chain.contains_relay(me) || chain.contains_relay(committer) {
                    return;
                }
                let relays = chain.relays();
                // Repeated relay = degenerate chain. k ≤ max_relays ≤ 3,
                // so a quadratic scan beats clone + sort + dedup and
                // allocates nothing.
                if (1..relays.len()).any(|i| relays[..i].contains(&relays[i])) {
                    return;
                }
                // Exact-duplicate short-circuit: re-deliveries of a
                // chain we already fully processed skip the geometry
                // scan and the evidence store entirely.
                if self.seen.check_and_insert(chain) {
                    return;
                }
                let committer_coord = ctx.torus().coord(committer);
                if !Self::fits_single_neighborhood(ctx, committer_coord, relays, false) {
                    return; // can never be evidence for anyone
                }
                let new = self.evidence.record_chain(committer, chain.value(), relays);
                // Forward with our identifier affixed while the extended
                // chain remains potentially useful. If we heard the
                // committer's own COMMITTED, our one-relay report
                // `[me]` dominates every extension `[…, me]` at every
                // receiver, so deeper chains need not be forwarded —
                // the paper's "earmarking" state reduction. The packed
                // repr makes the fan-out a pure copy: extend in place,
                // no per-hop reallocation.
                if new
                    && !self.first_commit.contains_key(&committer)
                    && chain.len() < self.config.max_relays
                    && Self::fits_single_neighborhood(ctx, committer_coord, relays, true)
                {
                    ctx.broadcast(Msg::Heard(chain.extended(me)));
                }
            }
        }
    }

    fn on_round_end(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.committed {
            return;
        }
        let geo = Geometry::new(ctx.arena(), ctx.coord());
        if let Some(v) = self.evidence.evaluate(&geo) {
            // Trace the evidence the commit rested on: how many distinct
            // chains, and a digest of their contents (so divergent runs
            // can be compared on *what* evidence fired, not just volume).
            ctx.note("commit-evidence", self.evidence.chain_count() as u64);
            ctx.note("commit-digest", self.evidence.digest());
            self.commit(ctx, v);
        }
    }

    // The commit rule is a pure function of the evidence store, which
    // only grows in `on_message`: a round without deliveries cannot
    // change `evaluate`'s answer, so the sparse engine may skip the
    // round-end callback until the next delivery.
    fn needs_round_end(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::{Metric, Torus};
    use rbcast_sim::Network;

    fn honest_net(
        r: u32,
        t: usize,
        config: IndirectConfig,
        faulty: Vec<NodeId>,
        attacker: fn() -> Box<dyn Process<Msg>>,
    ) -> (Network<Msg>, Torus) {
        let torus = Torus::for_radius(r);
        let params = ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t,
        };
        let f = faulty.clone();
        let net = Network::new(torus.clone(), r, Metric::Linf, move |id| {
            if f.contains(&id) {
                attacker()
            } else {
                Box::new(Indirect::new(params, config)) as Box<dyn Process<Msg>>
            }
        });
        (net, torus)
    }

    #[test]
    fn fault_free_full_protocol_r1() {
        let (mut net, torus) = honest_net(1, 1, IndirectConfig::full(), vec![], || unreachable!());
        net.run(10_000);
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
        }
    }

    #[test]
    fn fault_free_simplified_protocol_r2() {
        let (mut net, torus) = honest_net(
            2,
            4,
            IndirectConfig::simplified(),
            vec![],
            || unreachable!(),
        );
        net.run(10_000);
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
        }
    }

    #[test]
    fn tolerates_max_t_silent_cluster_r1_full() {
        // r = 1: threshold t < 1.5, so t_max = 1.
        let torus = Torus::for_radius(1);
        let faulty = vec![torus.id(Coord::new(2, 0))];
        let (mut net, torus) = honest_net(
            1,
            1,
            IndirectConfig::full(),
            faulty.clone(),
            crate::attackers::silent,
        );
        net.run(10_000);
        for id in torus.node_ids() {
            if !faulty.contains(&id) {
                assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
            }
        }
    }

    #[test]
    fn tolerates_max_t_liar_cluster_r1_simplified() {
        let torus = Torus::for_radius(1);
        let faulty = vec![torus.id(Coord::new(2, 0))];
        let (mut net, torus) =
            honest_net(1, 1, IndirectConfig::simplified(), faulty.clone(), || {
                crate::attackers::liar(false)
            });
        net.run(10_000);
        for id in torus.node_ids() {
            if !faulty.contains(&id) {
                assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
            }
        }
    }

    /// Harness-driven validation tests: feed crafted HEARD messages and
    /// inspect exactly what is recorded and forwarded.
    mod validation {
        use super::*;
        use rbcast_sim::Harness;

        fn setup() -> (Harness<Msg>, Indirect, Torus) {
            let torus = Torus::for_radius(2);
            let me = torus.id(Coord::new(10, 10));
            let params = ProtocolParams {
                source: torus.id(Coord::ORIGIN),
                value: true,
                t: 1,
            };
            let proc = Indirect::new(params, IndirectConfig::full());
            (
                Harness::new(torus.clone(), 2, Metric::Linf, me),
                proc,
                torus,
            )
        }

        fn id(torus: &Torus, x: i64, y: i64) -> rbcast_grid::NodeId {
            torus.id(Coord::new(x, y))
        }

        #[test]
        fn valid_chain_is_recorded_and_forwarded() {
            let (mut h, mut p, torus) = setup();
            let committer = id(&torus, 13, 10);
            let relay = id(&torus, 11, 10);
            h.deliver(&mut p, relay, &Msg::heard(committer, true, &[relay]));
            assert_eq!(p.evidence().chain_count(), 1);
            let out = h.drain_outbox();
            assert_eq!(out.len(), 1);
            let me = id(&torus, 10, 10);
            match &out[0] {
                Msg::Heard(chain) => {
                    assert_eq!(chain.committer(), committer);
                    assert!(chain.value());
                    assert_eq!(chain.relays(), &[relay, me], "must affix own id last");
                }
                other => panic!("expected forwarded HEARD, got {other:?}"),
            }
        }

        #[test]
        fn wrong_last_relay_is_proof_of_fault_and_dropped() {
            let (mut h, mut p, torus) = setup();
            let committer = id(&torus, 13, 10);
            h.deliver(
                &mut p,
                id(&torus, 11, 10), // true transmitter
                // claims someone else relayed it
                &Msg::heard(committer, true, &[id(&torus, 12, 10)]),
            );
            assert_eq!(p.evidence().chain_count(), 0);
            assert!(h.drain_outbox().is_empty());
        }

        #[test]
        fn chain_containing_me_is_dropped() {
            let (mut h, mut p, torus) = setup();
            let me = id(&torus, 10, 10);
            let relay = id(&torus, 11, 10);
            h.deliver(
                &mut p,
                relay,
                // I never sent that
                &Msg::heard(id(&torus, 13, 10), true, &[me, relay]),
            );
            assert_eq!(p.evidence().chain_count(), 0);
        }

        #[test]
        fn chain_with_committer_as_relay_is_degenerate() {
            let (mut h, mut p, torus) = setup();
            let committer = id(&torus, 12, 10);
            let relay = id(&torus, 11, 10);
            h.deliver(
                &mut p,
                relay,
                &Msg::heard(committer, true, &[committer, relay]),
            );
            assert_eq!(p.evidence().chain_count(), 0);
        }

        #[test]
        fn repeated_relays_are_dropped() {
            let (mut h, mut p, torus) = setup();
            let relay = id(&torus, 11, 10);
            h.deliver(
                &mut p,
                relay,
                &Msg::heard(id(&torus, 13, 10), true, &[relay, relay]),
            );
            assert_eq!(p.evidence().chain_count(), 0);
        }

        #[test]
        fn over_length_chains_are_dropped() {
            let (mut h, mut p, torus) = setup();
            let last = id(&torus, 11, 10);
            h.deliver(
                &mut p,
                last,
                // 4 relays > max 3
                &Msg::heard(
                    id(&torus, 13, 13),
                    true,
                    &[
                        id(&torus, 13, 12),
                        id(&torus, 12, 11),
                        id(&torus, 12, 10),
                        last,
                    ],
                ),
            );
            assert_eq!(p.evidence().chain_count(), 0);
        }

        #[test]
        fn chains_that_fit_no_neighborhood_are_pruned() {
            let (mut h, mut p, torus) = setup();
            let last = id(&torus, 11, 10);
            // committer at (15, 15) is L∞ 5 from relay (11, 10): no ball
            // of radius 2 covers both
            h.deliver(&mut p, last, &Msg::heard(id(&torus, 15, 15), true, &[last]));
            assert_eq!(p.evidence().chain_count(), 0);
        }

        #[test]
        fn duplicate_chain_not_reforwarded() {
            let (mut h, mut p, torus) = setup();
            let relay = id(&torus, 11, 10);
            let msg = Msg::heard(id(&torus, 13, 10), true, &[relay]);
            h.deliver(&mut p, relay, &msg);
            let first = h.drain_outbox().len();
            h.deliver(&mut p, relay, &msg);
            assert_eq!(first, 1);
            assert!(h.drain_outbox().is_empty(), "duplicate was re-forwarded");
        }

        #[test]
        fn equivocating_committer_first_value_wins() {
            let (mut h, mut p, torus) = setup();
            let committer = id(&torus, 11, 10);
            h.deliver(&mut p, committer, &Msg::Committed(true));
            h.deliver(&mut p, committer, &Msg::Committed(false));
            // only the first announcement is recorded/relayed
            let outs = h.drain_outbox();
            assert_eq!(outs.len(), 1);
            match &outs[0] {
                Msg::Heard(chain) => assert!(chain.value()),
                other => panic!("expected HEARD, got {other:?}"),
            }
        }

        #[test]
        fn direct_observation_suppresses_deeper_forwarding() {
            let (mut h, mut p, torus) = setup();
            let committer = id(&torus, 11, 10);
            h.deliver(&mut p, committer, &Msg::Committed(true));
            let _ = h.drain_outbox();
            // a 1-relay chain about the same committer arrives: recorded
            // or dominated, but NOT forwarded (our [me] report dominates)
            let relay = id(&torus, 10, 11);
            h.deliver(&mut p, relay, &Msg::heard(committer, true, &[relay]));
            assert!(h.drain_outbox().is_empty());
        }

        #[test]
        fn source_message_from_non_source_ignored() {
            let (mut h, mut p, torus) = setup();
            h.deliver(&mut p, id(&torus, 11, 10), &Msg::Source(false));
            assert_eq!(h.decision(), None);
            assert!(h.drain_outbox().is_empty());
        }
    }

    #[test]
    fn safety_under_forgers_at_max_t_r1() {
        // Forgers fabricate chains for the wrong value; no honest node
        // may ever commit `false`.
        let torus = Torus::for_radius(1);
        let faulty = vec![torus.id(Coord::new(2, 2))];
        let (mut net, torus) = honest_net(1, 1, IndirectConfig::full(), faulty.clone(), || {
            crate::attackers::forger(false)
        });
        net.run(10_000);
        for id in torus.node_ids() {
            if !faulty.contains(&id) {
                if let Some((v, _)) = net.decision(id) {
                    assert!(v, "{id} committed the forged value");
                }
            }
        }
    }
}
