//! Reliable broadcast protocols for grid radio networks.
//!
//! Implements every protocol analysed in Bhandari & Vaidya,
//! *On Reliable Broadcast in a Radio Network* (PODC 2005):
//!
//! * [`Flood`] — the crash-stop protocol of §VII: commit to the first
//!   value heard, rebroadcast once. Tolerates every `t < r(2r+1)` (L∞,
//!   Theorems 4–5).
//! * [`Cpa`] — the simple protocol of §IX (Koo's protocol, the *Certified
//!   Propagation Algorithm*): commit after hearing the same value from
//!   `t+1` distinct neighbors. Theorem 6 guarantees `t ≤ ⅔·r²`.
//! * [`Indirect`] — the paper's main contribution (§VI): `HEARD` relay
//!   chains up to four hops carry indirect commit reports; a node commits
//!   once it reliably determines `t+1` committers inside one neighborhood,
//!   where reliable determination requires `t+1` node-disjoint report
//!   chains inside one neighborhood. Achieves the exact threshold
//!   `t < ½·r(2r+1)` (Theorem 1). The §VI-B *simplified* variant (2-hop
//!   reports) is [`IndirectConfig::simplified`]; the one-level commit
//!   rule ablation is [`CommitRule::OneLevel`].
//! * [`PersistentFlood`] — flooding with re-transmissions, the §X
//!   counter-measure to bounded jamming and channel loss.
//! * [`attackers`] — Byzantine node behaviours (silent, liar, forger,
//!   and the §X spoofer) used by the threshold experiments.
//!
//! # Example: CPA under a frontier cluster of silent faults
//!
//! ```
//! use rbcast_grid::{Coord, Metric, Torus};
//! use rbcast_sim::Network;
//! use rbcast_protocols::{attackers, Cpa, Msg, ProtocolParams};
//!
//! let torus = Torus::for_radius(2);
//! let source = torus.id(Coord::ORIGIN);
//! let params = ProtocolParams { source, value: true, t: 2 };
//! let faulty = [torus.id(Coord::new(4, 0)), torus.id(Coord::new(5, 0))];
//! let mut net = Network::new(torus.clone(), 2, Metric::Linf, |id| {
//!     if faulty.contains(&id) {
//!         attackers::silent()
//!     } else {
//!         Box::new(Cpa::new(params))
//!     }
//! });
//! net.run(200);
//! // every honest node commits to the source's value
//! for id in torus.node_ids() {
//!     if !faulty.contains(&id) {
//!         assert_eq!(net.decision(id).map(|(v, _)| v), Some(true));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attackers;
mod chain;
mod cpa;
mod evidence;
mod flood;
mod indirect;
mod msg;
mod persistent;

pub use chain::{ChainRepr, CHAIN_CAP};
pub use cpa::Cpa;
pub use evidence::{CommitRule, EvidenceStore, Geometry};
pub use flood::Flood;
pub use indirect::{Indirect, IndirectConfig};
pub use msg::Msg;
pub use persistent::PersistentFlood;

use rbcast_grid::NodeId;
use rbcast_sim::Value;

/// Parameters shared by every protocol instance in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolParams {
    /// The designated source node (the paper puts it at the origin).
    pub source: NodeId,
    /// The value the source broadcasts.
    pub value: Value,
    /// The locally bounded fault budget `t` the protocol is configured
    /// to tolerate.
    pub t: usize,
}
