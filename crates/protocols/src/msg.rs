//! The wire message vocabulary.

use rbcast_grid::NodeId;
use rbcast_sim::Value;

/// Messages exchanged by the broadcast protocols.
///
/// The sender identity is supplied by the channel (no spoofing), so
/// messages do not carry a separate sender field — except inside
/// [`Msg::Heard`] relay chains, where each forwarding node affixes its
/// identifier exactly as in §VI ("each forwarding node affixes its
/// identifier to the message"). Receivers verify that the last affixed
/// relay matches the true transmitter and discard mismatches as proof of
/// fault.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Msg {
    /// The source's initial local broadcast of its value.
    Source(Value),
    /// `COMMITTED(i, v)` — the transmitter announces it has committed to
    /// `v` (transmitted exactly once by honest nodes).
    Committed(Value),
    /// `HEARD(k_m, …, k_1, i, v)` — an indirect report that `committer`
    /// committed `value`, relayed along `relays` (committer-side first;
    /// the last entry is the transmitter itself).
    Heard {
        /// The node whose commit is being reported.
        committer: NodeId,
        /// The reported committed value.
        value: Value,
        /// The relay chain, committer-side first, transmitter last.
        relays: Vec<NodeId>,
    },
}

impl Msg {
    /// The value carried by this message.
    #[must_use]
    pub fn value(&self) -> Value {
        match self {
            Msg::Source(v) | Msg::Committed(v) => *v,
            Msg::Heard { value, .. } => *value,
        }
    }

    /// Short message-kind label for statistics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Source(_) => "SOURCE",
            Msg::Committed(_) => "COMMITTED",
            Msg::Heard { .. } => "HEARD",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_extraction() {
        assert!(Msg::Source(true).value());
        assert!(!Msg::Committed(false).value());
        let h = Msg::Heard {
            committer: NodeId(3),
            value: true,
            relays: vec![NodeId(1)],
        };
        assert!(h.value());
    }

    #[test]
    fn kinds_are_paper_names() {
        assert_eq!(Msg::Source(true).kind(), "SOURCE");
        assert_eq!(Msg::Committed(true).kind(), "COMMITTED");
        assert_eq!(
            Msg::Heard {
                committer: NodeId(0),
                value: false,
                relays: vec![]
            }
            .kind(),
            "HEARD"
        );
    }
}
