//! The wire message vocabulary.

use crate::chain::ChainRepr;
use rbcast_grid::NodeId;
use rbcast_sim::Value;

/// Messages exchanged by the broadcast protocols.
///
/// The sender identity is supplied by the channel (no spoofing), so
/// messages do not carry a separate sender field — except inside
/// [`Msg::Heard`] relay chains, where each forwarding node affixes its
/// identifier exactly as in §VI ("each forwarding node affixes its
/// identifier to the message"). Receivers verify that the last affixed
/// relay matches the true transmitter and discard mismatches as proof of
/// fault.
///
/// The whole enum is `Copy`: relay chains are packed inline
/// ([`ChainRepr`]), so broadcasting, queueing, and re-forwarding a
/// message never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// The source's initial local broadcast of its value.
    Source(Value),
    /// `COMMITTED(i, v)` — the transmitter announces it has committed to
    /// `v` (transmitted exactly once by honest nodes).
    Committed(Value),
    /// `HEARD(k_m, …, k_1, i, v)` — an indirect report that the chain's
    /// committer committed its value, relayed committer-side first; the
    /// last relay is the transmitter itself.
    Heard(ChainRepr),
}

impl Msg {
    /// Convenience constructor keeping the paper-shaped call sites: a
    /// `HEARD` report with explicit committer, value, and relay slice.
    ///
    /// # Panics
    ///
    /// Panics if `relays` exceeds [`crate::chain::CHAIN_CAP`].
    #[must_use]
    pub fn heard(committer: NodeId, value: Value, relays: &[NodeId]) -> Self {
        Msg::Heard(ChainRepr::new(committer, value, relays))
    }

    /// The value carried by this message.
    #[must_use]
    pub fn value(&self) -> Value {
        match self {
            Msg::Source(v) | Msg::Committed(v) => *v,
            Msg::Heard(chain) => chain.value(),
        }
    }

    /// Short message-kind label for statistics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Source(_) => "SOURCE",
            Msg::Committed(_) => "COMMITTED",
            Msg::Heard(_) => "HEARD",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_extraction() {
        assert!(Msg::Source(true).value());
        assert!(!Msg::Committed(false).value());
        let h = Msg::heard(NodeId(3), true, &[NodeId(1)]);
        assert!(h.value());
    }

    #[test]
    fn kinds_are_paper_names() {
        assert_eq!(Msg::Source(true).kind(), "SOURCE");
        assert_eq!(Msg::Committed(true).kind(), "COMMITTED");
        assert_eq!(Msg::heard(NodeId(0), false, &[]).kind(), "HEARD");
    }

    #[test]
    fn heard_exposes_chain_accessors() {
        let h = Msg::heard(NodeId(9), true, &[NodeId(4), NodeId(5)]);
        match h {
            Msg::Heard(chain) => {
                assert_eq!(chain.committer(), NodeId(9));
                assert_eq!(chain.relays(), &[NodeId(4), NodeId(5)]);
                assert_eq!(chain.last_relay(), Some(NodeId(5)));
            }
            other => panic!("expected HEARD, got {other:?}"),
        }
    }
}
