//! Persistent flooding — the §X counter-measure to disruption.
//!
//! "If the adversary uses collisions to merely disrupt communication,
//! the problem is trivially solved by re-transmitting messages a
//! sufficient number of times." This crash-stop flood re-broadcasts its
//! committed value for a configurable number of rounds, so a jammer with
//! a bounded per-round collision budget (or a lossy channel) cannot
//! permanently silence it.

use crate::{Msg, ProtocolParams};
use rbcast_grid::NodeId;
use rbcast_sim::{Ctx, Process};

/// Flooding with `repeats` re-transmissions per node.
#[derive(Debug, Clone)]
pub struct PersistentFlood {
    params: ProtocolParams,
    repeats: u32,
    sent: u32,
}

impl PersistentFlood {
    /// Creates the process; every node re-broadcasts its committed value
    /// `repeats` times in consecutive rounds.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    #[must_use]
    pub fn new(params: ProtocolParams, repeats: u32) -> Self {
        assert!(repeats >= 1, "repeats must be at least 1");
        PersistentFlood {
            params,
            repeats,
            sent: 0,
        }
    }
}

impl Process<Msg> for PersistentFlood {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if ctx.id() == self.params.source {
            ctx.decide(self.params.value);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: &Msg) {
        if !ctx.has_decided() {
            ctx.decide(msg.value());
        }
    }

    fn on_round_end(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Re-transmit while the budget lasts; decided nodes only.
        if self.sent < self.repeats {
            if let Some(v) = ctx.decision() {
                self.sent += 1;
                ctx.broadcast(Msg::Committed(v));
            }
        }
    }

    // A standing wakeup while the retransmission budget lasts: the
    // sparse engine must keep polling until `repeats` broadcasts have
    // gone out, after which the process is permanently quiescent at
    // round end. (Undecided polls are harmless no-ops either way.)
    fn needs_round_end(&self) -> bool {
        self.sent < self.repeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::{Coord, Metric, Torus};
    use rbcast_sim::{ChannelConfig, Network};

    fn params(torus: &Torus) -> ProtocolParams {
        ProtocolParams {
            source: torus.id(Coord::ORIGIN),
            value: true,
            t: 0,
        }
    }

    #[test]
    fn reliable_channel_full_coverage() {
        let torus = Torus::for_radius(1);
        let p = params(&torus);
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |_| {
            Box::new(PersistentFlood::new(p, 2)) as Box<dyn Process<Msg>>
        });
        let stats = net.run(1_000);
        assert!(stats.quiescent());
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true));
        }
        // every node transmits exactly `repeats` times
        assert_eq!(stats.messages_sent, 2 * torus.len() as u64);
    }

    #[test]
    fn survives_heavy_loss_with_redundant_retransmissions() {
        let torus = Torus::for_radius(1);
        let p = params(&torus);
        let channel = ChannelConfig::lossy(0.5, 2, 1234);
        let mut net = Network::new_with_channel(torus.clone(), 1, Metric::Linf, channel, |_| {
            Box::new(PersistentFlood::new(p, 6)) as Box<dyn Process<Msg>>
        });
        net.run(1_000);
        // per-neighbor delivery prob per round: 1 − 0.5² = 0.75; six
        // rounds of repeats from ≥3 decided neighbors make a miss
        // astronomically unlikely on a 12×12 torus.
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
        }
    }

    #[test]
    fn single_shot_flood_can_be_jammed_where_persistent_cannot() {
        let torus = Torus::for_radius(1);
        let p = params(&torus);
        let jammer = torus.id(Coord::new(3, 0));
        // budget 1: kills one transmission per round in its vicinity
        let channel = ChannelConfig::reliable().with_jammers(vec![jammer], 1);

        // persistent flood (4 repeats): everyone still decides
        let mut net =
            Network::new_with_channel(torus.clone(), 1, Metric::Linf, channel.clone(), |_| {
                Box::new(PersistentFlood::new(p, 4)) as Box<dyn Process<Msg>>
            });
        let stats = net.run(1_000);
        assert!(stats.jammed_deliveries > 0, "jammer never fired");
        for id in torus.node_ids() {
            assert_eq!(net.decision(id).map(|(v, _)| v), Some(true), "{id}");
        }
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected() {
        let torus = Torus::for_radius(1);
        let _ = PersistentFlood::new(params(&torus), 0);
    }
}
