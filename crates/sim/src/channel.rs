//! Channel imperfection models (§X of the paper, and the §II remark on
//! probabilistic local broadcast).
//!
//! The baseline model assumes *reliable local broadcast*: every
//! transmission reaches every neighbor, senders cannot be spoofed, and a
//! TDMA schedule rules out collisions. §X discusses what breaks when
//! these assumptions are relaxed; [`ChannelConfig`] makes each relaxation
//! available to experiments:
//!
//! * **Loss** — each delivery independently fails with probability
//!   `loss`; `redundancy` models the probabilistic local broadcast
//!   primitive built from `redundancy` link-layer retransmissions
//!   (delivery succeeds unless all attempts are lost, i.e. with
//!   probability `1 − loss^redundancy`).
//! * **Spoofing** — when enabled, a transmission may carry a forged
//!   sender identity (honest protocols never use this; Byzantine
//!   processes may, via [`crate::Ctx::broadcast_as`]).
//! * **Jamming** — each faulty node may destroy up to `jam_budget`
//!   transmissions *in total* by deliberate collision (§X considers the
//!   bounded-collisions regime; with an unbounded budget broadcast is
//!   impossible outright). A jammed transmission is lost at exactly the
//!   receivers within the jammer's range (receivers out of range still
//!   hear it).

use crate::Round;
use rbcast_grid::NodeId;

/// Configuration of the (possibly imperfect) broadcast channel.
///
/// [`ChannelConfig::default`] is the paper's baseline: perfectly
/// reliable, unspoofable, collision-free.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Per-attempt, per-receiver independent loss probability.
    pub loss: f64,
    /// Link-layer retransmissions backing each local broadcast (≥ 1).
    /// A delivery is lost only if all `redundancy` attempts are lost.
    pub redundancy: u32,
    /// Whether forged sender identities are honoured by the channel.
    pub spoofing: bool,
    /// Total deliberate collisions each faulty node may cause over the
    /// whole run (its collision "battery").
    pub jam_budget: u32,
    /// Nodes acting as jammers (normally the Byzantine placement).
    pub jammers: Vec<NodeId>,
    /// RNG seed for loss draws.
    pub seed: u64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            loss: 0.0,
            redundancy: 1,
            spoofing: false,
            jam_budget: 0,
            jammers: Vec::new(),
            seed: 0,
        }
    }
}

impl ChannelConfig {
    /// The paper's baseline reliable channel.
    #[must_use]
    pub fn reliable() -> Self {
        ChannelConfig::default()
    }

    /// A lossy channel with the probabilistic local broadcast primitive:
    /// per-receiver loss probability `loss`, masked by `redundancy`
    /// link-layer retransmissions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss < 1` and `redundancy ≥ 1`.
    #[must_use]
    pub fn lossy(loss: f64, redundancy: u32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        assert!(redundancy >= 1, "redundancy must be at least 1");
        ChannelConfig {
            loss,
            redundancy,
            seed,
            ..ChannelConfig::default()
        }
    }

    /// Enables forged sender identities (the §X spoofing relaxation).
    #[must_use]
    pub fn with_spoofing(mut self) -> Self {
        self.spoofing = true;
        self
    }

    /// Arms `jammers` with a lifetime battery of `budget` deliberate
    /// collisions each.
    #[must_use]
    pub fn with_jammers(mut self, jammers: Vec<NodeId>, budget: u32) -> Self {
        self.jammers = jammers;
        self.jam_budget = budget;
        self
    }

    /// Effective delivery probability of one local broadcast to one
    /// neighbor under this configuration (ignoring jamming).
    #[must_use]
    pub fn delivery_probability(&self) -> f64 {
        1.0 - self.loss.powi(self.redundancy as i32)
    }

    /// True iff this is the baseline reliable channel (used to skip the
    /// RNG on the hot path).
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0 && self.jam_budget == 0
    }
}

/// Deterministic per-delivery loss decision.
///
/// Derives an independent pseudo-random draw from
/// `(seed, round, transmission index, receiver)` with a splitmix-style
/// mix, so runs are reproducible without storing RNG state per edge.
#[must_use]
pub(crate) fn delivery_lost(
    cfg: &ChannelConfig,
    round: Round,
    tx_index: usize,
    receiver: NodeId,
) -> bool {
    if cfg.loss == 0.0 {
        return false;
    }
    let mut lost = true;
    for attempt in 0..cfg.redundancy {
        let mut x = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(round))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(tx_index as u64)
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(u64::from(receiver.0))
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(u64::from(attempt));
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= cfg.loss {
            lost = false;
            break;
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // the reliable channel's probability is exactly 1.0
    fn default_is_reliable() {
        let cfg = ChannelConfig::default();
        assert!(cfg.is_reliable());
        assert_eq!(cfg.delivery_probability(), 1.0);
        assert!(!delivery_lost(&cfg, 0, 0, NodeId(0)));
    }

    #[test]
    fn lossy_rates_are_plausible() {
        let cfg = ChannelConfig::lossy(0.3, 1, 42);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&i| delivery_lost(&cfg, 1, i, NodeId(7)))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn redundancy_masks_losses() {
        let cfg = ChannelConfig::lossy(0.5, 4, 42);
        assert!((cfg.delivery_probability() - 0.9375).abs() < 1e-12);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&i| delivery_lost(&cfg, 1, i, NodeId(7)))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.0625).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn draws_are_deterministic() {
        let cfg = ChannelConfig::lossy(0.4, 2, 9);
        for i in 0..100 {
            assert_eq!(
                delivery_lost(&cfg, 3, i, NodeId(11)),
                delivery_lost(&cfg, 3, i, NodeId(11))
            );
        }
    }

    #[test]
    fn draws_vary_across_receivers_and_rounds() {
        let cfg = ChannelConfig::lossy(0.5, 1, 1);
        let a: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 1, i, NodeId(1)))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 1, i, NodeId(2)))
            .collect();
        let c: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 2, i, NodeId(1)))
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn rejects_certain_loss() {
        let _ = ChannelConfig::lossy(1.0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "redundancy")]
    fn rejects_zero_redundancy() {
        let _ = ChannelConfig::lossy(0.1, 0, 0);
    }

    #[test]
    fn builder_composes() {
        let cfg = ChannelConfig::lossy(0.1, 2, 5)
            .with_spoofing()
            .with_jammers(vec![NodeId(3)], 2);
        assert!(cfg.spoofing);
        assert_eq!(cfg.jam_budget, 2);
        assert!(!cfg.is_reliable());
    }
}
