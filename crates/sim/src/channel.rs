//! Channel imperfection models (§X of the paper, and the §II remark on
//! probabilistic local broadcast).
//!
//! The baseline model assumes *reliable local broadcast*: every
//! transmission reaches every neighbor, senders cannot be spoofed, and a
//! TDMA schedule rules out collisions. §X discusses what breaks when
//! these assumptions are relaxed; [`ChannelConfig`] makes each relaxation
//! available to experiments:
//!
//! * **Loss** — each delivery independently fails with probability
//!   `loss`; `redundancy` models the probabilistic local broadcast
//!   primitive built from `redundancy` link-layer retransmissions
//!   (delivery succeeds unless all attempts are lost, i.e. with
//!   probability `1 − loss^redundancy`).
//! * **Spoofing** — when enabled, a transmission may carry a forged
//!   sender identity (honest protocols never use this; Byzantine
//!   processes may, via [`crate::Ctx::broadcast_as`]).
//! * **Jamming** — each faulty node may destroy up to `jam_budget`
//!   transmissions *in total* by deliberate collision (§X considers the
//!   bounded-collisions regime; with an unbounded budget broadcast is
//!   impossible outright). A jammed transmission is lost at exactly the
//!   receivers within the jammer's range (receivers out of range still
//!   hear it).
//! * **Burst loss** — a per-edge Gilbert–Elliot two-state Markov chain
//!   ([`BurstLoss`]) replaces the independent per-delivery coin: each
//!   directed edge is in a *good* or *bad* state, transitions once per
//!   round, and drops deliveries at the state's loss rate. Draws are a
//!   pure function of `(seed, edge, round)`, so runs replay exactly;
//!   the networked runtime's chaos shim shares the same chain via
//!   [`BurstChain`].

use crate::Round;
use rbcast_grid::NodeId;

/// Parameters of the Gilbert–Elliot two-state burst-loss chain.
///
/// Each directed edge `(sender, receiver)` carries an independent chain
/// that starts *good* at round 0 and makes one transition per round;
/// deliveries are then lost at the current state's loss rate. All draws
/// are pure in `(seed, edge, round)` — no chain state is stored, so two
/// runs over the same seed see byte-identical losses regardless of
/// engine, thread count, or query order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Per-round probability of a good edge turning bad.
    pub p_good_to_bad: f64,
    /// Per-round probability of a bad edge recovering (mean burst
    /// length is `1 / p_bad_to_good` rounds).
    pub p_bad_to_good: f64,
    /// Per-attempt loss probability while the edge is good.
    pub loss_good: f64,
    /// Per-attempt loss probability while the edge is bad.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A burst model with a loss-free good state.
    ///
    /// # Panics
    ///
    /// Panics unless all probabilities lie in `[0, 1]` (and
    /// `loss_bad < 1` is *not* required — a fully opaque bad state is
    /// the classic Gilbert model).
    #[must_use]
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        BurstLoss {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        }
    }

    /// Chain state of `edge` after `step` transitions (true = bad),
    /// computed by walking the chain from its good start — a pure
    /// function of `(seed, edge, step)`.
    #[must_use]
    pub fn state_at(&self, seed: u64, edge: (u32, u32), step: u64) -> bool {
        let mut bad = false;
        for s in 1..=step {
            bad = self.next_state(bad, seed, edge, s);
        }
        bad
    }

    /// One transition of the chain: the state at `step` given the state
    /// at `step − 1`.
    fn next_state(&self, bad: bool, seed: u64, edge: (u32, u32), step: u64) -> bool {
        let draw = mix_unit(
            seed ^ STREAM_TRANSITION,
            u64::from(edge.0),
            u64::from(edge.1),
            step,
        );
        if bad {
            draw >= self.p_bad_to_good
        } else {
            draw < self.p_good_to_bad
        }
    }

    /// The per-attempt loss probability in the given state.
    #[must_use]
    pub fn loss_prob(&self, bad: bool) -> f64 {
        if bad {
            self.loss_bad
        } else {
            self.loss_good
        }
    }

    /// Stationary probability of the bad state,
    /// `p_gb / (p_gb + p_bg)` — handy for sizing experiments.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }
}

/// Incrementally advanced Gilbert–Elliot chain for one directed edge.
///
/// [`BurstLoss::state_at`] walks from round 0 on every query — exact but
/// O(step). A long-lived consumer tracking one edge (the networked
/// chaos shim, which queries per datagram) keeps a `BurstChain` and
/// advances it monotonically instead; the state sequence is identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct BurstChain {
    step: u64,
    bad: bool,
}

impl BurstChain {
    /// A chain at step 0 (good state).
    #[must_use]
    pub fn new() -> Self {
        BurstChain::default()
    }

    /// Advances the chain to `step` (monotonic) and returns its state
    /// there (true = bad). Matches [`BurstLoss::state_at`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `step` is behind a previously queried step — the chain
    /// only moves forward.
    pub fn bad_at(&mut self, model: &BurstLoss, seed: u64, edge: (u32, u32), step: u64) -> bool {
        assert!(
            step >= self.step,
            "burst chain queried backwards ({} after {})",
            step,
            self.step
        );
        while self.step < step {
            self.step += 1;
            self.bad = model.next_state(self.bad, seed, edge, self.step);
        }
        self.bad
    }
}

/// Configuration of the (possibly imperfect) broadcast channel.
///
/// [`ChannelConfig::default`] is the paper's baseline: perfectly
/// reliable, unspoofable, collision-free.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Per-attempt, per-receiver independent loss probability.
    pub loss: f64,
    /// Link-layer retransmissions backing each local broadcast (≥ 1).
    /// A delivery is lost only if all `redundancy` attempts are lost.
    pub redundancy: u32,
    /// Whether forged sender identities are honoured by the channel.
    pub spoofing: bool,
    /// Total deliberate collisions each faulty node may cause over the
    /// whole run (its collision "battery").
    pub jam_budget: u32,
    /// Nodes acting as jammers (normally the Byzantine placement).
    pub jammers: Vec<NodeId>,
    /// RNG seed for loss draws.
    pub seed: u64,
    /// Gilbert–Elliot burst-loss chain; `None` keeps the independent
    /// per-delivery coin of `loss`.
    pub burst: Option<BurstLoss>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            loss: 0.0,
            redundancy: 1,
            spoofing: false,
            jam_budget: 0,
            jammers: Vec::new(),
            seed: 0,
            burst: None,
        }
    }
}

impl ChannelConfig {
    /// The paper's baseline reliable channel.
    #[must_use]
    pub fn reliable() -> Self {
        ChannelConfig::default()
    }

    /// A lossy channel with the probabilistic local broadcast primitive:
    /// per-receiver loss probability `loss`, masked by `redundancy`
    /// link-layer retransmissions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss < 1` and `redundancy ≥ 1`.
    #[must_use]
    pub fn lossy(loss: f64, redundancy: u32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        assert!(redundancy >= 1, "redundancy must be at least 1");
        ChannelConfig {
            loss,
            redundancy,
            seed,
            ..ChannelConfig::default()
        }
    }

    /// A bursty channel: the deterministic Gilbert–Elliot extension of
    /// [`ChannelConfig::lossy`]. Per-edge chains replace the independent
    /// coin; `redundancy` retransmissions still mask individual losses
    /// (but not a bad state with `loss_bad = 1`, which is exactly the
    /// point of modelling bursts).
    #[must_use]
    pub fn bursty(burst: BurstLoss, seed: u64) -> Self {
        ChannelConfig {
            burst: Some(burst),
            seed,
            ..ChannelConfig::default()
        }
    }

    /// Enables forged sender identities (the §X spoofing relaxation).
    #[must_use]
    pub fn with_spoofing(mut self) -> Self {
        self.spoofing = true;
        self
    }

    /// Arms `jammers` with a lifetime battery of `budget` deliberate
    /// collisions each.
    #[must_use]
    pub fn with_jammers(mut self, jammers: Vec<NodeId>, budget: u32) -> Self {
        self.jammers = jammers;
        self.jam_budget = budget;
        self
    }

    /// Effective delivery probability of one local broadcast to one
    /// neighbor under this configuration (ignoring jamming).
    #[must_use]
    pub fn delivery_probability(&self) -> f64 {
        1.0 - self.loss.powi(self.redundancy as i32)
    }

    /// True iff this is the baseline reliable channel (used to skip the
    /// RNG on the hot path).
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0 && self.jam_budget == 0 && self.burst.is_none()
    }
}

/// Stream separator for burst-chain transition draws (vs loss draws),
/// so the two per-edge random sequences never correlate.
const STREAM_TRANSITION: u64 = 0x5851_F42D_4C95_7F2D;
/// Stream separator for burst-mode per-attempt loss draws.
const STREAM_BURST_LOSS: u64 = 0x1405_7B7E_F767_814F;

/// A uniform draw in `[0, 1)`, pure in `(seed, a, b, c)` — the same
/// splitmix-style mix the independent-loss path uses.
fn mix_unit(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(b)
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(c)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic per-delivery loss decision.
///
/// Derives an independent pseudo-random draw from
/// `(seed, round, transmission index, receiver)` with a splitmix-style
/// mix, so runs are reproducible without storing RNG state per edge.
/// Under a [`BurstLoss`] model the per-attempt loss probability is the
/// `(sender, receiver)` edge's current chain state's rate instead of
/// the flat `loss`.
#[must_use]
pub(crate) fn delivery_lost(
    cfg: &ChannelConfig,
    round: Round,
    tx_index: usize,
    sender: NodeId,
    receiver: NodeId,
) -> bool {
    if let Some(burst) = &cfg.burst {
        let bad = burst.state_at(cfg.seed, (sender.0, receiver.0), u64::from(round));
        let p = burst.loss_prob(bad);
        if p <= 0.0 {
            return false;
        }
        for attempt in 0..cfg.redundancy {
            let draw = mix_unit(
                cfg.seed ^ STREAM_BURST_LOSS,
                u64::from(round)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(tx_index as u64),
                u64::from(receiver.0),
                u64::from(attempt),
            );
            if draw >= p {
                return false;
            }
        }
        return true;
    }
    if cfg.loss == 0.0 {
        return false;
    }
    let mut lost = true;
    for attempt in 0..cfg.redundancy {
        let mut x = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(round))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(tx_index as u64)
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(u64::from(receiver.0))
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(u64::from(attempt));
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= cfg.loss {
            lost = false;
            break;
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // the reliable channel's probability is exactly 1.0
    fn default_is_reliable() {
        let cfg = ChannelConfig::default();
        assert!(cfg.is_reliable());
        assert_eq!(cfg.delivery_probability(), 1.0);
        assert!(!delivery_lost(&cfg, 0, 0, NodeId(1), NodeId(0)));
    }

    #[test]
    fn lossy_rates_are_plausible() {
        let cfg = ChannelConfig::lossy(0.3, 1, 42);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&i| delivery_lost(&cfg, 1, i, NodeId(1), NodeId(7)))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn redundancy_masks_losses() {
        let cfg = ChannelConfig::lossy(0.5, 4, 42);
        assert!((cfg.delivery_probability() - 0.9375).abs() < 1e-12);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&i| delivery_lost(&cfg, 1, i, NodeId(1), NodeId(7)))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.0625).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn draws_are_deterministic() {
        let cfg = ChannelConfig::lossy(0.4, 2, 9);
        for i in 0..100 {
            assert_eq!(
                delivery_lost(&cfg, 3, i, NodeId(1), NodeId(11)),
                delivery_lost(&cfg, 3, i, NodeId(1), NodeId(11))
            );
        }
    }

    #[test]
    fn draws_vary_across_receivers_and_rounds() {
        let cfg = ChannelConfig::lossy(0.5, 1, 1);
        let a: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 1, i, NodeId(0), NodeId(1)))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 1, i, NodeId(0), NodeId(2)))
            .collect();
        let c: Vec<bool> = (0..64)
            .map(|i| delivery_lost(&cfg, 2, i, NodeId(0), NodeId(1)))
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn rejects_certain_loss() {
        let _ = ChannelConfig::lossy(1.0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "redundancy")]
    fn rejects_zero_redundancy() {
        let _ = ChannelConfig::lossy(0.1, 0, 0);
    }

    #[test]
    fn builder_composes() {
        let cfg = ChannelConfig::lossy(0.1, 2, 5)
            .with_spoofing()
            .with_jammers(vec![NodeId(3)], 2);
        assert!(cfg.spoofing);
        assert_eq!(cfg.jam_budget, 2);
        assert!(!cfg.is_reliable());
    }

    fn gilbert() -> BurstLoss {
        BurstLoss::new(0.05, 0.2, 0.0, 1.0)
    }

    #[test]
    fn bursty_channel_is_not_reliable() {
        let cfg = ChannelConfig::bursty(gilbert(), 7);
        assert!(!cfg.is_reliable());
        assert!(cfg.burst.is_some());
        // The flat independent coin stays off; losses come from the chain.
        assert!((cfg.loss - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn burst_states_match_the_stationary_distribution() {
        let model = gilbert();
        let expected = model.stationary_bad();
        assert!((expected - 0.2).abs() < 1e-12);
        let mut bad = 0u64;
        let steps = 4_000u64;
        let edges = 16u32;
        for e in 0..edges {
            for s in 1..=steps {
                if model.state_at(42, (e, e + 1), s) {
                    bad += 1;
                }
            }
        }
        let rate = bad as f64 / (steps * u64::from(edges)) as f64;
        assert!((rate - expected).abs() < 0.03, "bad-state rate {rate}");
    }

    #[test]
    fn burst_losses_come_in_runs() {
        // Mean bad-burst length must track 1/p_bad_to_good — the whole
        // point of the Gilbert–Elliot model vs an independent coin.
        let model = gilbert();
        let mut runs = 0u64;
        let mut bad_steps = 0u64;
        for e in 0..16u32 {
            let mut prev = false;
            for s in 1..=4_000u64 {
                let bad = model.state_at(9, (e, 0), s);
                if bad {
                    bad_steps += 1;
                    if !prev {
                        runs += 1;
                    }
                }
                prev = bad;
            }
        }
        assert!(runs > 0);
        let mean_len = bad_steps as f64 / runs as f64;
        assert!(
            (mean_len - 5.0).abs() < 1.0,
            "mean burst length {mean_len}, expected ≈ 5"
        );
    }

    #[test]
    fn incremental_chain_matches_pure_walk() {
        let model = BurstLoss::new(0.1, 0.3, 0.02, 0.9);
        let edge = (3u32, 8u32);
        let mut chain = BurstChain::new();
        for step in [0u64, 1, 2, 5, 6, 40, 41, 100] {
            assert_eq!(
                chain.bad_at(&model, 77, edge, step),
                model.state_at(77, edge, step),
                "step {step}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "queried backwards")]
    fn incremental_chain_rejects_rewind() {
        let model = gilbert();
        let mut chain = BurstChain::new();
        let _ = chain.bad_at(&model, 1, (0, 1), 10);
        let _ = chain.bad_at(&model, 1, (0, 1), 9);
    }

    #[test]
    fn burst_draws_are_deterministic_and_edge_keyed() {
        let cfg = ChannelConfig::bursty(BurstLoss::new(0.3, 0.3, 0.05, 0.95), 5);
        let a: Vec<bool> = (0..200)
            .map(|i| delivery_lost(&cfg, (i % 40) as Round, i, NodeId(1), NodeId(2)))
            .collect();
        let b: Vec<bool> = (0..200)
            .map(|i| delivery_lost(&cfg, (i % 40) as Round, i, NodeId(1), NodeId(2)))
            .collect();
        let c: Vec<bool> = (0..200)
            .map(|i| delivery_lost(&cfg, (i % 40) as Round, i, NodeId(3), NodeId(2)))
            .collect();
        assert_eq!(a, b, "same inputs must draw identically");
        assert_ne!(a, c, "a different sender keys a different chain");
    }

    #[test]
    fn opaque_bad_state_loses_everything_while_bad() {
        // loss_bad = 1, loss_good = 0: a delivery is lost iff the edge's
        // chain is bad at that round, independent of redundancy.
        let model = gilbert();
        let mut cfg = ChannelConfig::bursty(model, 11);
        cfg.redundancy = 3;
        for round in 1..200u32 {
            let bad = model.state_at(11, (4, 9), u64::from(round));
            assert_eq!(
                delivery_lost(&cfg, round, 0, NodeId(4), NodeId(9)),
                bad,
                "round {round}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "p_bad_to_good must be in")]
    fn burst_rejects_out_of_range_probability() {
        let _ = BurstLoss::new(0.1, 1.5, 0.0, 1.0);
    }
}
