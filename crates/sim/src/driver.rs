//! Transport-agnostic protocol drivers: the bridge between [`Process`]
//! implementations and whatever carries their messages.
//!
//! The dense/sparse [`crate::Network`] is one driver of [`Process`]
//! logic — it owns all nodes and plays the shared radio medium itself.
//! A networked runtime is another: each OS process owns *one* node and
//! real sockets carry the messages. Both must present identical
//! semantics to the protocol:
//!
//! * round `k`'s deliveries are the messages broadcast during round
//!   `k − 1`, presented in global transmission order (TDMA slot order
//!   across senders — [`transmission_order`] — FIFO per sender);
//! * `on_round_end` runs after all of a round's deliveries, under the
//!   sparse-engine quiescence contract ([`Process::needs_round_end`]);
//! * round 0 is `on_start` plus an unconditional first `on_round_end`.
//!
//! [`NodeDriver`] packages those semantics for a single node so a
//! transport can stay protocol-agnostic: inject deliveries, call
//! [`NodeDriver::end_round`], ship the returned broadcasts. Because the
//! round schedule is deterministic and the callbacks are pure state
//! machines, a driver fed the same per-round deliveries as a `Network`
//! node reproduces its decisions *exactly* — the property the networked
//! runtime's golden parity tests pin down.
//!
//! [`InstanceHost`] multiplexes many concurrent broadcast instances
//! (keyed by [`InstanceId`], an `(origin, sequence)` pair) over one
//! node, mirroring how a serving system runs many broadcasts at once
//! over the same topology.

use crate::process::{DecisionLedger, NodeState};
use crate::{Ctx, Process, Round, Value};
use rbcast_grid::{NeighborTable, NodeId, TdmaSchedule};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies one broadcast instance among many running concurrently:
/// the originating node plus a per-origin sequence number (the
/// "identifier = sender + sequence" scheme of classic reliable
/// broadcast implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The node that originates this broadcast (the protocol's source).
    pub origin: NodeId,
    /// Per-origin sequence number distinguishing concurrent broadcasts.
    pub seq: u32,
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// The global transmission order every driver must deliver in: TDMA
/// slot order when a periodic schedule fits the torus, id order
/// otherwise (the model guarantees collision-freedom either way).
///
/// Extracted from the `Network` constructor so the sim engine and the
/// networked runtime sort by the *same* schedule — a receiver sorting
/// its round-`k` arrivals by these ranks reproduces the sim's delivery
/// order restricted to its own neighborhood.
#[must_use]
pub fn transmission_order(arena: &NeighborTable) -> Vec<NodeId> {
    let torus = arena.torus();
    let mut order: Vec<NodeId> = torus.node_ids().collect();
    if let Ok(tdma) = TdmaSchedule::new(torus, arena.radius()) {
        order.sort_by_key(|&id| (tdma.slot_of(torus.coord(id)), id));
    }
    order
}

/// Inverse of [`transmission_order`]: `ranks[id.index()]` is `id`'s
/// position in the schedule.
#[must_use]
pub fn transmission_ranks(order: &[NodeId], n: usize) -> Vec<u32> {
    let mut rank_of = vec![0u32; n];
    for (rank, &id) in order.iter().enumerate() {
        rank_of[id.index()] = u32::try_from(rank).expect("node count fits u32");
    }
    rank_of
}

/// A transport-agnostic driver of one node's protocol logic: the step
/// contract shared by the sim engine and the networked runtime.
pub trait ProtocolDriver<M> {
    /// Injects one round-`k` delivery (a message broadcast by neighbor
    /// `from` during round `k − 1`). The caller presents a round's
    /// deliveries in global transmission order.
    fn deliver(&mut self, from: NodeId, msg: &M);

    /// Closes the current round: runs `on_round_end` under the sparse
    /// quiescence contract, advances the round counter, and returns the
    /// broadcasts queued this round (to be delivered next round).
    fn end_round(&mut self) -> Vec<M>;

    /// The decision recorded so far, with the round it was made in.
    fn decision(&self) -> Option<(Value, Round)>;

    /// The current round counter (rounds fully closed so far).
    fn round(&self) -> Round;
}

/// Drives a single [`Process`] with exact `Network` round semantics.
///
/// Construction runs `on_start` (round 0); the first
/// [`NodeDriver::end_round`] call unconditionally runs the round-0
/// `on_round_end` — both engines run round 0 dense — and later rounds
/// honour [`Process::needs_round_end`] exactly like the sparse engine:
/// the callback fires iff the node heard something this round or asked
/// to stay awake at its last callback.
///
/// Broadcast identities are not forwarded: a networked node cannot
/// spoof its link-layer identity, matching the paper's unforgeable
/// sender assumption, so only payloads leave the driver.
pub struct NodeDriver<M> {
    arena: Arc<NeighborTable>,
    id: NodeId,
    proc: Box<dyn Process<M>>,
    state: NodeState<M>,
    round: Round,
    messages_sent: u64,
    ledger: DecisionLedger,
    delivered: bool,
    wake: bool,
}

impl<M> std::fmt::Debug for NodeDriver<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeDriver")
            .field("id", &self.id)
            .field("round", &self.round)
            .field("decision", &self.state.decision)
            .finish_non_exhaustive()
    }
}

impl<M> NodeDriver<M> {
    /// Creates the driver and runs the process's `on_start` (round 0).
    #[must_use]
    pub fn new(arena: Arc<NeighborTable>, id: NodeId, proc: Box<dyn Process<M>>) -> Self {
        let n = arena.len();
        let mut driver = NodeDriver {
            arena,
            id,
            proc,
            state: NodeState::default(),
            round: 0,
            messages_sent: 0,
            ledger: DecisionLedger::new(n),
            delivered: false,
            wake: false,
        };
        driver.with_ctx(|proc, ctx| proc.on_start(ctx));
        driver
    }

    fn with_ctx<F: FnOnce(&mut dyn Process<M>, &mut Ctx<'_, M>)>(&mut self, f: F) {
        let arena = Arc::clone(&self.arena);
        let mut ctx = Ctx {
            id: self.id,
            coord: arena.torus().coord(self.id),
            arena: &arena,
            round: self.round,
            state: &mut self.state,
            messages_sent: &mut self.messages_sent,
            ledger: &mut self.ledger,
        };
        f(self.proc.as_mut(), &mut ctx);
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total broadcasts performed by the process so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl<M> ProtocolDriver<M> for NodeDriver<M> {
    fn deliver(&mut self, from: NodeId, msg: &M) {
        self.delivered = true;
        self.with_ctx(|proc, ctx| proc.on_message(ctx, from, msg));
    }

    fn end_round(&mut self) -> Vec<M> {
        // Round 0 runs dense under both engines; afterwards the sparse
        // quiescence contract applies: fire iff delivered-to or awake.
        if self.round == 0 || self.delivered || self.wake {
            self.with_ctx(|proc, ctx| proc.on_round_end(ctx));
            // Re-read the standing-wakeup declaration only after a
            // callback actually ran (the contract forbids spontaneous
            // changes in between).
            self.wake = self.proc.needs_round_end();
        }
        self.delivered = false;
        self.round += 1;
        self.state.outbox.drain(..).map(|(_, m)| m).collect()
    }

    fn decision(&self) -> Option<(Value, Round)> {
        self.state.decision
    }

    fn round(&self) -> Round {
        self.round
    }
}

/// Hosts every broadcast instance one node participates in, keyed by
/// [`InstanceId`] — the multi-instance map of the networked runtime.
///
/// All instances advance in lockstep: [`InstanceHost::end_round`]
/// closes the round for every driver and returns the union of their
/// broadcasts, tagged by instance, in `InstanceId` order (deterministic
/// across all hosts, so every receiver can reconstruct per-sender FIFO
/// order per instance).
pub struct InstanceHost<M> {
    arena: Arc<NeighborTable>,
    id: NodeId,
    round: Round,
    drivers: BTreeMap<InstanceId, NodeDriver<M>>,
}

impl<M> std::fmt::Debug for InstanceHost<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceHost")
            .field("id", &self.id)
            .field("round", &self.round)
            .field("instances", &self.drivers.len())
            .finish()
    }
}

impl<M> InstanceHost<M> {
    /// An empty host for node `id`.
    #[must_use]
    pub fn new(arena: Arc<NeighborTable>, id: NodeId) -> Self {
        InstanceHost {
            arena,
            id,
            round: 0,
            drivers: BTreeMap::new(),
        }
    }

    /// Registers instance `inst` with its process (running `on_start`).
    ///
    /// # Panics
    ///
    /// Panics after the first [`InstanceHost::end_round`] — the
    /// instance set is part of the run's configuration, known to every
    /// node up front, so late registration would desynchronise round 0.
    pub fn spawn(&mut self, inst: InstanceId, proc: Box<dyn Process<M>>) {
        assert!(
            self.round == 0,
            "instances must be spawned before round 0 closes"
        );
        let driver = NodeDriver::new(Arc::clone(&self.arena), self.id, proc);
        self.drivers.insert(inst, driver);
    }

    /// Delivers one message to instance `inst`; returns `false` (and
    /// does nothing) when the instance is unknown — the caller counts
    /// that as a protocol error from the peer.
    pub fn deliver(&mut self, inst: InstanceId, from: NodeId, msg: &M) -> bool {
        match self.drivers.get_mut(&inst) {
            Some(driver) => {
                driver.deliver(from, msg);
                true
            }
            None => false,
        }
    }

    /// Closes the round for every instance, returning all queued
    /// broadcasts tagged by instance, in `InstanceId` order.
    pub fn end_round(&mut self) -> Vec<(InstanceId, M)> {
        let mut out = Vec::new();
        for (&inst, driver) in &mut self.drivers {
            for m in driver.end_round() {
                out.push((inst, m));
            }
        }
        self.round += 1;
        out
    }

    /// Every decided instance as `(instance, value, round decided)`.
    #[must_use]
    pub fn decisions(&self) -> Vec<(InstanceId, Value, Round)> {
        self.drivers
            .iter()
            .filter_map(|(&inst, d)| d.decision().map(|(v, r)| (inst, v, r)))
            .collect()
    }

    /// Rounds fully closed so far.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of hosted instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.drivers.len()
    }

    /// True iff no instance is hosted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drivers.is_empty()
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The shared topology arena.
    #[must_use]
    pub fn arena(&self) -> &Arc<NeighborTable> {
        &self.arena
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a digest over a decision set: entries are sorted by
/// `(instance, node)` first, so any enumeration order of the same
/// decisions folds to the same digest. The sim oracle and the networked
/// runtime both report this digest; equality is the byte-level parity
/// criterion.
#[must_use]
pub fn commit_digest(decisions: &[(InstanceId, NodeId, Value, Round)]) -> u64 {
    let mut sorted: Vec<_> = decisions.to_vec();
    sorted.sort_unstable();
    let mut h = FNV_OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for &(inst, node, value, round) in &sorted {
        eat(u64::from(inst.origin.0));
        eat(u64::from(inst.seq));
        eat(u64::from(node.0));
        eat(u64::from(value));
        eat(u64::from(round));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;
    use rbcast_grid::{Coord, Metric, Torus};

    /// The doc-comment flood process: decide-and-forward the first
    /// value heard (sim cannot depend on rbcast-protocols — that would
    /// be a cycle — so parity tests use a local protocol).
    struct Flood {
        origin: bool,
        done: bool,
    }

    impl Process<bool> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<'_, bool>) {
            if self.origin {
                ctx.decide(true);
                ctx.broadcast(true);
                self.done = true;
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, bool>, _from: NodeId, &v: &bool) {
            if !self.done {
                self.done = true;
                ctx.decide(v);
                ctx.broadcast(v);
            }
        }
        fn needs_round_end(&self) -> bool {
            false
        }
    }

    fn arena() -> Arc<NeighborTable> {
        Arc::new(NeighborTable::build(&Torus::new(12, 12), 2, Metric::Linf))
    }

    /// Drives one NodeDriver per node by hand — deliver each round's
    /// broadcasts in transmission order — and checks the decisions
    /// (values *and* rounds) equal a `Network` run of the same setup.
    #[test]
    fn hand_driven_drivers_reproduce_network_decisions() {
        let arena = arena();
        let torus = arena.torus().clone();
        let source = torus.id(Coord::new(3, 4));
        let n = torus.len();

        let mut net =
            Network::with_arena(Arc::clone(&arena), crate::ChannelConfig::reliable(), |id| {
                Box::new(Flood {
                    origin: id == source,
                    done: false,
                }) as Box<dyn Process<bool>>
            });
        net.run(50);
        let expect: Vec<Option<(Value, Round)>> =
            torus.node_ids().map(|id| net.decision(id)).collect();

        let order = transmission_order(&arena);
        let mut drivers: Vec<NodeDriver<bool>> = torus
            .node_ids()
            .map(|id| {
                NodeDriver::new(
                    Arc::clone(&arena),
                    id,
                    Box::new(Flood {
                        origin: id == source,
                        done: false,
                    }),
                )
            })
            .collect();

        // Round k: close round k−1 everywhere (collecting outboxes),
        // then deliver in global transmission order.
        for _round in 0..50 {
            let outs: Vec<Vec<bool>> = drivers.iter_mut().map(NodeDriver::end_round).collect();
            let mut any = false;
            for &sender in &order {
                for &m in &outs[sender.index()] {
                    any = true;
                    for &rid in arena.neighbors(sender) {
                        drivers[rid.index()].deliver(sender, &m);
                    }
                }
            }
            if !any {
                break;
            }
        }
        let got: Vec<Option<(Value, Round)>> = (0..n).map(|i| drivers[i].decision()).collect();
        assert_eq!(got, expect, "driver decisions diverge from the network");
    }

    #[test]
    fn instance_host_isolates_instances() {
        let arena = arena();
        let torus = arena.torus().clone();
        let me = torus.id(Coord::new(5, 5));
        let neighbor = torus.id(Coord::new(6, 5));
        let a = InstanceId {
            origin: neighbor,
            seq: 0,
        };
        let b = InstanceId {
            origin: neighbor,
            seq: 1,
        };
        let mut host = InstanceHost::new(Arc::clone(&arena), me);
        host.spawn(
            a,
            Box::new(Flood {
                origin: false,
                done: false,
            }),
        );
        host.spawn(
            b,
            Box::new(Flood {
                origin: false,
                done: false,
            }),
        );
        assert_eq!(host.len(), 2);
        // Round 0 closes with nothing to say (non-origin everywhere).
        assert!(host.end_round().is_empty());
        // A delivery to instance `a` only wakes instance `a`.
        assert!(host.deliver(a, neighbor, &true));
        let out = host.end_round();
        assert_eq!(out, vec![(a, true)]);
        let decisions = host.decisions();
        assert_eq!(decisions, vec![(a, true, 1)]);
        // Unknown instances are rejected, not created.
        let unknown = InstanceId { origin: me, seq: 9 };
        assert!(!host.deliver(unknown, neighbor, &true));
    }

    #[test]
    #[should_panic(expected = "before round 0 closes")]
    fn late_spawn_is_rejected() {
        let arena = arena();
        let me = arena.torus().id(Coord::ORIGIN);
        let mut host: InstanceHost<bool> = InstanceHost::new(Arc::clone(&arena), me);
        host.end_round();
        host.spawn(
            InstanceId { origin: me, seq: 0 },
            Box::new(Flood {
                origin: true,
                done: false,
            }),
        );
    }

    #[test]
    fn commit_digest_is_order_insensitive_and_content_sensitive() {
        let i0 = InstanceId {
            origin: NodeId(1),
            seq: 0,
        };
        let i1 = InstanceId {
            origin: NodeId(1),
            seq: 1,
        };
        let a = vec![(i0, NodeId(2), true, 3), (i1, NodeId(4), false, 5)];
        let b = vec![(i1, NodeId(4), false, 5), (i0, NodeId(2), true, 3)];
        assert_eq!(commit_digest(&a), commit_digest(&b));
        let c = vec![(i0, NodeId(2), true, 4), (i1, NodeId(4), false, 5)];
        assert_ne!(commit_digest(&a), commit_digest(&c));
        assert_ne!(commit_digest(&a), commit_digest(&a[..1]));
    }

    #[test]
    fn transmission_ranks_invert_the_order() {
        let arena = arena();
        let order = transmission_order(&arena);
        let ranks = transmission_ranks(&order, arena.len());
        for (rank, &id) in order.iter().enumerate() {
            assert_eq!(ranks[id.index()] as usize, rank);
        }
    }
}
