//! Single-node driver for unit-testing [`Process`] implementations.
//!
//! A [`Harness`] hosts one process and lets a test (or an interactive
//! tool) feed it messages and inspect its outputs without standing up a
//! whole [`crate::Network`]. The protocols crate uses it to pin down
//! message-validation behaviour hop by hop.

use crate::process::{DecisionLedger, NodeState};
use crate::{Ctx, Process, Round, Value};
use rbcast_grid::{Metric, NeighborTable, NodeId, Torus};

/// Drives a single [`Process`] with hand-crafted inputs.
///
/// # Example
///
/// ```
/// use rbcast_grid::{Coord, Metric, NodeId, Torus};
/// use rbcast_sim::{Ctx, Harness, Process};
///
/// struct Echo;
/// impl Process<u32> for Echo {
///     fn on_start(&mut self, _ctx: &mut Ctx<'_, u32>) {}
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, m: &u32) {
///         ctx.broadcast(m + 1);
///     }
/// }
///
/// let torus = Torus::new(12, 12);
/// let me = torus.id(Coord::new(5, 5));
/// let mut harness = Harness::new(torus.clone(), 2, Metric::Linf, me);
/// let mut proc = Echo;
/// harness.deliver(&mut proc, torus.id(Coord::new(6, 5)), &41);
/// assert_eq!(harness.drain_outbox(), vec![42]);
/// ```
#[derive(Debug)]
pub struct Harness<M> {
    arena: NeighborTable,
    id: NodeId,
    state: NodeState<M>,
    round: Round,
    messages_sent: u64,
    ledger: DecisionLedger,
}

impl<M> Harness<M> {
    /// Creates a harness for the node `id` on `torus` (building a
    /// private topology arena for it).
    #[must_use]
    pub fn new(torus: Torus, radius: u32, metric: Metric, id: NodeId) -> Self {
        let n = torus.len();
        Harness {
            arena: NeighborTable::build(&torus, radius, metric),
            id,
            state: NodeState::default(),
            round: 0,
            messages_sent: 0,
            ledger: DecisionLedger::new(n),
        }
    }

    fn with_ctx<F: FnOnce(&mut Ctx<'_, M>)>(&mut self, f: F) {
        let mut ctx = Ctx {
            id: self.id,
            coord: self.arena.torus().coord(self.id),
            arena: &self.arena,
            round: self.round,
            state: &mut self.state,
            messages_sent: &mut self.messages_sent,
            ledger: &mut self.ledger,
        };
        f(&mut ctx);
    }

    /// Invokes the process's `on_start`.
    pub fn start(&mut self, proc: &mut dyn Process<M>) {
        self.with_ctx(|ctx| proc.on_start(ctx));
    }

    /// Delivers one message (as if transmitted by `from`).
    pub fn deliver(&mut self, proc: &mut dyn Process<M>, from: NodeId, msg: &M) {
        self.with_ctx(|ctx| proc.on_message(ctx, from, msg));
    }

    /// Invokes `on_round_end` and advances the round counter.
    pub fn end_round(&mut self, proc: &mut dyn Process<M>) {
        self.with_ctx(|ctx| proc.on_round_end(ctx));
        self.round += 1;
    }

    /// Takes everything the process has queued for broadcast (payloads
    /// only; claimed identities are dropped — use
    /// [`Harness::drain_outbox_claimed`] to observe spoofing attempts).
    pub fn drain_outbox(&mut self) -> Vec<M> {
        self.state.outbox.drain(..).map(|(_, m)| m).collect()
    }

    /// Takes the queued broadcasts with their claimed sender identities.
    pub fn drain_outbox_claimed(&mut self) -> Vec<(NodeId, M)> {
        self.state.outbox.drain(..).collect()
    }

    /// The decision recorded so far, if any.
    #[must_use]
    pub fn decision(&self) -> Option<Value> {
        self.state.decision.map(|(v, _)| v)
    }

    /// Takes the protocol-level trace notes recorded via
    /// [`Ctx::note`] since the last drain.
    pub fn drain_notes(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.state.notes)
    }

    /// Total broadcasts the process has performed.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The current round counter.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::Coord;

    struct Repeater;
    impl Process<u8> for Repeater {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            ctx.broadcast(1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: NodeId, m: &u8) {
            ctx.broadcast(*m);
            if *m == 9 {
                ctx.decide(true);
            }
        }
    }

    fn harness() -> (Harness<u8>, Torus) {
        let torus = Torus::new(12, 12);
        let me = torus.id(Coord::new(4, 4));
        (Harness::new(torus.clone(), 2, Metric::Linf, me), torus)
    }

    #[test]
    fn start_and_deliver_flow() {
        let (mut h, torus) = harness();
        let mut p = Repeater;
        h.start(&mut p);
        assert_eq!(h.drain_outbox(), vec![1]);
        h.deliver(&mut p, torus.id(Coord::new(5, 4)), &9);
        assert_eq!(h.drain_outbox(), vec![9]);
        assert_eq!(h.decision(), Some(true));
        assert_eq!(h.messages_sent(), 2);
    }

    #[test]
    fn rounds_advance_on_end_round() {
        let (mut h, _torus) = harness();
        let mut p = Repeater;
        assert_eq!(h.round(), 0);
        h.end_round(&mut p);
        h.end_round(&mut p);
        assert_eq!(h.round(), 2);
    }

    #[test]
    fn claimed_identities_visible() {
        struct Spoof;
        impl Process<u8> for Spoof {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                ctx.broadcast_as(NodeId(7), 3);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: NodeId, _: &u8) {}
        }
        let (mut h, _) = harness();
        let mut p = Spoof;
        h.start(&mut p);
        assert_eq!(h.drain_outbox_claimed(), vec![(NodeId(7), 3)]);
    }
}
