//! Synchronous radio-network simulator implementing the paper's channel
//! model (§II): an idealized shared medium where a local broadcast is
//! heard, reliably and in per-sender FIFO order, by every node within
//! transmission radius `r`, with no collisions (a pre-determined TDMA
//! schedule orders transmissions) and no address spoofing (receivers
//! always learn the true sender identity).
//!
//! Protocols implement the [`Process`] trait; Byzantine nodes are simply
//! adversarial `Process` implementations (they can send arbitrary
//! messages — but, faithfully to the model, they *cannot* forge their
//! sender identity and *cannot* send different bits to different
//! neighbors in one transmission). Crash-stop faults are modelled with
//! [`Network::crash_at`].
//!
//! Beyond the baseline model, [`ChannelConfig`] provides the §X
//! relaxations (independent losses masked by a redundancy primitive,
//! forged sender identities, bounded deliberate collisions),
//! [`Network::history`] records the per-round wavefront, and
//! [`Harness`] drives a single `Process` for unit tests.
//!
//! # Example
//!
//! ```
//! use rbcast_grid::{Coord, Metric, Torus};
//! use rbcast_sim::{Ctx, Network, Process};
//!
//! // A one-shot flooding process: forward the first value heard.
//! struct Flood { origin: bool, done: bool }
//! impl Process<bool> for Flood {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, bool>) {
//!         if self.origin {
//!             ctx.decide(true);
//!             ctx.broadcast(true);
//!             self.done = true;
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, bool>, _from: rbcast_grid::NodeId, &v: &bool) {
//!         if !self.done {
//!             self.done = true;
//!             ctx.decide(v);
//!             ctx.broadcast(v);
//!         }
//!     }
//! }
//!
//! let torus = Torus::new(12, 12);
//! let source = torus.id(Coord::ORIGIN);
//! let mut net = Network::new(torus, 2, Metric::Linf, |id| {
//!     Box::new(Flood { origin: id == source, done: false }) as Box<dyn Process<bool>>
//! });
//! let stats = net.run(100);
//! assert!(stats.quiescent());
//! assert!(net.decisions().iter().all(|d| d.map(|(v, _)| v) == Some(true)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
pub mod driver;
mod harness;
mod network;
mod process;
mod stats;
pub mod trace;

pub use channel::{BurstChain, BurstLoss, ChannelConfig};
pub use driver::{InstanceHost, InstanceId, NodeDriver, ProtocolDriver};
pub use harness::Harness;
pub use network::{EngineKind, Network};
pub use process::{Ctx, Process};
pub use stats::{RoundReport, RunStats, StopReason};

/// The broadcast payload domain: the paper's message is a binary value.
pub type Value = bool;

/// Simulation round counter.
pub type Round = u32;
