//! The synchronous round-based network engine.

use crate::channel::delivery_lost;
use crate::process::{DecisionLedger, NodeState};
use crate::trace::{TraceEvent, TraceSink, FNV_OFFSET};
use crate::{ChannelConfig, Ctx, Process, Round, RoundReport, RunStats, StopReason, Value};
use rbcast_grid::{BitSet, Metric, NeighborTable, NodeId, Torus};
use std::sync::Arc;

/// Sentinel for "never crashes" in the SoA crash array: no real crash
/// round can reach it, so `crashed_at[i] <= round` is the whole test.
const NEVER: Round = Round::MAX;

/// Which round loop drives [`Network::run`].
///
/// Both engines execute the same model and are **byte-identical** in
/// every observable: trace hash, event stream, [`RunStats`], history,
/// per-kind tallies, decisions. The sparse engine is the default; the
/// dense loop survives as the parity oracle the determinism gate runs
/// both engines against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Event-driven sparse wavefront loop: only *frontier* nodes — those
    /// delivered to this round, plus those whose process declared a
    /// pending self-wakeup via [`Process::needs_round_end`] — run
    /// `on_round_end` and have their outboxes collected. Cost per round
    /// is proportional to the wavefront, not the torus area.
    #[default]
    Sparse,
    /// The original every-node-every-round loop. Kept behind the
    /// `--dense` escape hatch as a test oracle.
    Dense,
}

/// The T2 ground truth a run is audited against: the source's value and
/// the set of faulty nodes. Only consulted under `debug-invariants`.
#[cfg_attr(not(feature = "debug-invariants"), allow(dead_code))]
struct SafetyOracle {
    truth: Value,
    faulty: Vec<bool>,
}

/// One transmission on the air: the true sender, the identity the
/// channel reports to receivers (differs only under the §X spoofing
/// relaxation), and the payload.
#[derive(Debug, Clone)]
struct Transmission<M> {
    sender: NodeId,
    claimed: NodeId,
    msg: M,
}

/// A finite toroidal radio network executing one [`Process`] per node.
///
/// Execution proceeds in synchronous rounds:
///
/// 1. messages queued in round `k` are *on the air* and delivered at the
///    start of round `k+1`, in TDMA slot order across senders and FIFO
///    order per sender — every receiver observes the same order,
///    reproducing the broadcast-channel ordering guarantee of §II;
/// 2. each alive node's [`Process::on_message`] runs per delivery, then
///    [`Process::on_round_end`] runs once;
/// 3. outboxes are collected for the next round; nodes crashed at or
///    before the current round transmit nothing.
///
/// The run ends at quiescence (nothing on the air) or after `max_rounds`.
pub struct Network<M> {
    /// The shared topology arena: torus, radius, metric, and the CSR
    /// neighbor table, immutable and possibly shared with other
    /// networks (and threads) running the same geometry.
    arena: Arc<NeighborTable>,
    order: Vec<NodeId>,
    /// TDMA rank of each node: `rank_of[id.index()]` is `id`'s position
    /// in `order`. Lets the sparse engine sort a frontier into
    /// transmission order without consulting the schedule.
    rank_of: Vec<u32>,
    engine: EngineKind,
    processes: Vec<Option<Box<dyn Process<M>>>>,
    states: Vec<NodeState<M>>,
    /// SoA crash schedule: round at which each node crash-stops,
    /// [`NEVER`] if it doesn't. Replaces a `Vec<Option<Round>>` so the
    /// per-delivery liveness test is one compare on a dense `u32` array.
    crashed_at: Vec<Round>,
    channel: ChannelConfig,
    /// Remaining collision battery per jammer (parallel to
    /// `channel.jammers`).
    jam_remaining: Vec<u32>,
    history: Vec<RoundReport>,
    /// FNV-1a fold over every delivery and per-round decision count —
    /// two runs with identical inputs must produce identical hashes.
    trace_hash: u64,
    /// T2 safety oracle (see [`Network::set_safety_oracle`]); the
    /// assertion itself only compiles under `debug-invariants`.
    oracle: Option<SafetyOracle>,
    classifier: Option<fn(&M) -> &'static str>,
    kind_counts: std::collections::BTreeMap<&'static str, u64>,
    /// Incremental decision bookkeeping: decided bitset, completion
    /// mask, and popcount-maintained counters, updated by [`Ctx::decide`]
    /// at the moment a node commits. Replaces both the O(n) per-round
    /// decided recount and the O(n) completion-mask scan.
    ledger: DecisionLedger,
    early_termination: bool,
    /// Cooperative per-run deadline set by the supervisor (see
    /// [`Network::set_round_budget`]): the watchdog that turns a runaway
    /// run into a structured `DeadlineExceeded` verdict instead of
    /// letting it idle all the way to `max_rounds`.
    round_budget: Option<Round>,
    /// Set at the end of the round in which every masked node has
    /// decided. From then on `trace_mix` is a no-op, so a run that stops
    /// early and one that idles to quiescence hash identically.
    hash_frozen: bool,
    messages_sent: u64,
    deliveries: u64,
    lost_deliveries: u64,
    jammed_deliveries: u64,
    jammed_transmissions: u64,
    /// Optional structured-event consumer (see [`crate::trace`]). `None`
    /// is the null sink: non-hashed events are never even constructed,
    /// so an untraced run pays only a branch per site.
    sink: Option<Box<dyn TraceSink>>,
    /// Sparse-engine scratch: nodes that had a message delivered to them
    /// this round. Cleared every round.
    delivered: BitSet,
    /// Sparse-engine scratch: nodes whose process answered `true` to
    /// [`Process::needs_round_end`] at its last callback — pending
    /// self-wakeups. Refreshed after every callback the engine runs.
    wake: BitSet,
    /// Sparse-engine scratch: the current round's frontier
    /// (`delivered ∪ wake`, minus crashed), sorted into TDMA rank order.
    frontier: Vec<NodeId>,
    /// Reusable per-round jammer assignment (parallel to the on-air
    /// vector): which jammer, if any, collides each transmission.
    /// Hoisted out of the round loop — same pattern as `PackScratch`.
    jam_scratch: Vec<Option<NodeId>>,
}

impl<M> Network<M> {
    /// Builds a network over `torus` with transmission radius `radius`
    /// under `metric`, instantiating each node's process with `make`.
    ///
    /// # Panics
    ///
    /// Panics if the torus is too small to emulate the infinite grid at
    /// this radius (see [`Torus::supports_radius`]).
    pub fn new<F>(torus: Torus, radius: u32, metric: Metric, make: F) -> Self
    where
        F: FnMut(NodeId) -> Box<dyn Process<M>>,
    {
        Network::new_with_channel(torus, radius, metric, ChannelConfig::reliable(), make)
    }

    /// [`Network::new`] with an explicit (possibly imperfect) channel
    /// configuration — the §X relaxations.
    ///
    /// # Panics
    ///
    /// Panics if the torus is too small for the radius.
    pub fn new_with_channel<F>(
        torus: Torus,
        radius: u32,
        metric: Metric,
        channel: ChannelConfig,
        make: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> Box<dyn Process<M>>,
    {
        let arena = Arc::new(NeighborTable::build(&torus, radius, metric));
        Network::with_arena(arena, channel, make)
    }

    /// Builds a network over a prebuilt (possibly shared) topology
    /// arena: the zero-rebuild construction path the sweep engine uses.
    /// The arena carries the torus, radius, and metric; construction
    /// performs no neighborhood computation at all.
    pub fn with_arena<F>(arena: Arc<NeighborTable>, channel: ChannelConfig, mut make: F) -> Self
    where
        F: FnMut(NodeId) -> Box<dyn Process<M>>,
    {
        let torus = arena.torus();
        let n = torus.len();
        // Transmission order: TDMA slot order when a periodic schedule
        // fits this torus, id order otherwise (the model guarantees
        // collision-freedom either way). Shared with the networked
        // runtime via the driver module so both sort identically.
        let order = crate::driver::transmission_order(&arena);
        let rank_of = crate::driver::transmission_ranks(&order, n);
        let processes = torus.node_ids().map(|id| Some(make(id))).collect();
        let states = (0..n).map(|_| NodeState::default()).collect();
        Network {
            arena,
            order,
            rank_of,
            engine: EngineKind::default(),
            processes,
            states,
            crashed_at: vec![NEVER; n],
            jam_remaining: vec![channel.jam_budget; channel.jammers.len()],
            channel,
            history: Vec::new(),
            trace_hash: FNV_OFFSET,
            oracle: None,
            classifier: None,
            kind_counts: std::collections::BTreeMap::new(),
            ledger: DecisionLedger::new(n),
            early_termination: false,
            round_budget: None,
            hash_frozen: false,
            messages_sent: 0,
            deliveries: 0,
            lost_deliveries: 0,
            jammed_deliveries: 0,
            jammed_transmissions: 0,
            sink: None,
            delivered: BitSet::new(n),
            wake: BitSet::new(n),
            frontier: Vec::new(),
            jam_scratch: Vec::new(),
        }
    }

    /// The torus.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        self.arena.torus()
    }

    /// The transmission radius.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.arena.radius()
    }

    /// The metric in force.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.arena.metric()
    }

    /// The shared topology arena.
    #[must_use]
    pub fn arena(&self) -> &Arc<NeighborTable> {
        &self.arena
    }

    /// Precomputed neighborhood of `id`.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.arena.neighbors(id)
    }

    /// Declares the set of nodes whose decisions complete the run
    /// (typically the honest nodes). At the end of the first round in
    /// which all of them have decided, the delivery-trace hash freezes;
    /// with [`Network::set_early_termination`] the run also stops there
    /// instead of idling on to quiescence or `max_rounds`. Installing
    /// the mask without enabling early termination changes no decision
    /// and no hash *relative to the early-terminating run* — that
    /// equivalence is what the determinism gate pins.
    pub fn set_completion_mask(&mut self, nodes: &[NodeId]) {
        let mut mask = BitSet::new(self.arena.len());
        for id in nodes {
            mask.set(id.index());
        }
        self.ledger.set_mask(Some(mask));
    }

    /// Selects the round loop (see [`EngineKind`]). Both engines are
    /// observationally identical; the dense loop exists as a parity
    /// oracle and costs torus-area work per round.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The engine currently selected.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Enables or disables early termination at the completion round
    /// (no-op unless a completion mask is installed).
    pub fn set_early_termination(&mut self, on: bool) {
        self.early_termination = on;
    }

    /// Installs the supervisor's cooperative deadline: the run is cut
    /// off after `budget` rounds even if messages remain on the air, and
    /// [`RunStats::stop_reason`] reports
    /// [`StopReason::DeadlineExceeded`] so the caller can distinguish a
    /// watchdog trip from the experiment's own `max_rounds` cap. A
    /// budget at or above `max_rounds` never binds (the cap wins and is
    /// reported as [`StopReason::RoundCap`]); a budget generous enough
    /// for the run to finish changes nothing at all — neither the trace
    /// hash nor any decision.
    pub fn set_round_budget(&mut self, budget: Option<Round>) {
        self.round_budget = budget;
    }

    /// Schedules a crash-stop fault: the node performs no actions (no
    /// callbacks, no transmissions) from round `round` onward. `round 0`
    /// means the node never participates.
    pub fn crash_at(&mut self, id: NodeId, round: Round) {
        let slot = &mut self.crashed_at[id.index()];
        *slot = (*slot).min(round);
    }

    /// Whether `id` is crashed as of round `round`.
    #[must_use]
    pub fn is_crashed(&self, id: NodeId, round: Round) -> bool {
        self.crashed_at[id.index()] <= round
    }

    /// Runs the simulation until quiescence or `max_rounds`, returning
    /// run statistics.
    pub fn run(&mut self, max_rounds: Round) -> RunStats {
        // A network may be run more than once (processes, decisions,
        // crash schedules, and jam batteries persist); everything that
        // describes *a run* — history, counters, the trace hash and its
        // freeze — restarts from zero so `history.len() == stats.rounds`
        // and per-kind tallies hold for every run, not just the first.
        self.history.clear();
        self.trace_hash = FNV_OFFSET;
        self.hash_frozen = false;
        self.messages_sent = 0;
        self.deliveries = 0;
        self.lost_deliveries = 0;
        self.jammed_deliveries = 0;
        self.jammed_transmissions = 0;
        self.kind_counts.clear();
        // Decisions persist across runs; seed the fresh-list with every
        // node already decided so a traced re-run re-announces them at
        // round 0, exactly as the dense scan used to after its
        // `decided_seen` reset.
        {
            let mut fresh = std::mem::take(&mut self.ledger.fresh);
            fresh.clear();
            self.ledger.decided.for_each(|idx| fresh.push(idx));
            self.ledger.fresh = fresh;
        }

        // Hot-path de-allocation: `order` is moved out of `self` and the
        // arena handle cloned (one refcount bump) for the duration of
        // the run, so deliveries can borrow the receiver slice and the
        // on-air message while `with_ctx` borrows `self` mutably — no
        // per-transmission receiver-list clone and no per-delivery
        // message clone.
        let order = std::mem::take(&mut self.order);
        let arena = Arc::clone(&self.arena);
        let sparse = self.engine == EngineKind::Sparse;

        // Round 0 runs dense under both engines: every process gets its
        // `on_start` and first `on_round_end` regardless of traffic.
        for &id in &order {
            if !self.is_crashed(id, 0) {
                self.with_ctx(id, 0, |proc, ctx| proc.on_start(ctx));
            }
        }
        for &id in &order {
            if !self.is_crashed(id, 0) {
                self.with_ctx(id, 0, |proc, ctx| proc.on_round_end(ctx));
            }
        }
        if sparse {
            // Seed the wake set: ask every live process once whether it
            // wants round-end callbacks without traffic. From here on the
            // answer is only re-read after a callback actually runs (the
            // contract forbids spontaneous changes in between).
            self.wake.clear_all();
            self.delivered.clear_all();
            for &id in &order {
                if !self.is_crashed(id, 0) && self.process(id).needs_round_end() {
                    self.wake.set(id.index());
                }
            }
        }
        // Round-0 decisions (e.g. a source committing at start-up)
        // predate the first delivery round; surface them in the stream.
        self.scan_decisions(0);
        let mut on_air = self.collect_transmissions(&order, 0);

        let mut round: Round = 0;
        let mut early_stopped = false;
        // The watchdog deadline binds only below the experiment's own
        // cap; at or above it the cap is the limiting factor.
        let deadline = self.round_budget.filter(|&b| b < max_rounds);
        let cap = deadline.unwrap_or(max_rounds);
        while !on_air.is_empty() && round < cap {
            round += 1;
            let deliveries_before = self.deliveries;
            let decided_before = self.ledger.decided_count;
            // Deliberate collisions (§X): each jammer destroys up to its
            // budget of this round's transmissions, greedily in order; a
            // jammed transmission is lost exactly at receivers within the
            // jammer's range.
            self.assign_jammers(&arena, &on_air, round);
            self.jammed_transmissions += self.jam_scratch.iter().flatten().count() as u64;
            if self.tracing() {
                self.emit(TraceEvent::RoundStart {
                    round,
                    on_air: on_air.len() as u64,
                });
            }
            if sparse {
                self.delivered.clear_all();
            }
            // Deliver everything on the air, in global transmission
            // order, walking each sender's fan-out as a flat CSR slice.
            for (tx_index, tx) in on_air.iter().enumerate() {
                if self.tracing() {
                    self.emit(TraceEvent::Transmission {
                        round,
                        index: tx_index as u64,
                        sender: tx.sender.index() as u64,
                        claimed: tx.claimed.index() as u64,
                    });
                }
                for &rid in arena.neighbors(tx.sender) {
                    if self.is_crashed(rid, round) {
                        continue;
                    }
                    if let Some(jammer) = self.jam_scratch[tx_index] {
                        if arena.torus().within(
                            arena.torus().coord(jammer),
                            arena.torus().coord(rid),
                            arena.radius(),
                            arena.metric(),
                        ) {
                            self.jammed_deliveries += 1;
                            if self.tracing() {
                                self.emit(TraceEvent::Jammed {
                                    round,
                                    index: tx_index as u64,
                                    receiver: rid.index() as u64,
                                    jammer: jammer.index() as u64,
                                });
                            }
                            continue;
                        }
                    }
                    if delivery_lost(&self.channel, round, tx_index, tx.sender, rid) {
                        self.lost_deliveries += 1;
                        if self.tracing() {
                            self.emit(TraceEvent::Lost {
                                round,
                                index: tx_index as u64,
                                receiver: rid.index() as u64,
                            });
                        }
                        continue;
                    }
                    self.deliveries += 1;
                    self.emit(TraceEvent::Delivery {
                        round,
                        index: tx_index as u64,
                        receiver: rid.index() as u64,
                        claimed: tx.claimed.index() as u64,
                    });
                    if sparse {
                        self.delivered.set(rid.index());
                    }
                    self.with_ctx(rid, round, |proc, ctx| {
                        proc.on_message(ctx, tx.claimed, &tx.msg);
                    });
                }
            }
            // Round end. Sparse: gather the frontier (delivered ∪ wake,
            // minus crashed), sort it into TDMA rank order — the same
            // relative order the dense sweep visits — and run callbacks
            // only there. Dense: sweep every live node.
            if sparse {
                let mut frontier = std::mem::take(&mut self.frontier);
                frontier.clear();
                {
                    let delivered = &self.delivered;
                    let wake = &self.wake;
                    delivered.for_each_union(wake, |idx| frontier.push(NodeId(idx)));
                }
                {
                    // Crash-stop is permanent: drop crashed nodes from
                    // the frontier and retire their standing wakeups.
                    let crashed_at = &self.crashed_at;
                    let wake = &mut self.wake;
                    frontier.retain(|id| {
                        if crashed_at[id.index()] <= round {
                            wake.clear(id.index());
                            false
                        } else {
                            true
                        }
                    });
                }
                {
                    let rank_of = &self.rank_of;
                    frontier.sort_unstable_by_key(|id| rank_of[id.index()]);
                }
                for &id in &frontier {
                    self.with_ctx(id, round, |proc, ctx| proc.on_round_end(ctx));
                    // Re-read the quiescence declaration now that the
                    // callback may have changed the process's state.
                    if self.process(id).needs_round_end() {
                        self.wake.set(id.index());
                    } else {
                        self.wake.clear(id.index());
                    }
                }
                self.frontier = frontier;
            } else {
                for &id in &order {
                    if !self.is_crashed(id, round) {
                        self.with_ctx(id, round, |proc, ctx| proc.on_round_end(ctx));
                    }
                }
            }
            let decided_after = self.scan_decisions(round);
            // Completion check, before the round-end fold so the event
            // can carry the freeze marker — but applied only *after*
            // folding, so the hash freezes at the same round whether or
            // not early termination is on and both modes hash
            // identically. O(1): the ledger's popcounts replace the old
            // zip scan over the whole mask.
            let frozen_after =
                self.hash_frozen || (self.ledger.mask.is_some() && self.ledger.mask_complete());
            self.emit(TraceEvent::RoundEnd {
                round,
                decided: decided_after,
                frozen: frozen_after,
            });
            self.hash_frozen = frozen_after;
            self.check_safety(round);
            self.check_decided_counter(round);
            self.history.push(RoundReport {
                round,
                transmissions: on_air.len() as u64,
                deliveries: self.deliveries - deliveries_before,
                decisions: decided_after - decided_before,
            });
            // Collect before the early-exit check so everything a
            // process emitted is classified and counted: per-kind
            // tallies sum to `messages_sent` in both termination modes.
            //
            // Sparse: only frontier nodes ran a callback this round, and
            // outboxes are drained every round, so the frontier (already
            // in TDMA rank order) is exactly the set of possibly
            // non-empty outboxes — collecting it yields the identical
            // transmission vector the dense full sweep would.
            on_air = if sparse {
                let frontier = std::mem::take(&mut self.frontier);
                let out = self.collect_transmissions(&frontier, round);
                self.frontier = frontier;
                out
            } else {
                self.collect_transmissions(&order, round)
            };
            if self.hash_frozen && self.early_termination {
                early_stopped = !on_air.is_empty();
                break;
            }
        }
        self.order = order;
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }

        let stop_reason = if on_air.is_empty() {
            StopReason::Quiescent
        } else if early_stopped {
            StopReason::AllDecided
        } else if deadline.is_some_and(|b| round >= b) {
            StopReason::DeadlineExceeded
        } else {
            StopReason::RoundCap
        };
        RunStats {
            rounds: round,
            stop_reason,
            messages_sent: self.messages_sent,
            deliveries: self.deliveries,
            lost_deliveries: self.lost_deliveries,
            jammed_deliveries: self.jammed_deliveries,
            jammed_transmissions: self.jammed_transmissions,
        }
    }

    /// True while a trace sink is installed. Sites that emit non-hashed
    /// events guard on this so the null sink costs one branch and no
    /// event construction.
    #[inline]
    fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// The single funnel for trace events: folds the event's hash
    /// contribution (unless the hash is frozen) and forwards it to the
    /// sink. Routing every fold through here is what keeps the FNV hash
    /// and the event stream structurally incapable of diverging.
    fn emit(&mut self, event: TraceEvent) {
        if !self.hash_frozen {
            event.fold_into(&mut self.trace_hash);
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&event);
        }
    }

    /// Drains the ledger's fresh-decision list and, while tracing, emits
    /// a [`TraceEvent::Decision`] for each — sorted into node-index
    /// order, exactly the order the old full scan discovered them in.
    /// Returns the (incrementally maintained) decided count; no O(n)
    /// scan in either mode.
    fn scan_decisions(&mut self, round: Round) -> u64 {
        let mut fresh = std::mem::take(&mut self.ledger.fresh);
        if self.tracing() && !fresh.is_empty() {
            fresh.sort_unstable();
            for &idx in &fresh {
                let (value, _) = self.states[idx as usize]
                    .decision
                    .expect("ledger fresh entry has a decision");
                self.emit(TraceEvent::Decision {
                    round,
                    node: u64::from(idx),
                    value,
                });
            }
        }
        fresh.clear();
        self.ledger.fresh = fresh;
        self.ledger.decided_count
    }

    /// Satellite regression gate: the incremental decided counter must
    /// match a full scan of node states after every round (and the
    /// mask-restricted popcounts must match a recount). Compiled only
    /// under `debug-invariants`, which the determinism gate runs with.
    #[cfg(feature = "debug-invariants")]
    fn check_decided_counter(&self, round: Round) {
        let scanned = self
            .states
            .iter()
            .filter(|st| st.decision.is_some())
            .count() as u64;
        assert_eq!(
            self.ledger.decided_count, scanned,
            "incremental decided counter diverged from the full scan at round {round}",
        );
        if let Some(mask) = &self.ledger.mask {
            assert_eq!(
                self.ledger.masked_decided,
                mask.intersection_count(&self.ledger.decided),
                "masked decided counter diverged from a recount at round {round}",
            );
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    fn check_decided_counter(&self, _round: Round) {}

    /// Installs a structured trace sink receiving every event of the
    /// next (and any later) [`Network::run`] — see [`crate::trace`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any (e.g. to
    /// inspect a [`crate::trace::MemorySink`] after a run).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Greedy jammer assignment for one round: each jammer, in listed
    /// order, spends its remaining lifetime battery on not-yet-jammed
    /// transmissions it can disrupt (any transmission with at least one
    /// receiver in its range), earliest first.
    fn assign_jammers(&mut self, arena: &NeighborTable, on_air: &[Transmission<M>], round: Round) {
        // Reusable scratch owned by the network (the `PackScratch`
        // pattern): clear + resize instead of allocating a fresh table
        // every round of every run.
        self.jam_scratch.clear();
        self.jam_scratch.resize(on_air.len(), None);
        if self.channel.jam_budget == 0 || self.channel.jammers.is_empty() {
            return;
        }
        let torus = arena.torus();
        for (j, &jammer) in self.channel.jammers.iter().enumerate() {
            if self.is_crashed(jammer, round) {
                continue;
            }
            let jc = torus.coord(jammer);
            for (i, tx) in on_air.iter().enumerate() {
                if self.jam_remaining[j] == 0 {
                    break;
                }
                if self.jam_scratch[i].is_some() || tx.sender == jammer {
                    continue;
                }
                let reachable = arena
                    .neighbors(tx.sender)
                    .iter()
                    .any(|&rid| torus.within(jc, torus.coord(rid), arena.radius(), arena.metric()));
                if reachable {
                    self.jam_scratch[i] = Some(jammer);
                    self.jam_remaining[j] -= 1;
                }
            }
        }
    }

    /// Order-sensitive digest of the run so far: every delivery
    /// (round, transmission index, receiver, claimed sender) and every
    /// per-round decision count, FNV-1a folded. Two runs of the same
    /// experiment with the same seed must agree on this hash; the
    /// `debug-invariants` feature makes the experiment harness re-run
    /// and assert exactly that.
    #[must_use]
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// Installs the T2 safety oracle: `truth` is the source's value and
    /// `faulty` the placed fault set. Under the `debug-invariants`
    /// feature every round then asserts that no *honest* node has
    /// committed a value other than `truth` (Theorem 2 safety); without
    /// the feature the oracle is stored but never consulted.
    pub fn set_safety_oracle(&mut self, truth: Value, faulty: &[NodeId]) {
        let mut mask = vec![false; self.arena.len()];
        for f in faulty {
            mask[f.index()] = true;
        }
        self.oracle = Some(SafetyOracle {
            truth,
            faulty: mask,
        });
    }

    #[cfg(feature = "debug-invariants")]
    fn check_safety(&self, round: Round) {
        let Some(oracle) = &self.oracle else {
            return;
        };
        for (i, st) in self.states.iter().enumerate() {
            if oracle.faulty[i] {
                continue;
            }
            if let Some((v, at)) = st.decision {
                assert!(
                    v == oracle.truth,
                    "T2 safety violated: honest node {i} committed {v} (truth: {}) \
                     at round {at}, observed at round {round}",
                    oracle.truth,
                );
            }
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    fn check_safety(&self, _round: Round) {}

    /// Per-round aggregate history of the last [`Network::run`] — the
    /// wavefront's raw data.
    #[must_use]
    pub fn history(&self) -> &[RoundReport] {
        &self.history
    }

    /// Installs a message classifier; transmissions are tallied per
    /// returned label (see [`Network::kind_counts`]).
    pub fn set_classifier(&mut self, classify: fn(&M) -> &'static str) {
        self.classifier = Some(classify);
    }

    /// Transmission counts per classifier label (empty without a
    /// classifier installed).
    #[must_use]
    pub fn kind_counts(&self) -> &std::collections::BTreeMap<&'static str, u64> {
        &self.kind_counts
    }

    /// The decisions of every node, indexed by node id.
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<(Value, Round)>> {
        self.states.iter().map(|s| s.decision).collect()
    }

    /// One node's decision.
    #[must_use]
    pub fn decision(&self, id: NodeId) -> Option<(Value, Round)> {
        self.states[id.index()].decision
    }

    /// The latest round at which any node in `ids` decided, or `None`
    /// when none of them has. This is the network's time-to-commit for
    /// the given cohort — the quantity the adversary search maximizes.
    #[must_use]
    pub fn latest_decision_round(&self, ids: &[NodeId]) -> Option<Round> {
        ids.iter()
            .filter_map(|&id| self.states[id.index()].decision.map(|(_, round)| round))
            .max()
    }

    /// Immutable access to a node's process (e.g. to inspect protocol
    /// state after a run).
    #[must_use]
    pub fn process(&self, id: NodeId) -> &dyn Process<M> {
        self.processes[id.index()]
            .as_deref()
            .expect("process present outside callback")
    }

    fn with_ctx<F>(&mut self, id: NodeId, round: Round, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Ctx<'_, M>),
    {
        let mut proc = self.processes[id.index()]
            .take()
            .expect("re-entrant process callback");
        {
            let mut ctx = Ctx {
                id,
                coord: self.arena.torus().coord(id),
                arena: &self.arena,
                round,
                state: &mut self.states[id.index()],
                messages_sent: &mut self.messages_sent,
                ledger: &mut self.ledger,
            };
            f(proc.as_mut(), &mut ctx);
        }
        self.processes[id.index()] = Some(proc);
        // Forward any notes the callback queued. Taking the vec is free
        // when empty; events are constructed only while tracing.
        if !self.states[id.index()].notes.is_empty() {
            let notes = std::mem::take(&mut self.states[id.index()].notes);
            if self.tracing() {
                for (label, value) in notes {
                    self.emit(TraceEvent::Note {
                        round,
                        node: id.index() as u64,
                        label,
                        value,
                    });
                }
            }
        }
    }

    /// Drains outboxes in transmission order; crashed nodes stay silent.
    /// Forged identities are honoured only when the channel allows
    /// spoofing.
    fn collect_transmissions(&mut self, order: &[NodeId], round: Round) -> Vec<Transmission<M>> {
        let mut out = Vec::new();
        for &id in order {
            if self.is_crashed(id, round) {
                self.states[id.index()].outbox.clear();
                continue;
            }
            for (claimed, msg) in self.states[id.index()].outbox.drain(..) {
                let claimed = if self.channel.spoofing { claimed } else { id };
                if let Some(classify) = self.classifier {
                    *self.kind_counts.entry(classify(&msg)).or_insert(0) += 1;
                }
                out.push(Transmission {
                    sender: id,
                    claimed,
                    msg,
                });
            }
        }
        out
    }
}

impl<M> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("arena", &self.arena)
            .field("messages_sent", &self.messages_sent)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_grid::Coord;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::rc::Rc;

    /// Shared log of deliveries: (receiver, sender, payload), in order.
    type Log = Rc<RefCell<Vec<(NodeId, NodeId, u32)>>>;

    /// Test process: records everything heard into a shared log,
    /// optionally echoes once.
    struct Recorder {
        echo: bool,
        start_value: Option<u32>,
        log: Log,
        echoed: bool,
    }

    impl Process<u32> for Recorder {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let Some(v) = self.start_value {
                ctx.broadcast(v);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: &u32) {
            self.log.borrow_mut().push((ctx.id(), from, *msg));
            if self.echo && !self.echoed {
                self.echoed = true;
                ctx.broadcast(msg + 1);
            }
        }
    }

    fn recorder_net(start: &[(Coord, u32)], echo: bool) -> (Network<u32>, Torus, Log) {
        let torus = Torus::new(12, 12);
        let starts: BTreeMap<NodeId, u32> = start.iter().map(|&(c, v)| (torus.id(c), v)).collect();
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let net = Network::new(torus.clone(), 2, Metric::Linf, move |id| {
            Box::new(Recorder {
                echo,
                start_value: starts.get(&id).copied(),
                log: log2.clone(),
                echoed: false,
            }) as Box<dyn Process<u32>>
        });
        (net, torus, log)
    }

    #[test]
    fn broadcast_reaches_exactly_the_neighborhood() {
        let (mut net, torus, log) = recorder_net(&[(Coord::new(5, 5), 7)], false);
        let stats = net.run(10);
        assert!(stats.quiescent());
        assert_eq!(stats.messages_sent, 1);
        // (2r+1)² − 1 = 24 receivers
        assert_eq!(stats.deliveries, 24);
        // exactly the L∞ neighborhood heard it
        let heard: std::collections::BTreeSet<NodeId> =
            log.borrow().iter().map(|&(rx, _, _)| rx).collect();
        let expect: std::collections::BTreeSet<NodeId> = torus
            .neighborhood(torus.id(Coord::new(5, 5)), 2, Metric::Linf)
            .collect();
        assert_eq!(heard, expect);
    }

    #[test]
    fn echo_cascade_counts() {
        let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 0)], true);
        let stats = net.run(30);
        assert!(stats.quiescent());
        // the echo wave washes over the whole torus: the initial
        // broadcast plus one echo from every node (the initiator echoes
        // too, once it hears its neighbors' echoes)
        assert_eq!(stats.messages_sent, 1 + 144);
    }

    #[test]
    fn crashed_node_is_silent_and_deaf() {
        let (mut net, torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        let victim = torus.id(Coord::new(6, 5));
        net.crash_at(victim, 0);
        let stats = net.run(30);
        // the victim never echoes; everyone else still does
        assert_eq!(stats.messages_sent, 1 + 143);
        assert!(stats.quiescent());
    }

    #[test]
    fn crash_at_later_round_allows_early_action() {
        let (mut net, torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], false);
        let victim = torus.id(Coord::new(6, 5));
        net.crash_at(victim, 2); // after delivery round 1
        let stats = net.run(10);
        assert_eq!(stats.deliveries, 24); // still heard it in round 1
        assert!(stats.quiescent());
    }

    #[test]
    fn crash_takes_minimum_round() {
        let torus = Torus::new(12, 12);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(torus.clone(), 2, Metric::Linf, |_| {
            Box::new(Recorder {
                echo: false,
                start_value: None,
                log: log.clone(),
                echoed: false,
            }) as Box<dyn Process<u32>>
        });
        let id = torus.id(Coord::new(3, 3));
        net.crash_at(id, 5);
        net.crash_at(id, 2);
        net.crash_at(id, 9);
        assert!(net.is_crashed(id, 2));
        assert!(!net.is_crashed(id, 1));
    }

    #[test]
    fn quiescence_with_no_messages() {
        let (mut net, _, _) = recorder_net(&[], false);
        let stats = net.run(10);
        assert_eq!(stats.rounds, 0);
        assert!(stats.quiescent());
        assert_eq!(stats.messages_sent, 0);
    }

    #[test]
    fn max_rounds_caps_runaway() {
        /// A babbler that rebroadcasts forever.
        struct Babbler;
        impl Process<u32> for Babbler {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, m: &u32) {
                ctx.broadcast(m + 1);
            }
        }
        let torus = Torus::new(12, 12);
        let mut net = Network::new(torus, 1, Metric::Linf, |_| {
            Box::new(Babbler) as Box<dyn Process<u32>>
        });
        let stats = net.run(5);
        assert_eq!(stats.rounds, 5);
        assert!(!stats.quiescent());
    }

    #[test]
    #[should_panic(expected = "cannot faithfully host")]
    fn rejects_undersized_torus() {
        let torus = Torus::new(8, 8);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let _ = Network::new(torus, 2, Metric::Linf, |_| {
            Box::new(Recorder {
                echo: false,
                start_value: None,
                log: log.clone(),
                echoed: false,
            }) as Box<dyn Process<u32>>
        });
    }

    #[test]
    fn fifo_order_preserved_per_sender_and_identical_across_receivers() {
        // Two talkers each send a numbered burst; every receiver must see
        // each sender's burst in order, and any two receivers hearing the
        // same pair of transmissions must agree on their relative order.
        let torus = Torus::new(12, 12);
        let t1 = torus.id(Coord::new(5, 5));
        let t2 = torus.id(Coord::new(6, 5));
        let bursts: BTreeMap<NodeId, Vec<u32>> =
            [(t1, vec![1, 2, 3]), (t2, vec![10, 20, 30])].into();
        struct Burst {
            values: Vec<u32>,
            log: Log,
        }
        impl Process<u32> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                for &v in &self.values {
                    ctx.broadcast(v);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, m: &u32) {
                self.log.borrow_mut().push((ctx.id(), from, *m));
            }
        }
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let log3 = log.clone();
        let mut net = Network::new(torus.clone(), 2, Metric::Linf, move |id| {
            Box::new(Burst {
                values: bursts.get(&id).cloned().unwrap_or_default(),
                log: log3.clone(),
            }) as Box<dyn Process<u32>>
        });
        net.run(10);
        // group deliveries per receiver, in arrival order
        let mut per_rx: BTreeMap<NodeId, Vec<(NodeId, u32)>> = BTreeMap::new();
        for &(rx, tx, v) in log.borrow().iter() {
            per_rx.entry(rx).or_default().push((tx, v));
        }
        for (rx, seq) in &per_rx {
            // per-sender FIFO
            for sender in [t1, t2] {
                let vals: Vec<u32> = seq
                    .iter()
                    .filter(|&&(tx, _)| tx == sender)
                    .map(|&(_, v)| v)
                    .collect();
                let mut sorted = vals.clone();
                sorted.sort_unstable();
                assert_eq!(vals, sorted, "receiver {rx} saw out-of-order burst");
            }
        }
        // identical interleaving across receivers that heard both talkers
        let both: Vec<&Vec<(NodeId, u32)>> = per_rx
            .values()
            .filter(|seq| {
                seq.iter().any(|&(tx, _)| tx == t1) && seq.iter().any(|&(tx, _)| tx == t2)
            })
            .collect();
        assert!(both.len() > 1);
        for w in both.windows(2) {
            assert_eq!(w[0], w[1], "receivers disagree on broadcast order");
        }
    }

    #[test]
    fn history_records_every_round() {
        let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        let stats = net.run(30);
        let history = net.history();
        assert_eq!(history.len() as u32, stats.rounds);
        assert_eq!(
            history.iter().map(|h| h.deliveries).sum::<u64>(),
            stats.deliveries
        );
        // rounds are numbered 1.. in order
        for (i, h) in history.iter().enumerate() {
            assert_eq!(h.round as usize, i + 1);
        }
        // the first round carries exactly the initial transmission
        assert_eq!(history[0].transmissions, 1);
    }

    #[test]
    fn spoofed_identities_corrected_unless_channel_allows() {
        struct Spoof;
        impl Process<u32> for Spoof {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                let fake = NodeId(0);
                ctx.broadcast_as(fake, 99);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
        }
        let run = |spoofing: bool| -> Vec<(NodeId, NodeId, u32)> {
            let torus = Torus::new(12, 12);
            let spoofer = torus.id(Coord::new(5, 5));
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let log2 = log.clone();
            let channel = if spoofing {
                crate::ChannelConfig::reliable().with_spoofing()
            } else {
                crate::ChannelConfig::reliable()
            };
            let mut net =
                Network::new_with_channel(torus.clone(), 2, Metric::Linf, channel, move |id| {
                    if id == spoofer {
                        Box::new(Spoof) as Box<dyn Process<u32>>
                    } else {
                        Box::new(Recorder {
                            echo: false,
                            start_value: None,
                            log: log2.clone(),
                            echoed: false,
                        })
                    }
                });
            net.run(5);
            let out = log.borrow().clone();
            out
        };
        let torus = Torus::new(12, 12);
        let true_sender = torus.id(Coord::new(5, 5));
        // baseline: receivers see the TRUE sender
        assert!(run(false).iter().all(|&(_, from, _)| from == true_sender));
        // spoofing-enabled: receivers see the forged identity
        assert!(run(true).iter().all(|&(_, from, _)| from == NodeId(0)));
    }

    #[test]
    fn lossy_channel_drops_expected_fraction() {
        let torus = Torus::new(12, 12);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let talker = torus.id(Coord::new(5, 5));
        let mut net = Network::new_with_channel(
            torus.clone(),
            2,
            Metric::Linf,
            crate::ChannelConfig::lossy(0.5, 1, 99),
            move |id| {
                Box::new(Recorder {
                    echo: false,
                    start_value: (id == talker).then_some(1),
                    log: log2.clone(),
                    echoed: false,
                })
            },
        );
        let stats = net.run(5);
        assert_eq!(stats.deliveries + stats.lost_deliveries, 24);
        assert!(stats.lost_deliveries > 0, "no losses at 50%");
        assert!(stats.deliveries > 0, "everything lost at 50%");
    }

    #[test]
    fn bursty_channel_accounts_losses_and_replays_identically() {
        // Gilbert–Elliot losses obey the same invariants as the flat
        // coin: every non-delivery is accounted, and the same seed
        // replays byte-identically (trace hash and all counters).
        let burst = crate::BurstLoss::new(0.3, 0.3, 0.0, 1.0);
        let run = || {
            let torus = Torus::new(12, 12);
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let log2 = log.clone();
            let talker = torus.id(Coord::new(5, 5));
            let mut net = Network::new_with_channel(
                torus.clone(),
                2,
                Metric::Linf,
                crate::ChannelConfig::bursty(burst, 99),
                move |id| {
                    Box::new(Recorder {
                        echo: true,
                        start_value: (id == talker).then_some(1),
                        log: log2.clone(),
                        echoed: false,
                    })
                },
            );
            let stats = net.run(8);
            (stats, net.trace_hash())
        };
        let (a, hash_a) = run();
        let (b, hash_b) = run();
        assert_eq!(hash_a, hash_b, "same-seed burst runs must replay");
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.lost_deliveries, b.lost_deliveries);
        assert!(a.lost_deliveries > 0, "no burst losses at 50% bad time");
        assert!(a.deliveries > 0, "everything lost");
    }

    #[test]
    fn burst_losses_respect_jam_accounting() {
        // Jamming and burst loss compose: jammed deliveries are counted
        // as jammed (not lost), and the jam budget is still exact.
        let torus = Torus::new(12, 12);
        let jammer = torus.id(Coord::new(0, 0));
        let talker = torus.id(Coord::new(5, 5));
        let burst = crate::BurstLoss::new(0.2, 0.4, 0.0, 1.0);
        let channel = crate::ChannelConfig::bursty(burst, 3).with_jammers(vec![jammer], 1);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let mut net =
            Network::new_with_channel(torus.clone(), 2, Metric::Linf, channel, move |id| {
                Box::new(Recorder {
                    echo: true,
                    start_value: (id == talker).then_some(1),
                    log: log2.clone(),
                    echoed: false,
                })
            });
        let stats = net.run(8);
        assert_eq!(
            stats.jammed_transmissions, 1,
            "the single-collision battery must be spent exactly once"
        );
        assert!(stats.lost_deliveries > 0, "burst chain never went bad");
    }

    #[test]
    fn classifier_tallies_kinds() {
        let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        net.set_classifier(|&m| if m == 7 { "seed" } else { "echo" });
        let stats = net.run(30);
        let counts = net.kind_counts();
        assert_eq!(counts.get("seed").copied(), Some(1));
        assert_eq!(
            counts.get("echo").copied().unwrap_or(0) + 1,
            stats.messages_sent
        );
    }

    #[test]
    fn decisions_are_recorded_once() {
        struct DecideTwice;
        impl Process<u32> for DecideTwice {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.decide(true);
                ctx.decide(false); // ignored
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
        }
        let torus = Torus::new(12, 12);
        let mut net = Network::new(torus.clone(), 2, Metric::Linf, |_| {
            Box::new(DecideTwice) as _
        });
        net.run(5);
        let id = torus.id(Coord::new(0, 0));
        assert_eq!(net.decision(id), Some((true, 0)));
    }

    /// A talker that broadcasts one fresh message at the end of every
    /// round, forever (for watchdog and jamming tests that need
    /// sustained traffic).
    struct Chatter;
    impl Process<u32> for Chatter {
        fn on_start(&mut self, _: &mut Ctx<'_, u32>) {}
        fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
        fn on_round_end(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.broadcast(ctx.round());
        }
    }

    #[test]
    fn round_budget_trips_the_watchdog() {
        let torus = Torus::new(12, 12);
        let talker = torus.id(Coord::new(5, 5));
        let mut net = Network::new(torus, 2, Metric::Linf, |id| {
            if id == talker {
                Box::new(Chatter) as Box<dyn Process<u32>>
            } else {
                Box::new(Recorder {
                    echo: false,
                    start_value: None,
                    log: Rc::new(RefCell::new(Vec::new())),
                    echoed: false,
                })
            }
        });
        net.set_round_budget(Some(3));
        let stats = net.run(100);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.stop_reason, StopReason::DeadlineExceeded);
        assert!(!stats.quiescent());
        assert!(!stats.early_stopped());
    }

    #[test]
    fn round_budget_at_or_above_the_cap_never_binds() {
        let run_with = |budget: Option<Round>| {
            let torus = Torus::new(12, 12);
            let talker = torus.id(Coord::new(5, 5));
            let mut net = Network::new(torus, 2, Metric::Linf, |id| {
                if id == talker {
                    Box::new(Chatter) as Box<dyn Process<u32>>
                } else {
                    Box::new(Recorder {
                        echo: false,
                        start_value: None,
                        log: Rc::new(RefCell::new(Vec::new())),
                        echoed: false,
                    })
                }
            });
            net.set_round_budget(budget);
            let stats = net.run(5);
            (stats, net.trace_hash())
        };
        let (capped, capped_hash) = run_with(None);
        assert_eq!(capped.stop_reason, StopReason::RoundCap);
        // budget == cap and budget > cap: the cap wins, reason unchanged
        for budget in [5, 50] {
            let (stats, hash) = run_with(Some(budget));
            assert_eq!(stats, capped);
            assert_eq!(hash, capped_hash);
        }
    }

    #[test]
    fn generous_round_budget_changes_nothing() {
        let run_with = |budget: Option<Round>| {
            let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
            net.set_round_budget(budget);
            let stats = net.run(30);
            (stats, net.trace_hash())
        };
        let baseline = run_with(None);
        assert!(baseline.0.quiescent());
        assert_eq!(run_with(Some(25)), baseline);
    }

    #[test]
    fn jammed_transmissions_exactly_match_the_budget_spent() {
        // One jammer with a 2-collision battery against a talker that
        // broadcasts every round: the battery is exhausted mid-run, and
        // the delivery-destroyed counters must account for exactly the
        // budget spent — no more, no less.
        let torus = Torus::new(12, 12);
        let talker = torus.id(Coord::new(5, 5));
        let jammer = torus.id(Coord::new(6, 5));
        let budget = 2u32;
        let channel = ChannelConfig::reliable().with_jammers(vec![jammer], budget);
        let mut net = Network::new_with_channel(torus.clone(), 2, Metric::Linf, channel, |id| {
            if id == talker {
                Box::new(Chatter) as Box<dyn Process<u32>>
            } else {
                Box::new(Recorder {
                    echo: false,
                    start_value: None,
                    log: Rc::new(RefCell::new(Vec::new())),
                    echoed: false,
                })
            }
        });
        let rounds = 5u32;
        let stats = net.run(rounds);
        assert_eq!(stats.rounds, rounds);
        // One broadcast per round-end 0..=rounds; the final one is
        // collected but the cap stops the run before it is delivered.
        assert_eq!(stats.messages_sent, u64::from(rounds) + 1);
        let delivered_txs = u64::from(rounds);

        // Deliberate collisions: exactly the budget spent, since traffic
        // outlasted the battery.
        assert_eq!(stats.jammed_transmissions, u64::from(budget));

        // Each jammed transmission is destroyed at exactly the receivers
        // within BOTH the sender's and the jammer's range.
        let in_both = torus
            .node_ids()
            .filter(|&id| id != talker)
            .filter(|&id| {
                torus.within(torus.coord(talker), torus.coord(id), 2, Metric::Linf)
                    && torus.within(torus.coord(jammer), torus.coord(id), 2, Metric::Linf)
            })
            .count() as u64;
        assert!(in_both > 0);
        assert_eq!(stats.jammed_deliveries, u64::from(budget) * in_both);

        // Loss vs deliberate collision never double-count: the channel
        // is loss-free, so every non-jammed delivery arrived.
        assert_eq!(stats.lost_deliveries, 0);
        let receivers_per_tx = 24; // (2r+1)² − 1 on the reliable channel
        assert_eq!(
            stats.deliveries + stats.jammed_deliveries,
            delivered_txs * receivers_per_tx
        );
    }

    /// Test sink sharing its event log with the test body (the network
    /// owns the sink for the duration of the run).
    struct SharedSink(Rc<RefCell<Vec<crate::trace::TraceEvent>>>);
    impl crate::trace::TraceSink for SharedSink {
        fn record(&mut self, event: &crate::trace::TraceEvent) {
            self.0.borrow_mut().push(event.clone());
        }
    }

    #[test]
    fn second_run_starts_with_fresh_accounting() {
        // Regression: `run` used to accumulate `history` and every
        // per-run counter across calls, so a second run violated
        // `history.len() == stats.rounds`.
        let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        net.set_classifier(|&m| if m == 7 { "seed" } else { "echo" });
        let first = net.run(30);
        assert_eq!(net.history().len() as u32, first.rounds);

        // Processes keep their state (everyone has echoed already), so
        // the rerun is just the initiator's fresh broadcast.
        let second = net.run(30);
        assert_eq!(
            net.history().len() as u32,
            second.rounds,
            "stale history survived into the second run"
        );
        assert_eq!(second.messages_sent, 1);
        assert_eq!(second.deliveries, 24);
        assert!(second.quiescent());
        assert_eq!(
            net.history().iter().map(|h| h.deliveries).sum::<u64>(),
            second.deliveries
        );
        // Per-kind tallies restart too: they must sum to the run's own
        // message count, not the lifetime total.
        assert_eq!(
            net.kind_counts().values().sum::<u64>(),
            second.messages_sent
        );
    }

    #[test]
    fn second_run_rederives_a_fresh_trace_hash() {
        // Two networks, same inputs: one run twice, one run once. The
        // second run of the first must hash exactly like the single run
        // of the second (given identical process state at run start —
        // here no process mutates itself).
        let (mut twice, _t1, _l1) = recorder_net(&[(Coord::new(5, 5), 7)], false);
        twice.run(10);
        let h1 = twice.trace_hash();
        twice.run(10);
        assert_eq!(
            twice.trace_hash(),
            h1,
            "identical reruns must produce identical fresh hashes"
        );
        let (mut once, _t2, _l2) = recorder_net(&[(Coord::new(5, 5), 7)], false);
        once.run(10);
        assert_eq!(twice.trace_hash(), once.trace_hash());
    }

    #[test]
    fn trace_stream_rederives_the_legacy_hash() {
        use crate::trace::{replay_hash, replay_hash_events};
        let events = Rc::new(RefCell::new(Vec::new()));
        let (mut net, _torus, _log) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        net.set_trace_sink(Box::new(SharedSink(events.clone())));
        let stats = net.run(30);
        let events = events.borrow();
        assert!(!events.is_empty());
        assert_eq!(replay_hash_events(&events), net.trace_hash());
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(replay_hash(&jsonl).expect("well-formed"), net.trace_hash());
        // The stream's deliveries are exactly the counted ones.
        let delivered = events
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Delivery { .. }))
            .count() as u64;
        assert_eq!(delivered, stats.deliveries);
    }

    #[test]
    fn tracing_does_not_perturb_the_hash_or_stats() {
        let (mut plain, _t1, _l1) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        let plain_stats = plain.run(30);
        let (mut traced, _t2, _l2) = recorder_net(&[(Coord::new(5, 5), 7)], true);
        traced.set_trace_sink(Box::new(SharedSink(Rc::new(RefCell::new(Vec::new())))));
        let traced_stats = traced.run(30);
        assert_eq!(plain_stats, traced_stats);
        assert_eq!(plain.trace_hash(), traced.trace_hash());
    }

    #[test]
    fn decisions_appear_once_in_the_stream_even_at_round_zero() {
        struct DecideAtStart;
        impl Process<u32> for DecideAtStart {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.decide(true);
                ctx.broadcast(1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
        }
        let torus = Torus::new(12, 12);
        let n = torus.len();
        let events = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(torus, 2, Metric::Linf, |_| {
            Box::new(DecideAtStart) as Box<dyn Process<u32>>
        });
        net.set_trace_sink(Box::new(SharedSink(events.clone())));
        net.run(5);
        let decisions: Vec<_> = events
            .borrow()
            .iter()
            .filter_map(|e| match *e {
                crate::trace::TraceEvent::Decision { round, node, value } => {
                    Some((round, node, value))
                }
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), n, "every node decides exactly once");
        assert!(decisions
            .iter()
            .all(|&(round, _, value)| round == 0 && value));
    }

    #[test]
    fn protocol_notes_reach_the_sink() {
        struct Noter;
        impl Process<u32> for Noter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.broadcast(1);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, m: &u32) {
                ctx.note("heard", u64::from(*m));
            }
        }
        let events = Rc::new(RefCell::new(Vec::new()));
        let torus = Torus::new(12, 12);
        let mut net = Network::new(torus, 2, Metric::Linf, |_| {
            Box::new(Noter) as Box<dyn Process<u32>>
        });
        net.set_trace_sink(Box::new(SharedSink(events.clone())));
        let stats = net.run(5);
        let notes = events
            .borrow()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    crate::trace::TraceEvent::Note {
                        label: "heard",
                        value: 1,
                        ..
                    }
                )
            })
            .count() as u64;
        // one note per delivery (every process notes every message)
        assert_eq!(notes, stats.deliveries);
    }

    #[test]
    fn dense_and_sparse_engines_are_byte_identical() {
        // An adversarial mix for the parity oracle: an echoing/deciding
        // wave, a Chatter that relies on the default needs_round_end()
        // polling, a mid-run crash, a jammer burning its battery, and a
        // lossy channel — traced, so the full event stream is compared.
        struct Decider {
            seed: bool,
            echoed: bool,
        }
        impl Process<u32> for Decider {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if self.seed {
                    ctx.decide(true);
                    ctx.broadcast(0);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, m: &u32) {
                ctx.decide(true);
                if !self.echoed {
                    self.echoed = true;
                    ctx.broadcast(m + 1);
                }
            }
        }
        let run = |engine: EngineKind| {
            let torus = Torus::new(12, 12);
            let seed = torus.id(Coord::new(5, 5));
            let talker = torus.id(Coord::new(0, 0));
            let jammer = torus.id(Coord::new(6, 5));
            let victim = torus.id(Coord::new(4, 4));
            let channel = crate::ChannelConfig::lossy(0.2, 1, 99).with_jammers(vec![jammer], 2);
            let events = Rc::new(RefCell::new(Vec::new()));
            let mut net =
                Network::new_with_channel(torus.clone(), 2, Metric::Linf, channel, |id| {
                    if id == talker {
                        Box::new(Chatter) as Box<dyn Process<u32>>
                    } else {
                        Box::new(Decider {
                            seed: id == seed,
                            echoed: false,
                        })
                    }
                });
            net.set_engine(engine);
            net.crash_at(victim, 2);
            net.set_classifier(|&m| if m == 0 { "seed" } else { "relay" });
            net.set_trace_sink(Box::new(SharedSink(events.clone())));
            let stats = net.run(8);
            let events = events.borrow().clone();
            (
                stats,
                net.trace_hash(),
                events,
                net.history().to_vec(),
                net.kind_counts().clone(),
                net.decisions(),
            )
        };
        let dense = run(EngineKind::Dense);
        let sparse = run(EngineKind::Sparse);
        assert_eq!(dense.0, sparse.0, "RunStats diverged");
        assert_eq!(dense.1, sparse.1, "trace hash diverged");
        assert_eq!(dense.2, sparse.2, "event stream diverged");
        assert_eq!(dense.3, sparse.3, "history diverged");
        assert_eq!(dense.4, sparse.4, "kind tallies diverged");
        assert_eq!(dense.5, sparse.5, "decisions diverged");
    }

    #[test]
    fn sparse_engine_skips_quiescent_round_ends() {
        // A process that counts its round-end callbacks and declares
        // quiescence: once the wave has passed a node, the sparse engine
        // must stop polling it while the dense oracle keeps sweeping.
        struct CountingEcho {
            seed: bool,
            echoed: bool,
            round_ends: Rc<RefCell<u64>>,
        }
        impl Process<u32> for CountingEcho {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if self.seed {
                    ctx.broadcast(0);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, m: &u32) {
                if !self.echoed {
                    self.echoed = true;
                    ctx.broadcast(m + 1);
                }
            }
            fn on_round_end(&mut self, _: &mut Ctx<'_, u32>) {
                *self.round_ends.borrow_mut() += 1;
            }
            fn needs_round_end(&self) -> bool {
                false
            }
        }
        let run = |engine: EngineKind| {
            let torus = Torus::new(12, 12);
            let seed = torus.id(Coord::new(5, 5));
            let round_ends = Rc::new(RefCell::new(0u64));
            let counter = round_ends.clone();
            let mut net = Network::new(torus, 2, Metric::Linf, move |id| {
                Box::new(CountingEcho {
                    seed: id == seed,
                    echoed: false,
                    round_ends: counter.clone(),
                }) as Box<dyn Process<u32>>
            });
            net.set_engine(engine);
            let stats = net.run(30);
            let ends = *round_ends.borrow();
            (stats, net.trace_hash(), ends)
        };
        let dense = run(EngineKind::Dense);
        let sparse = run(EngineKind::Sparse);
        assert_eq!(dense.0, sparse.0);
        assert_eq!(dense.1, sparse.1);
        // Dense polls all 144 nodes every round; sparse only the round-0
        // sweep plus actual delivery targets.
        assert!(
            sparse.2 < dense.2,
            "sparse ran {} round-ends, dense {} — no work was saved",
            sparse.2,
            dense.2
        );
        // ... but never fewer than the round-0 sweep over all 144 nodes.
        assert!(sparse.2 >= 144);
    }

    #[test]
    fn tdma_order_is_used_when_divisible() {
        // 15x15 torus with r=2 (period 5): transmissions must come out in
        // slot order, not id order.
        let torus = Torus::new(15, 15);
        let a = torus.id(Coord::new(0, 0)); // slot 0
        let b = torus.id(Coord::new(1, 0)); // slot 1
        struct Talker(bool);
        impl Process<u32> for Talker {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if self.0 {
                    ctx.broadcast(ctx.id().0);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
        }
        let mut net = Network::new(torus.clone(), 2, Metric::Linf, |id| {
            Box::new(Talker(id == a || id == b)) as Box<dyn Process<u32>>
        });
        let stats = net.run(3);
        assert_eq!(stats.messages_sent, 2);
    }
}
