//! The protocol-facing node abstraction.

use crate::{Round, Value};
use rbcast_grid::{BitSet, Coord, Metric, NeighborTable, NodeId, Torus};

/// A node's protocol logic.
///
/// One `Process` instance drives one node. Honest nodes run the protocol
/// under test; Byzantine nodes run adversarial implementations. All state
/// lives inside the implementation — the simulator only routes messages.
pub trait Process<M> {
    /// Invoked once at round 0, before any message exchange.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);

    /// Invoked for every message heard. `from` is the true transmitter
    /// identity (the model rules out spoofing).
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: &M);

    /// Invoked after all of a round's deliveries, once per round in which
    /// this node was alive. Protocols with expensive commit rules batch
    /// their evaluation here.
    fn on_round_end(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Quiescence declaration for the sparse wavefront engine.
    ///
    /// Returning `false` is a promise that, until the next message is
    /// delivered to this node, [`Process::on_round_end`] would have no
    /// observable effect: no broadcast, no decision, no note, and no
    /// internal state change that a later callback depends on. The sparse
    /// engine then skips the callback in rounds where the node heard
    /// nothing, which is what turns an area-proportional round scan into
    /// a frontier-proportional one.
    ///
    /// The engine re-reads this after every callback it runs on the node,
    /// so the answer may change with internal state (e.g. a transmission
    /// budget draining to zero). It must not change *between* callbacks —
    /// a process has no spontaneous transitions in this model.
    ///
    /// The default is `true` (poll every round), which preserves exact
    /// dense semantics for implementations that predate this contract.
    fn needs_round_end(&self) -> bool {
        true
    }
}

/// Per-node simulator state exposed to [`Process`] callbacks.
#[derive(Debug)]
pub(crate) struct NodeState<M> {
    /// Queued transmissions as `(claimed sender, payload)`; the claimed
    /// identity only matters under the §X spoofing relaxation.
    pub outbox: Vec<(NodeId, M)>,
    pub decision: Option<(Value, Round)>,
    /// Protocol-level trace notes queued by [`Ctx::note`], drained by
    /// the driver after every callback.
    pub notes: Vec<(&'static str, u64)>,
}

impl<M> Default for NodeState<M> {
    fn default() -> Self {
        NodeState {
            outbox: Vec::new(),
            decision: None,
            notes: Vec::new(),
        }
    }
}

/// Incrementally maintained decision bookkeeping, updated at the moment
/// [`Ctx::decide`] commits a node. Replaces the dense engine's O(n)
/// per-round recount of `states[..].decision` and the O(n) completion-mask
/// zip scan with popcount-maintained counters and an O(1) frozen check.
#[derive(Debug)]
pub(crate) struct DecisionLedger {
    /// One bit per node: has this node decided? Kept in lockstep with
    /// `NodeState::decision` — `Ctx::decide` is the only writer of either.
    pub decided: BitSet,
    /// Completion mask (nodes that must decide before the trace-hash
    /// freeze), when one is installed.
    pub mask: Option<BitSet>,
    /// Popcount of `decided`.
    pub decided_count: u64,
    /// Popcount of `decided ∩ mask` (0 when no mask is installed).
    pub masked_decided: u64,
    /// Popcount of `mask` (0 when no mask is installed).
    pub mask_count: u64,
    /// Node indices that decided since the last `scan_decisions` drain,
    /// in decision order; re-sorted by node index before Decision events
    /// are emitted so the event stream matches the dense scan's.
    pub fresh: Vec<u32>,
}

impl DecisionLedger {
    pub(crate) fn new(n: usize) -> DecisionLedger {
        DecisionLedger {
            decided: BitSet::new(n),
            mask: None,
            decided_count: 0,
            masked_decided: 0,
            mask_count: 0,
            fresh: Vec::new(),
        }
    }

    /// Records a fresh (first-time) decision by node `idx`.
    pub(crate) fn record(&mut self, idx: usize) {
        if self.decided.set(idx) {
            self.decided_count += 1;
            if self.mask.as_ref().is_some_and(|m| m.get(idx)) {
                self.masked_decided += 1;
            }
            self.fresh
                .push(u32::try_from(idx).expect("node index fits u32"));
        }
    }

    /// Installs (or clears) the completion mask and recomputes the two
    /// mask-derived counters by popcount — O(n/64), run outside the loop.
    pub(crate) fn set_mask(&mut self, mask: Option<BitSet>) {
        self.mask = mask;
        self.mask_count = self.mask.as_ref().map_or(0, BitSet::count_ones);
        self.masked_decided = self
            .mask
            .as_ref()
            .map_or(0, |m| m.intersection_count(&self.decided));
    }

    /// All nodes in the (installed) completion mask have decided. With no
    /// mask — or an empty one — this is vacuously true, matching the dense
    /// engine's `iter().all()` over the mask.
    pub(crate) fn mask_complete(&self) -> bool {
        self.masked_decided == self.mask_count
    }
}

/// The execution context handed to [`Process`] callbacks: node identity,
/// network geometry, and the two effects a node can have — broadcasting a
/// message and deciding a value.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) coord: Coord,
    pub(crate) arena: &'a NeighborTable,
    pub(crate) round: Round,
    pub(crate) state: &'a mut NodeState<M>,
    pub(crate) messages_sent: &'a mut u64,
    pub(crate) ledger: &'a mut DecisionLedger,
}

impl<'a, M> Ctx<'a, M> {
    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's grid coordinate (canonical torus representative).
    #[must_use]
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// The shared topology arena: precomputed CSR neighbor lists and the
    /// commit-rule ball stencils for this network's `(torus, r, metric)`.
    #[must_use]
    pub fn arena(&self) -> &'a NeighborTable {
        self.arena
    }

    /// This node's precomputed radius-`r` neighborhood (excluding the
    /// node itself), in the canonical [`Torus::neighborhood`] order.
    #[must_use]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.arena.neighbors(self.id)
    }

    /// The network arena.
    #[must_use]
    pub fn torus(&self) -> &'a Torus {
        self.arena.torus()
    }

    /// The transmission radius `r`.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.arena.radius()
    }

    /// The distance metric in force.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.arena.metric()
    }

    /// The current round number.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// Queues `msg` for local broadcast. It is heard by every node within
    /// distance `r` at the start of the next round, in per-sender FIFO
    /// order.
    pub fn broadcast(&mut self, msg: M) {
        *self.messages_sent += 1;
        let id = self.id;
        self.state.outbox.push((id, msg));
    }

    /// Queues `msg` for local broadcast under a *forged* sender identity
    /// (§X). Honest protocols never call this; Byzantine processes may —
    /// the forgery is honoured only when the channel was configured with
    /// spoofing enabled, and is silently corrected to the true identity
    /// otherwise.
    pub fn broadcast_as(&mut self, claimed: NodeId, msg: M) {
        *self.messages_sent += 1;
        self.state.outbox.push((claimed, msg));
    }

    /// Records this node's irrevocable decision (the paper's *commit*).
    /// Later calls are ignored — a node commits at most once.
    pub fn decide(&mut self, v: Value) {
        if self.state.decision.is_none() {
            self.state.decision = Some((v, self.round));
            self.ledger.record(self.id.index());
        }
    }

    /// Records a protocol-level trace note — e.g. "commit evidence
    /// accepted" with the chain count that satisfied the rule. Notes are
    /// forwarded to the network's trace sink (when one is installed) as
    /// [`crate::trace::TraceEvent::Note`]; they never contribute to the
    /// delivery-trace hash, so annotating a protocol cannot perturb
    /// determinism checks.
    pub fn note(&mut self, label: &'static str, value: u64) {
        self.state.notes.push((label, value));
    }

    /// The value this node has decided, if any.
    #[must_use]
    pub fn decision(&self) -> Option<Value> {
        self.state.decision.map(|(v, _)| v)
    }

    /// True once [`Ctx::decide`] has been called.
    #[must_use]
    pub fn has_decided(&self) -> bool {
        self.state.decision.is_some()
    }
}
