//! Run statistics and per-round history.

use crate::Round;

/// Per-round aggregate record, collected for every executed round.
///
/// The sequence of reports is the broadcast's *wavefront history* — the
/// raw data behind the stage diagrams of Figs. 9–10 and 14–19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// Round number (1-based; round 0 start-ups are folded into the
    /// stats' totals but emit no report).
    pub round: Round,
    /// Transmissions on the air this round.
    pub transmissions: u64,
    /// Successful deliveries this round.
    pub deliveries: u64,
    /// Nodes that decided this round.
    pub decisions: u64,
}

/// Why a simulation run stopped — the single source of truth, covering
/// quiescence, early termination, the experiment's own round cap, and
/// the supervisor's cooperative deadline (see
/// [`crate::Network::set_round_budget`]). The legacy `quiescent` /
/// `early_stopped` booleans are derived views: [`RunStats::quiescent`]
/// and [`RunStats::early_stopped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// Nothing remained on the air.
    #[default]
    Quiescent,
    /// Every node in the completion mask (the honest set) had decided
    /// and early termination was enabled.
    AllDecided,
    /// The experiment's own `max_rounds` cap was reached — a legitimate
    /// model outcome (e.g. partitioned runs idle forever).
    RoundCap,
    /// The supervisor's round budget was exhausted before the run could
    /// finish: the watchdog verdict for a runaway task.
    DeadlineExceeded,
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Rounds executed (a round exists only when messages were on the
    /// air).
    pub rounds: Round,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Total local broadcasts performed.
    pub messages_sent: u64,
    /// Total message deliveries (one per broadcast per alive receiver).
    pub deliveries: u64,
    /// Deliveries destroyed by channel loss (lossy channels only).
    pub lost_deliveries: u64,
    /// Deliveries destroyed by deliberate collisions (§X jamming).
    pub jammed_deliveries: u64,
    /// Transmissions destroyed by deliberate collisions — exactly the
    /// jam budget spent, since each assigned jam costs one unit of a
    /// jammer's battery.
    pub jammed_transmissions: u64,
}

impl RunStats {
    /// True when the run ended because nothing remained on the air;
    /// false when it stopped early or hit a cap. Derived from
    /// [`RunStats::stop_reason`].
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.stop_reason == StopReason::Quiescent
    }

    /// True when the run stopped because every node in the completion
    /// mask (the honest nodes) had decided — messages may still have
    /// been on the air. Derived from [`RunStats::stop_reason`].
    #[must_use]
    pub fn early_stopped(&self) -> bool {
        self.stop_reason == StopReason::AllDecided
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} broadcasts, {} deliveries{}",
            self.rounds,
            self.messages_sent,
            self.deliveries,
            match self.stop_reason {
                StopReason::Quiescent => "",
                StopReason::AllDecided => " (stopped: all honest nodes decided)",
                StopReason::RoundCap => " (round cap hit)",
                StopReason::DeadlineExceeded => " (deadline: round budget exhausted)",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cap_when_not_quiescent() {
        let s = RunStats {
            rounds: 5,
            stop_reason: StopReason::RoundCap,
            messages_sent: 10,
            deliveries: 40,
            ..RunStats::default()
        };
        assert!(s.to_string().contains("round cap hit"));
        let q = RunStats {
            stop_reason: StopReason::Quiescent,
            ..s
        };
        assert!(!q.to_string().contains("round cap hit"));
        let e = RunStats {
            stop_reason: StopReason::AllDecided,
            ..s
        };
        assert!(e.to_string().contains("all honest nodes decided"));
        assert!(!e.to_string().contains("round cap hit"));
        let d = RunStats {
            stop_reason: StopReason::DeadlineExceeded,
            ..s
        };
        assert!(d.to_string().contains("round budget exhausted"));
    }

    #[test]
    fn booleans_are_pure_views_of_the_stop_reason() {
        let mut s = RunStats::default();
        let table = [
            (StopReason::Quiescent, true, false),
            (StopReason::AllDecided, false, true),
            (StopReason::RoundCap, false, false),
            (StopReason::DeadlineExceeded, false, false),
        ];
        for (reason, quiescent, early) in table {
            s.stop_reason = reason;
            assert_eq!(s.quiescent(), quiescent, "{reason:?}");
            assert_eq!(s.early_stopped(), early, "{reason:?}");
        }
    }

    #[test]
    fn default_stop_reason_is_quiescent() {
        assert_eq!(RunStats::default().stop_reason, StopReason::Quiescent);
    }

    #[test]
    fn default_is_empty_run() {
        let s = RunStats::default();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.messages_sent, 0);
    }
}
